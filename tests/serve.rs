//! Integration tests for the `dynawave-serve` daemon: crash-safe replay,
//! chaos determinism, fuzzed request handling, deadline budgets and
//! backpressure — the acceptance gates of the serving layer.

use dynawave_core::experiment::ExperimentConfig;
use dynawave_core::serve::{replay, ReplayError, ServeConfig, ServeEngine, ServeJournal};
use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
use dynawave_obs::json;
use dynawave_testkit::{check, gen};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// Small-but-real serving configuration: fast training, cheap ticks.
fn tiny_config() -> ServeConfig {
    ServeConfig {
        config: ExperimentConfig {
            train_points: 12,
            test_points: 2,
            samples: 16,
            interval_instructions: 300,
            seed: 11,
            ..ExperimentConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn dims() -> usize {
    ExperimentConfig::default().space().dims()
}

fn point_json(base: f64) -> String {
    let knobs: Vec<String> = (0..dims())
        .map(|i| format!("{}", base + i as f64))
        .collect();
    format!("[{}]", knobs.join(","))
}

fn predict_request(id: &str, points: usize) -> String {
    let pts: Vec<String> = (0..points).map(|i| point_json(2.0 + i as f64)).collect();
    format!(
        "{{\"schema\":\"dynawave-serve\",\"v\":1,\"id\":\"{id}\",\
         \"kind\":\"predict\",\"benchmark\":\"gcc\",\"metric\":\"cpi\",\
         \"points\":[{}]}}",
        pts.join(",")
    )
}

fn stats_request(id: &str) -> String {
    format!("{{\"schema\":\"dynawave-serve\",\"v\":1,\"id\":\"{id}\",\"kind\":\"stats\"}}")
}

/// A request mix that exercises every endpoint plus the error paths,
/// cheap enough to train at most one (benchmark, metric) pair. Ends
/// with a `stats` probe so every transcript-equality test also pins
/// the snapshot bytes.
fn session_requests() -> Vec<String> {
    vec![
        predict_request("a", 2),
        "this is not json".to_string(),
        format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"id\":\"s\",\
             \"kind\":\"sweep\",\"benchmark\":\"gcc\",\"metric\":\"cpi\",\
             \"base\":{},\"axis\":1,\"values\":[2,4]}}",
            point_json(2.0)
        ),
        "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"predict\",\
         \"benchmark\":\"nope\"}"
            .to_string(),
        predict_request("b", 1),
        stats_request("st"),
    ]
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dynawave_serve_it");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn kill_and_replay_reproduces_byte_identical_journal() {
    let cfg = tiny_config();
    let requests = session_requests();
    let request_log: String = requests.iter().map(|r| format!("{r}\n")).collect();

    // Uninterrupted run: the reference transcript. The engine is told
    // about its journal (as the daemon does) so the final stats
    // snapshot reports the same journal status replay will.
    let reference = {
        let path = tmp_path("ref.journal");
        let mut journal = ServeJournal::create(&path, &cfg).expect("create journal");
        let mut engine = ServeEngine::new(cfg.clone());
        engine.note_journal_attached();
        for r in &requests {
            let resp = engine.handle_line(r);
            journal.append(&resp);
        }
        std::fs::read_to_string(&path).expect("read reference journal")
    };
    assert!(reference.ends_with('\n'));
    assert_eq!(reference.lines().count(), 2 + requests.len());

    // Crash simulation: keep the header, two complete responses, and a
    // torn half of the third — exactly what a kill mid-write leaves.
    let crashed = tmp_path("crashed.journal");
    let keep: String = reference
        .lines()
        .take(4)
        .map(|l| format!("{l}\n"))
        .collect();
    let torn = reference.lines().nth(4).expect("a fifth line");
    let torn_bytes = &torn[..torn.len() / 2];
    std::fs::write(&crashed, format!("{keep}{torn_bytes}")).expect("write crashed journal");

    let outcome = replay(cfg.clone(), &request_log, &crashed).expect("replay succeeds");
    assert_eq!(outcome.responses.len(), requests.len());
    assert_eq!(outcome.verified, 2, "two complete responses survived");
    assert!(outcome.torn_tail, "the torn tail must be detected");
    let rebuilt = std::fs::read_to_string(&crashed).expect("read rebuilt journal");
    assert_eq!(
        rebuilt, reference,
        "replay must reproduce the journal byte-for-byte"
    );

    // A missing journal is regenerated from scratch.
    let fresh = tmp_path("fresh.journal");
    let _ = std::fs::remove_file(&fresh);
    let outcome = replay(cfg.clone(), &request_log, &fresh).expect("replay from nothing");
    assert_eq!(outcome.verified, 0);
    assert_eq!(
        std::fs::read_to_string(&fresh).expect("read regenerated journal"),
        reference
    );

    // A tampered journal line is divergence, not silent repair.
    let tampered = tmp_path("tampered.journal");
    std::fs::write(
        &tampered,
        reference.replacen("\"id\":\"a\"", "\"id\":\"z\"", 1),
    )
    .expect("write tampered journal");
    match replay(cfg, &request_log, &tampered) {
        Err(ReplayError::Divergence { response }) => assert_eq!(response, 1),
        other => panic!("tampering must be caught, got {other:?}"),
    }
}

#[test]
fn chaos_solver_faults_keep_transcripts_deterministic() {
    let plan = FaultPlan::new(0xC4A0)
        .rate(0.5)
        .targeting(&FaultSite::SOLVER_SITES)
        .kinds(&[FaultKind::Singular, FaultKind::NonFinite]);
    let run = || {
        fault::with_plan(plan.clone(), || {
            let mut engine = ServeEngine::new(tiny_config());
            session_requests()
                .iter()
                .map(|r| engine.handle_line(r))
                .collect::<Vec<_>>()
        })
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert_eq!(a, b, "same plan, same requests => same bytes");
    assert_eq!(ra.fired, rb.fired, "fault schedule must be deterministic");
    // Every model-backed response still carries its recovery rung.
    for line in &a {
        let obj = json::parse(line)
            .expect("valid JSON")
            .as_object()
            .cloned()
            .unwrap();
        let kind = obj["kind"].as_str().unwrap().to_string();
        if kind == "ok" || kind == "partial" {
            assert!(obj["rung"].as_str().is_some(), "rung missing: {line}");
        }
    }
}

#[test]
fn fuzzed_requests_always_get_exactly_one_wellformed_response() {
    // One long-lived engine (models_dir None, tiny scale): the 10k-case
    // corpus below hammers it with byte soup, unicode soup, and seeded
    // mutations of a valid request. The contract under test: every input
    // yields exactly one newline-free, parseable response line carrying
    // schema/v/seq/kind — no panic, no silent drop, monotonic seq.
    let mut engine = ServeEngine::new(tiny_config());
    let mut expected_seq = 0u64;
    let mut property = |input: &String| -> Result<(), String> {
        let resp = engine.handle_line(input);
        expected_seq += 1;
        if resp.contains('\n') {
            return Err(format!("response spans lines: {resp:?}"));
        }
        let obj = json::parse(&resp)
            .map_err(|e| format!("unparseable response {resp:?}: {e}"))?
            .as_object()
            .cloned()
            .ok_or_else(|| format!("response is not an object: {resp:?}"))?;
        if obj.get("schema").and_then(|v| v.as_str()) != Some("dynawave-serve") {
            return Err(format!("bad schema in {resp:?}"));
        }
        if obj.get("v").and_then(|v| v.as_u64()) != Some(1) {
            return Err(format!("bad version in {resp:?}"));
        }
        if obj.get("seq").and_then(|v| v.as_u64()) != Some(expected_seq) {
            return Err(format!("seq skew at {expected_seq} in {resp:?}"));
        }
        match obj.get("kind").and_then(|v| v.as_str()) {
            Some("ok" | "partial" | "error" | "overloaded" | "stats") => Ok(()),
            other => Err(format!("bad kind {other:?} in {resp:?}")),
        }
    };

    check("serve: ascii soup")
        .cases(4000)
        .seed(0x5E12_F001)
        .run(gen::ascii_soup(0, 200), &mut property);
    check("serve: utf8 soup")
        .cases(2000)
        .seed(0x5E12_F002)
        .run(gen::utf8_soup(0, 200), &mut property);
    let valid = predict_request("fuzz", 1);
    check("serve: mutated valid requests")
        .cases(4000)
        .seed(0x5E12_F003)
        .run(gen::mutate(&valid), &mut property);
    // The introspection kind gets the same treatment: mutations of a
    // stats probe must never panic the engine or skip a response.
    let valid_stats = stats_request("fuzz");
    check("serve: mutated stats requests")
        .cases(2000)
        .seed(0x5E12_F004)
        .run(gen::mutate(&valid_stats), &mut property);
}

#[test]
fn deadline_budgets_split_batches_and_refuse_starvation() {
    let cfg = ServeConfig {
        train_cost: 64,
        ..tiny_config()
    };
    let mut engine = ServeEngine::new(cfg);
    // 64 (train) + 3 covers 3 of 5 points.
    let req = predict_request("d", 5).replacen("\"kind\"", "\"deadline\":67,\"kind\"", 1);
    let obj = json::parse(&engine.handle_line(&req))
        .unwrap()
        .as_object()
        .cloned()
        .unwrap();
    assert_eq!(obj["kind"].as_str(), Some("partial"));
    assert_eq!(obj["completed"].as_u64(), Some(3));
    assert_eq!(obj["total"].as_u64(), Some(5));
    // Pareto is all-or-nothing: cpi is cached from above, so the request
    // needs 2 trains (128 ticks) + 3 metrics x 4 points = 140 ticks; a
    // budget of 139 is a typed refusal, not a wrong frontier.
    let pts: Vec<String> = (0..4).map(|i| point_json(2.0 + i as f64)).collect();
    let req = format!(
        "{{\"schema\":\"dynawave-serve\",\"v\":1,\"deadline\":139,\
         \"kind\":\"pareto\",\"benchmark\":\"gcc\",\"points\":[{}]}}",
        pts.join(",")
    );
    let obj = json::parse(&engine.handle_line(&req))
        .unwrap()
        .as_object()
        .cloned()
        .unwrap();
    assert_eq!(obj["kind"].as_str(), Some("error"));
    assert_eq!(obj["error"].as_str(), Some("deadline-exceeded"));
}

#[test]
fn backpressure_sheds_load_with_retry_hints() {
    let cfg = ServeConfig {
        queue_capacity: 100,
        drain_per_request: 10,
        train_cost: 40,
        ..tiny_config()
    };
    let mut engine = ServeEngine::new(cfg);
    let mut kinds = Vec::new();
    for _ in 0..8 {
        let obj = json::parse(&engine.handle_line(&predict_request("q", 30)))
            .unwrap()
            .as_object()
            .cloned()
            .unwrap();
        let kind = obj["kind"].as_str().unwrap().to_string();
        if kind == "overloaded" {
            assert!(obj["retry_after"].as_u64().unwrap() >= 1);
        }
        kinds.push(kind);
    }
    assert!(kinds.contains(&"overloaded".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"ok".to_string()), "{kinds:?}");
    // Shed requests cost nothing, so the bucket drains and service
    // resumes: the transcript must not end in an overloaded run only.
    let last_ok = kinds.iter().rposition(|k| k == "ok");
    let first_over = kinds.iter().position(|k| k == "overloaded");
    assert!(
        last_ok > first_over,
        "service must recover after shedding: {kinds:?}"
    );
}

// ---------------------------------------------------------------------
// Daemon binary: the same guarantees end-to-end over stdin/stdout.
// ---------------------------------------------------------------------

fn serve_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    // Tiny deterministic scale so lazy training stays fast.
    cmd.env("DYNAWAVE_TRAIN", "12")
        .env("DYNAWAVE_TEST", "2")
        .env("DYNAWAVE_SAMPLES", "16")
        .env("DYNAWAVE_INTERVAL", "300")
        .env_remove("DYNAWAVE_TRACE");
    cmd
}

fn run_daemon(args: &[&str], stdin_text: &str) -> (String, String, i32) {
    let mut child = serve_cmd()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(stdin_text.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("wait for serve");
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn daemon_live_then_replay_round_trip() {
    let request_log: String = session_requests()
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    let journal = tmp_path("daemon.journal");
    let journal_arg = journal.to_str().expect("utf8 path");

    let (stdout, stderr, code) = run_daemon(&["--journal", journal_arg], &request_log);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert_eq!(stdout.lines().count(), session_requests().len());
    let reference = std::fs::read_to_string(&journal).expect("journal exists");

    // Crash: drop the final journal line plus a few torn bytes.
    let torn_at = reference.len() - 20;
    std::fs::write(&journal, &reference[..torn_at]).expect("tear journal");

    let log_path = tmp_path("daemon.requests");
    std::fs::write(&log_path, &request_log).expect("write request log");
    let (replay_out, stderr, code) = run_daemon(
        &[
            "--journal",
            journal_arg,
            "--replay",
            log_path.to_str().expect("utf8 path"),
        ],
        "",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert_eq!(replay_out, stdout, "replay stdout must match the live run");
    assert_eq!(
        std::fs::read_to_string(&journal).expect("rebuilt journal"),
        reference,
        "replay must rebuild the journal byte-for-byte"
    );
}

#[test]
fn daemon_journal_chaos_degrades_durability_not_service() {
    let request_log: String = session_requests()
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    let journal = tmp_path("chaos.journal");
    let (stdout, stderr, code) = run_daemon(
        &[
            "--journal",
            journal.to_str().expect("utf8 path"),
            "--chaos-seed",
            "3",
            "--chaos-rate",
            "1.0",
            "--chaos-journal",
        ],
        &request_log,
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    // Every request is still answered on stdout...
    assert_eq!(stdout.lines().count(), session_requests().len());
    // ...but the journal froze at the header when the first append died.
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    assert_eq!(text.lines().count(), 2, "header only: {text:?}");
    assert!(stderr.contains("journal disabled by fault"), "{stderr}");
}

#[test]
fn daemon_solver_chaos_is_deterministic_across_runs() {
    let request_log: String = session_requests()
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    let args = ["--chaos-seed", "77", "--chaos-rate", "0.6"];
    let (a, _, code_a) = run_daemon(&args, &request_log);
    let (b, _, code_b) = run_daemon(&args, &request_log);
    assert_eq!(code_a, 0);
    assert_eq!(code_b, 0);
    assert_eq!(a, b, "chaos transcripts must be byte-identical");
}

// ---------------------------------------------------------------------
// Telemetry: stats snapshots, SLO verdicts and the flight recorder.
// ---------------------------------------------------------------------

fn run_daemon_env(args: &[&str], envs: &[(&str, &str)], stdin_text: &str) -> (String, String, i32) {
    let mut cmd = serve_cmd();
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(stdin_text.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("wait for serve");
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn daemon_stats_snapshot_is_byte_identical_across_thread_counts() {
    let request_log: String = session_requests()
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    let (t1, stderr, code) = run_daemon_env(&[], &[("DYNAWAVE_THREADS", "1")], &request_log);
    assert_eq!(code, 0, "stderr: {stderr}");
    let (t4, stderr, code) = run_daemon_env(&[], &[("DYNAWAVE_THREADS", "4")], &request_log);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert_eq!(
        t1, t4,
        "stats snapshots must not depend on DYNAWAVE_THREADS"
    );
    let stats_line = t1
        .lines()
        .find(|l| l.contains("\"kind\":\"stats\""))
        .expect("a stats response");
    // The snapshot accounts for every request, itself included.
    assert!(stats_line.contains("\"invalid\":1"), "{stats_line}");
    assert!(stats_line.contains("\"stats\":1"), "{stats_line}");
}

#[test]
fn daemon_stats_and_slo_verdicts_match_between_live_and_replay() {
    let request_log: String = session_requests()
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    let journal = tmp_path("stats.journal");
    let journal_arg = journal.to_str().expect("utf8 path");
    let _ = std::fs::remove_file(&journal);
    let (live, stderr, code) = run_daemon(&["--journal", journal_arg], &request_log);
    assert_eq!(code, 0, "stderr: {stderr}");
    let log_path = tmp_path("stats.requests");
    std::fs::write(&log_path, &request_log).expect("write request log");
    let (replayed, stderr, code) = run_daemon(
        &[
            "--journal",
            journal_arg,
            "--replay",
            log_path.to_str().expect("utf8 path"),
        ],
        "",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert_eq!(replayed, live, "replay transcript must match live bytes");
    let stats_line = live
        .lines()
        .find(|l| l.contains("\"kind\":\"stats\""))
        .expect("a stats response");
    assert!(
        stats_line.contains("\"journal\":\"active\""),
        "both runs see an attached journal: {stats_line}"
    );

    // SLO verdicts are derived from the traced stream; tracing the same
    // session under different worker counts must yield the same verdict
    // line (the soft CI gate's determinism contract).
    let verdict = |threads: &str| {
        let (_, trace, code) = run_daemon_env(
            &[],
            &[("DYNAWAVE_TRACE", "1"), ("DYNAWAVE_THREADS", threads)],
            &request_log,
        );
        assert_eq!(code, 0);
        let events = dynawave_obs::parse_events(&trace).expect("parseable trace");
        let analysis = dynawave_obs::StreamAnalysis::from_events(&events);
        let spec = dynawave_obs::SloSpec::parse("predict:p99<=65536").expect("spec");
        analysis.render_slo(&spec)
    };
    let (line_t1, pass_t1) = verdict("1");
    let (line_t4, pass_t4) = verdict("4");
    assert_eq!(line_t1, line_t4, "SLO verdict must not depend on threads");
    assert!(pass_t1 && pass_t4, "{line_t1}");
}

#[test]
fn daemon_flight_recorder_dumps_valid_stream_on_internal_error() {
    // Chaos at rate 1.0 with strict recovery turns the first training
    // fault into a train-failed internal error; the armed flight
    // recorder must dump its ring exactly once, as a valid obs stream.
    let request_log: String = session_requests()
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    let (stdout, dump, code) = run_daemon(
        &[
            "--flight-recorder",
            "48",
            "--strict-recovery",
            "--chaos-seed",
            "7",
            "--chaos-rate",
            "1.0",
        ],
        &request_log,
    );
    assert_eq!(code, 0, "dump: {dump}");
    let stats_line = stdout
        .lines()
        .find(|l| l.contains("\"kind\":\"stats\""))
        .expect("a stats response");
    assert!(stats_line.contains("\"internal\":"), "{stats_line}");
    assert!(
        !stats_line.contains("\"internal\":0"),
        "chaos must surface internal errors: {stats_line}"
    );
    assert_eq!(
        dump.matches("serve.flight_recorder").count(),
        1,
        "exactly one dump marker: {dump}"
    );
    assert!(dump.contains("reason=internal-error"), "{dump}");
    let summary = dynawave_obs::validate_stream(&dump);
    assert!(
        summary.is_clean(),
        "flight dump must be schema-valid: {:?}",
        summary.errors
    );
    assert!(summary.stages.contains("serve"), "{:?}", summary.stages);

    // Without an internal error the one dump happens at shutdown.
    let (_, dump, code) = run_daemon(&["--flight-recorder", "8"], &request_log);
    assert_eq!(code, 0);
    assert_eq!(dump.matches("serve.flight_recorder").count(), 1, "{dump}");
    assert!(dump.contains("reason=shutdown"), "{dump}");
    assert!(
        dump.contains("dropped="),
        "dump must report ring evictions: {dump}"
    );
    assert!(dynawave_obs::validate_stream(&dump).is_clean());
}
