//! Integration tests for the library's extensions beyond the paper's
//! baseline: model persistence on disk, low-discrepancy training designs,
//! optional microarchitectural features, warm-up runs, interval
//! coarsening and full-grid exploration.

use dynawave_core::{collect_traces, persist, Metric, PredictorParams, WaveletNeuralPredictor};
use dynawave_numeric::stats::mean;
use dynawave_sampling::{grid, halton, lhs, DesignPoint, DesignSpace, Split};
use dynawave_sim::{MachineConfig, SimOptions, Simulator};
use dynawave_workloads::{Benchmark, BenchmarkProfile, TraceGenerator};

fn opts() -> SimOptions {
    SimOptions {
        samples: 32,
        interval_instructions: 800,
        seed: 99,
    }
}

#[test]
fn model_persists_through_a_file() {
    let space = DesignSpace::micro2007();
    let train = collect_traces(
        Benchmark::Eon,
        &lhs::sample(&space, 30, 1),
        Metric::Cpi,
        &opts(),
    );
    let model = WaveletNeuralPredictor::train(&train, &PredictorParams::default()).unwrap();
    let dir = std::env::temp_dir().join("dynawave_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("eon_cpi.dynawave");
    std::fs::write(&path, persist::to_string(&model)).unwrap();
    let restored = persist::from_string(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let probe = DesignPoint::new(vec![8.0, 128.0, 64.0, 24.0, 1024.0, 12.0, 16.0, 32.0, 2.0]);
    assert_eq!(model.predict(&probe), restored.predict(&probe));
}

#[test]
fn halton_design_trains_a_usable_model() {
    let space = DesignSpace::micro2007();
    let design = halton::sample(&space, 40, 3);
    let train = collect_traces(Benchmark::Parser, &design, Metric::Cpi, &opts());
    let model = WaveletNeuralPredictor::train(&train, &PredictorParams::default()).unwrap();
    // Training-set accuracy must be solid for a usable design.
    let mut total = 0.0;
    for (p, t) in train.points.iter().zip(&train.traces) {
        total += dynawave_numeric::stats::nmse_percent(t, &model.predict(p));
    }
    assert!((total / train.len() as f64) < 20.0);
}

#[test]
fn full_grid_sweep_is_fast_and_total() {
    let space = DesignSpace::micro2007();
    let train = collect_traces(
        Benchmark::Twolf,
        &lhs::sample(&space, 30, 5),
        Metric::Cpi,
        &opts(),
    );
    let model = WaveletNeuralPredictor::train(&train, &PredictorParams::default()).unwrap();
    let mut count = 0usize;
    let mut best = f64::INFINITY;
    for p in grid::full_factorial(&space, Split::Test) {
        best = best.min(mean(&model.predict(&p)));
        count += 1;
    }
    assert_eq!(count, space.grid_size(Split::Test));
    assert!(best.is_finite() && best > 0.0);
}

#[test]
fn optional_features_compose() {
    let full = MachineConfig::baseline()
        .with_next_line_prefetch()
        .with_store_forwarding();
    let run = Simulator::new(full).run(Benchmark::Swim, &opts());
    let fills: u64 = run.intervals.iter().map(|i| i.prefetch_fills).sum();
    let fwds: u64 = run.intervals.iter().map(|i| i.store_forwards).sum();
    assert!(fills > 0 && fwds > 0, "both features must be active");
    // A featureful machine is never slower than the plain baseline here.
    let plain = Simulator::new(MachineConfig::baseline()).run(Benchmark::Swim, &opts());
    assert!(run.aggregate_cpi() <= plain.aggregate_cpi() * 1.02);
}

#[test]
fn coarsened_run_equals_coarser_simulation() {
    // Simulating at 32 samples and coarsening a 64-sample run by 2 must
    // produce the identical CPI trace (timing is sampling-independent).
    let config = MachineConfig::baseline();
    let fine = Simulator::new(config.clone()).run(
        Benchmark::Gap,
        &SimOptions {
            samples: 64,
            interval_instructions: 400,
            seed: 7,
        },
    );
    let coarse_direct = Simulator::new(config).run(
        Benchmark::Gap,
        &SimOptions {
            samples: 32,
            interval_instructions: 800,
            seed: 7,
        },
    );
    let merged = fine.coarsen(2);
    for (a, b) in merged.cpi_trace().iter().zip(coarse_direct.cpi_trace()) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

#[test]
fn custom_profile_runs_through_the_whole_stack() {
    let profile = BenchmarkProfile::builder("podracer")
        .code_kb(16)
        .mean_dep_distance(8.0)
        .dead_fraction(0.2)
        .build();
    let trace = TraceGenerator::from_profile(profile, 32 * 500, 13);
    let run = Simulator::new(MachineConfig::baseline()).run_trace(
        trace,
        &SimOptions {
            samples: 32,
            interval_instructions: 500,
            seed: 13,
        },
    );
    assert_eq!(run.intervals.len(), 32);
    let cpi = run.aggregate_cpi();
    assert!(cpi > 0.1 && cpi < 30.0, "custom workload CPI {cpi}");
}

#[test]
fn warmup_and_dvm_compose() {
    let cfg = MachineConfig::baseline().with_dvm(dynawave_sim::DvmConfig {
        threshold: 0.2,
        initial_wq_ratio: 2.0,
    });
    let run = Simulator::new(cfg).run_with_warmup(Benchmark::Mcf, &opts(), 10_000);
    assert_eq!(run.intervals.len(), 32);
    assert!(run.aggregate_cpi() > 0.0);
}
