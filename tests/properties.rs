//! Property-based tests on the core data structures and numerical
//! invariants, running on the in-tree `dynawave-testkit` harness.
//!
//! Each property preserves the invariant of its `proptest` predecessor and
//! runs >= 64 seeded cases; cases recorded in the former
//! `proptest-regressions` file live on as explicit named `#[test]`s at the
//! bottom of this file.

use dynawave_core::accuracy::{directional_symmetry, Thresholds};
use dynawave_numeric::stats::{nmse_percent, BoxplotSummary};
use dynawave_numeric::{solve, Matrix};
use dynawave_sampling::{lhs, DesignSpace};
use dynawave_testkit::{check, ensure, gen, Rng};
use dynawave_wavelet::{select, wavedec, waverec, Decomposition, Wavelet};

/// Signals of power-of-two length 8/16/32/64 with bounded values.
fn pow2_signal() -> impl Fn(&mut Rng) -> Vec<f64> {
    gen::pow2_vec_f64(-1e3, 1e3, &[8, 16, 32, 64])
}

#[test]
fn wavelet_roundtrip_is_lossless() {
    check("wavelet roundtrip is lossless").run(pow2_signal(), |signal| {
        for wavelet in [Wavelet::Haar, Wavelet::Daubechies4] {
            let dec = wavedec(signal, wavelet).unwrap();
            let back = waverec(&dec).unwrap();
            for (a, b) in signal.iter().zip(&back) {
                ensure!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
            }
        }
        Ok(())
    });
}

#[test]
fn haar_preserves_mean_in_first_coefficient() {
    check("haar preserves mean").run(pow2_signal(), |signal| {
        let dec = wavedec(signal, Wavelet::Haar).unwrap();
        let mean = signal.iter().sum::<f64>() / signal.len() as f64;
        ensure!(
            (dec.as_slice()[0] - mean).abs() < 1e-9 * (1.0 + mean.abs()),
            "first coefficient {} vs mean {mean}",
            dec.as_slice()[0]
        );
        Ok(())
    });
}

#[test]
fn partial_reconstruction_error_shrinks_with_k() {
    check("reconstruction error shrinks with k").run(pow2_signal(), |signal| {
        let dec = wavedec(signal, Wavelet::Haar).unwrap();
        let err = |k: usize| {
            let keep = select::top_k_by_magnitude(dec.as_slice(), k);
            let partial = dec.retain_indices(&keep);
            nmse_percent(signal, &waverec(&partial).unwrap())
        };
        let n = signal.len();
        // Keeping more of the largest coefficients never hurts.
        ensure!(err(n) <= err(n / 2) + 1e-9, "k=n worse than k=n/2");
        ensure!(err(n / 2) <= err(n / 4) + 1e-9, "k=n/2 worse than k=n/4");
        ensure!(err(n) < 1e-9, "full reconstruction not exact");
        Ok(())
    });
}

#[test]
fn energy_capture_is_monotone_in_k() {
    check("energy capture monotone in k").run(pow2_signal(), |signal| {
        let dec = wavedec(signal, Wavelet::Haar).unwrap();
        let cap = |k: usize| {
            let keep = select::top_k_by_magnitude(dec.as_slice(), k);
            select::energy_captured(dec.as_slice(), &keep)
        };
        let mut last = 0.0;
        for k in [1usize, 2, 4, 8] {
            let c = cap(k);
            ensure!(c + 1e-12 >= last, "capture dropped at k={k}: {c} < {last}");
            ensure!((0.0..=1.0 + 1e-12).contains(&c), "capture {c} out of [0,1]");
            last = c;
        }
        Ok(())
    });
}

#[test]
fn top_k_by_magnitude_is_truly_top() {
    let input = |rng: &mut Rng| (pow2_signal()(rng), rng.range_usize(1, 8));
    check("top-k by magnitude is truly top").run(input, |(signal, k)| {
        let idx = select::top_k_by_magnitude(signal, *k);
        ensure!(idx.len() == (*k).min(signal.len()), "wrong count");
        // Every selected coefficient is >= every unselected one.
        let min_selected = idx
            .iter()
            .map(|&i| signal[i].abs())
            .fold(f64::INFINITY, f64::min);
        for (i, v) in signal.iter().enumerate() {
            if !idx.contains(&i) {
                ensure!(
                    v.abs() <= min_selected + 1e-12,
                    "unselected |{v}| beats selected minimum {min_selected}"
                );
            }
        }
        Ok(())
    });
}

/// The boxplot ordering invariant, shared by the generated property and the
/// named regression case below.
fn boxplot_summary_is_ordered_for(data: &[f64]) -> Result<(), String> {
    let s = BoxplotSummary::from_data(data).unwrap();
    // Quartiles are ordered; whiskers stay within the data range and
    // outside the fences. (A whisker can retract past its hinge when
    // every point beyond the hinge is an outlier, so whisker <= q1 is
    // deliberately NOT asserted.)
    ensure!(
        s.q1 <= s.median + 1e-12,
        "q1 {} > median {}",
        s.q1,
        s.median
    );
    ensure!(
        s.median <= s.q3 + 1e-12,
        "median {} > q3 {}",
        s.median,
        s.q3
    );
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    ensure!(s.whisker_low >= lo - 1e-12, "low whisker below data range");
    ensure!(
        s.whisker_high <= hi + 1e-12,
        "high whisker above data range"
    );
    let iqr = s.iqr();
    for o in &s.outliers {
        ensure!(
            *o < s.q1 - 1.5 * iqr || *o > s.q3 + 1.5 * iqr,
            "outlier {o} inside the fences"
        );
    }
    // Whiskers themselves are never outliers.
    ensure!(
        s.whisker_low >= s.q1 - 1.5 * iqr - 1e-9,
        "low whisker is an outlier"
    );
    ensure!(
        s.whisker_high <= s.q3 + 1.5 * iqr + 1e-9,
        "high whisker is an outlier"
    );
    Ok(())
}

#[test]
fn boxplot_summary_is_ordered() {
    check("boxplot summary is ordered").run(gen::vec_f64(-1e4, 1e4, 1, 59), |data| {
        boxplot_summary_is_ordered_for(data)
    });
}

#[test]
fn directional_symmetry_bounds_and_self_agreement() {
    let input = |rng: &mut Rng| {
        (
            gen::vec_f64(0.0, 10.0, 4, 49)(rng),
            rng.range_f64(0.0, 10.0),
        )
    };
    check("directional symmetry bounds").run(input, |(trace, tau)| {
        let ds = directional_symmetry(trace, trace, *tau);
        ensure!(ds == 1.0, "self-agreement {ds} != 1");
        let inverted: Vec<f64> = trace.iter().map(|v| 10.0 - v).collect();
        let ds2 = directional_symmetry(trace, &inverted, *tau);
        ensure!((0.0..=1.0).contains(&ds2), "ds {ds2} out of [0,1]");
        Ok(())
    });
}

#[test]
fn thresholds_are_ordered_and_inside_range() {
    check("thresholds ordered and in range").run(gen::vec_f64(-5.0, 5.0, 2, 63), |trace| {
        let t = Thresholds::from_trace(trace);
        let lo = trace.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        ensure!(
            lo <= t.q1 && t.q1 <= t.q2 && t.q2 <= t.q3 && t.q3 <= hi,
            "thresholds out of order: {lo} {} {} {} {hi}",
            t.q1,
            t.q2,
            t.q3
        );
        Ok(())
    });
}

#[test]
fn lu_solve_recovers_solution() {
    let input = |rng: &mut Rng| {
        (
            gen::vec_f64(-3.0, 3.0, 9, 9)(rng),
            gen::vec_f64(-5.0, 5.0, 3, 3)(rng),
        )
    };
    check("lu solve recovers solution").run(input, |(vals, x)| {
        // Diagonally dominate to guarantee invertibility.
        let mut m = Matrix::from_vec(3, 3, vals.clone()).unwrap();
        for i in 0..3 {
            m[(i, i)] += 10.0;
        }
        let b = m.matvec(x).unwrap();
        let got = solve::lu_solve(&m, &b).unwrap();
        for (a, g) in x.iter().zip(&got) {
            ensure!((a - g).abs() < 1e-8, "{a} vs {g}");
        }
        Ok(())
    });
}

#[test]
fn lhs_respects_level_sets() {
    let input = |rng: &mut Rng| (rng.range_usize(1, 40), rng.range_u64(0, 1000));
    check("lhs respects level sets").run(input, |(n, seed)| {
        let space = DesignSpace::micro2007();
        let pts = lhs::sample(&space, *n, *seed);
        ensure!(pts.len() == *n, "wrong point count {}", pts.len());
        for p in &pts {
            for (v, param) in p.values().iter().zip(space.parameters()) {
                ensure!(
                    param.train_levels().contains(v),
                    "{v} not a train level of {}",
                    param.name()
                );
            }
        }
        Ok(())
    });
}

#[test]
fn decomposition_from_coeffs_roundtrips() {
    check("decomposition from coeffs roundtrips").run(pow2_signal(), |signal| {
        let dec = wavedec(signal, Wavelet::Haar).unwrap();
        let rebuilt = Decomposition::from_coeffs(dec.as_slice().to_vec(), Wavelet::Haar);
        ensure!(
            waverec(&rebuilt).unwrap() == waverec(&dec).unwrap(),
            "rebuilt decomposition reconstructs differently"
        );
        Ok(())
    });
}

#[test]
fn simulator_cpi_is_finite_and_positive_everywhere() {
    use dynawave_sim::{MachineConfig, SimOptions, Simulator};
    use dynawave_workloads::Benchmark;
    let input = |rng: &mut Rng| {
        (
            rng.range_u64(0, 50),
            rng.range_usize(0, 4),
            rng.range_usize(0, 4),
        )
    };
    check("simulator cpi finite and positive").run(input, |&(seed, fetch_idx, dl1_idx)| {
        let fetch = [2.0, 4.0, 8.0, 16.0][fetch_idx];
        let dl1 = [8.0, 16.0, 32.0, 64.0][dl1_idx];
        let config = MachineConfig::from_design_values(&[
            fetch, 96.0, 64.0, 32.0, 1024.0, 12.0, 16.0, dl1, 2.0,
        ]);
        let run = Simulator::new(config).run(
            Benchmark::Parser,
            &SimOptions {
                samples: 4,
                interval_instructions: 400,
                seed,
            },
        );
        for i in &run.intervals {
            let cpi = i.cpi();
            ensure!(
                cpi.is_finite() && cpi > 0.05 && cpi < 100.0,
                "cpi {cpi} at seed {seed}, fetch {fetch}, dl1 {dl1}"
            );
        }
        Ok(())
    });
}

#[test]
fn chaos_degraded_predictor_stays_finite_and_accounted() {
    use dynawave_core::{Metric, RecoveryPolicy};
    use dynawave_core::{PredictorParams, TraceSet, WaveletNeuralPredictor};
    use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
    use dynawave_sampling::DesignPoint;
    use dynawave_workloads::Benchmark;

    /// A tiny synthetic training set — fast enough to train dozens of
    /// models per property run without the simulator.
    fn synthetic_set(bias: f64) -> TraceSet {
        let mut points = Vec::new();
        let mut traces = Vec::new();
        for i in 0..8 {
            let a = (i % 4) as f64;
            let b = (i / 4) as f64;
            points.push(DesignPoint::new(vec![a, b]));
            traces.push(
                (0..16)
                    .map(|s| bias + 0.4 * a + 0.1 * b * (s as f64 * 0.9).sin())
                    .collect(),
            );
        }
        TraceSet {
            benchmark: Benchmark::Gcc,
            metric: Metric::Cpi,
            points,
            traces,
        }
    }

    let input = |rng: &mut Rng| {
        (
            rng.range_u64(0, u64::MAX),
            rng.range_f64(0.0, 1.0),
            rng.range_f64(0.5, 2.0),
        )
    };
    check("degraded predictor stays finite and accounted").run(input, |&(seed, rate, bias)| {
        let set = synthetic_set(bias);
        let params = PredictorParams {
            coefficients: 4,
            ..PredictorParams::default()
        };
        let plan = FaultPlan::new(seed)
            .rate(rate)
            .targeting(&[
                FaultSite::RbfWeightFit,
                FaultSite::RidgeSolve,
                FaultSite::RbfPredict,
            ])
            .kinds(&FaultKind::ALL);
        let (checks, _report) = fault::with_plan(plan, || {
            let (model, degradation) =
                WaveletNeuralPredictor::train_resilient(&set, &params, &RecoveryPolicy::default())
                    .map_err(|e| format!("resilient training aborted: {e}"))?;
            // Rung counts partition the coefficient set exactly.
            if degradation.rung_counts().iter().sum::<usize>() != degradation.coefficient_count() {
                return Err(format!("rung counts do not sum: {degradation}"));
            }
            if degradation.coefficient_count() != model.coefficient_indices().len() {
                return Err(format!(
                    "report covers {} of {} coefficients",
                    degradation.coefficient_count(),
                    model.coefficient_indices().len()
                ));
            }
            // Predictions stay finite even with predict-time faults.
            for probe in [[0.0, 0.0], [1.5, 0.5], [3.0, 1.0]] {
                let pred = model.predict(&DesignPoint::new(probe.to_vec()));
                if let Some(bad) = pred.iter().find(|v| !v.is_finite()) {
                    return Err(format!("non-finite prediction {bad}"));
                }
            }
            Ok(())
        });
        ensure!(checks.is_ok(), "{}", checks.unwrap_err());
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Named regression cases, formerly `tests/properties.proptest-regressions`.
// ---------------------------------------------------------------------------

/// proptest shrink from 2020-era CI: a 4-point sample whose q1 == q3 makes
/// the IQR zero, so every whisker/fence comparison degenerates.
#[test]
fn regression_boxplot_zero_iqr_four_points() {
    boxplot_summary_is_ordered_for(&[
        0.0,
        -2565.839013194435,
        -7533.139534578149,
        -2080.858604479113,
    ])
    .unwrap();
}
