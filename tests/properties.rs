//! Property-based tests (proptest) on the core data structures and
//! numerical invariants.

use dynawave_core::accuracy::{directional_symmetry, Thresholds};
use dynawave_numeric::stats::{nmse_percent, BoxplotSummary};
use dynawave_numeric::{solve, Matrix};
use dynawave_sampling::{lhs, DesignSpace};
use dynawave_wavelet::{select, wavedec, waverec, Decomposition, Wavelet};
use proptest::prelude::*;

/// Signals of power-of-two length 8/16/32/64 with bounded values.
fn pow2_signal() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64)].prop_flat_map(|n| {
        proptest::collection::vec(-1e3..1e3f64, n..=n)
    })
}

proptest! {
    #[test]
    fn wavelet_roundtrip_is_lossless(signal in pow2_signal()) {
        for wavelet in [Wavelet::Haar, Wavelet::Daubechies4] {
            let dec = wavedec(&signal, wavelet).unwrap();
            let back = waverec(&dec).unwrap();
            for (a, b) in signal.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn haar_preserves_mean_in_first_coefficient(signal in pow2_signal()) {
        let dec = wavedec(&signal, Wavelet::Haar).unwrap();
        let mean = signal.iter().sum::<f64>() / signal.len() as f64;
        prop_assert!((dec.as_slice()[0] - mean).abs() < 1e-9 * (1.0 + mean.abs()));
    }

    #[test]
    fn partial_reconstruction_error_shrinks_with_k(signal in pow2_signal()) {
        let dec = wavedec(&signal, Wavelet::Haar).unwrap();
        let err = |k: usize| {
            let keep = select::top_k_by_magnitude(dec.as_slice(), k);
            let partial = dec.retain_indices(&keep);
            nmse_percent(&signal, &waverec(&partial).unwrap())
        };
        let n = signal.len();
        // Keeping more of the largest coefficients never hurts.
        prop_assert!(err(n) <= err(n / 2) + 1e-9);
        prop_assert!(err(n / 2) <= err(n / 4) + 1e-9);
        prop_assert!(err(n) < 1e-9);
    }

    #[test]
    fn energy_capture_is_monotone_in_k(signal in pow2_signal()) {
        let dec = wavedec(&signal, Wavelet::Haar).unwrap();
        let cap = |k: usize| {
            let keep = select::top_k_by_magnitude(dec.as_slice(), k);
            select::energy_captured(dec.as_slice(), &keep)
        };
        let mut last = 0.0;
        for k in [1usize, 2, 4, 8] {
            let c = cap(k);
            prop_assert!(c + 1e-12 >= last);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            last = c;
        }
    }

    #[test]
    fn top_k_by_magnitude_is_truly_top(signal in pow2_signal(), k in 1usize..8) {
        let idx = select::top_k_by_magnitude(&signal, k);
        prop_assert_eq!(idx.len(), k.min(signal.len()));
        // Every selected coefficient is >= every unselected one.
        let min_selected = idx.iter().map(|&i| signal[i].abs()).fold(f64::INFINITY, f64::min);
        for (i, v) in signal.iter().enumerate() {
            if !idx.contains(&i) {
                prop_assert!(v.abs() <= min_selected + 1e-12);
            }
        }
    }

    #[test]
    fn boxplot_summary_is_ordered(data in proptest::collection::vec(-1e4..1e4f64, 1..60)) {
        let s = BoxplotSummary::from_data(&data).unwrap();
        // Quartiles are ordered; whiskers stay within the data range and
        // outside the fences. (A whisker can retract past its hinge when
        // every point beyond the hinge is an outlier, so whisker <= q1 is
        // deliberately NOT asserted.)
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.whisker_low >= lo - 1e-12);
        prop_assert!(s.whisker_high <= hi + 1e-12);
        let iqr = s.iqr();
        for o in &s.outliers {
            prop_assert!(*o < s.q1 - 1.5 * iqr || *o > s.q3 + 1.5 * iqr);
        }
        // Whiskers themselves are never outliers.
        prop_assert!(s.whisker_low >= s.q1 - 1.5 * iqr - 1e-9);
        prop_assert!(s.whisker_high <= s.q3 + 1.5 * iqr + 1e-9);
    }

    #[test]
    fn directional_symmetry_bounds_and_self_agreement(
        trace in proptest::collection::vec(0.0..10.0f64, 4..50),
        tau in 0.0..10.0f64,
    ) {
        let ds = directional_symmetry(&trace, &trace, tau);
        prop_assert_eq!(ds, 1.0);
        let inverted: Vec<f64> = trace.iter().map(|v| 10.0 - v).collect();
        let ds2 = directional_symmetry(&trace, &inverted, tau);
        prop_assert!((0.0..=1.0).contains(&ds2));
    }

    #[test]
    fn thresholds_are_ordered_and_inside_range(
        trace in proptest::collection::vec(-5.0..5.0f64, 2..64),
    ) {
        let t = Thresholds::from_trace(&trace);
        let lo = trace.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= t.q1 && t.q1 <= t.q2 && t.q2 <= t.q3 && t.q3 <= hi);
    }

    #[test]
    fn lu_solve_recovers_solution(
        vals in proptest::collection::vec(-3.0..3.0f64, 9..=9),
        x in proptest::collection::vec(-5.0..5.0f64, 3..=3),
    ) {
        // Diagonally dominate to guarantee invertibility.
        let mut m = Matrix::from_vec(3, 3, vals).unwrap();
        for i in 0..3 {
            m[(i, i)] += 10.0;
        }
        let b = m.matvec(&x).unwrap();
        let got = solve::lu_solve(&m, &b).unwrap();
        for (a, g) in x.iter().zip(&got) {
            prop_assert!((a - g).abs() < 1e-8);
        }
    }

    #[test]
    fn lhs_respects_level_sets(n in 1usize..40, seed in 0u64..1000) {
        let space = DesignSpace::micro2007();
        let pts = lhs::sample(&space, n, seed);
        prop_assert_eq!(pts.len(), n);
        for p in &pts {
            for (v, param) in p.values().iter().zip(space.parameters()) {
                prop_assert!(param.train_levels().contains(v));
            }
        }
    }

    #[test]
    fn decomposition_from_coeffs_roundtrips(signal in pow2_signal()) {
        let dec = wavedec(&signal, Wavelet::Haar).unwrap();
        let rebuilt = Decomposition::from_coeffs(dec.as_slice().to_vec(), Wavelet::Haar);
        prop_assert_eq!(waverec(&rebuilt).unwrap(), waverec(&dec).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulator_cpi_is_finite_and_positive_everywhere(
        seed in 0u64..50,
        fetch_idx in 0usize..4,
        dl1_idx in 0usize..4,
    ) {
        use dynawave_sim::{MachineConfig, SimOptions, Simulator};
        use dynawave_workloads::Benchmark;
        let fetch = [2.0, 4.0, 8.0, 16.0][fetch_idx];
        let dl1 = [8.0, 16.0, 32.0, 64.0][dl1_idx];
        let config = MachineConfig::from_design_values(&[
            fetch, 96.0, 64.0, 32.0, 1024.0, 12.0, 16.0, dl1, 2.0,
        ]);
        let run = Simulator::new(config).run(
            Benchmark::Parser,
            &SimOptions { samples: 4, interval_instructions: 400, seed },
        );
        for i in &run.intervals {
            let cpi = i.cpi();
            prop_assert!(cpi.is_finite() && cpi > 0.05 && cpi < 100.0, "cpi {cpi}");
        }
    }
}
