//! Fault-tolerance integration tests: journaled campaigns must survive
//! kills (partial journal writes) and resume to a byte-identical report,
//! and must refuse journals written under a different configuration.

use dynawave_core::campaign::{advance_journaled, run_journaled, CampaignError, CampaignSpec};
use dynawave_core::experiment::ExperimentConfig;
use dynawave_core::{report, Metric};
use dynawave_workloads::Benchmark;
use std::fs;
use std::path::PathBuf;

fn tiny_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::single(
        Benchmark::Eon,
        Metric::Cpi,
        ExperimentConfig {
            train_points: 10,
            test_points: 4,
            samples: 16,
            interval_instructions: 400,
            seed,
            ..ExperimentConfig::default()
        },
    )
}

/// A collision-free scratch path that cleans itself up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "dynawave-campaign-{}-{tag}.journal",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

#[test]
fn killed_file_backed_campaign_resumes_byte_identical() {
    let spec = tiny_spec(31);
    // Reference: one uninterrupted run.
    let reference = Scratch::new("reference");
    let evals = run_journaled(&spec, &reference.0).unwrap();
    let want = report::full_report("campaign", &evals);

    // Victim: run 6 of 14 units, then "kill" it by chopping bytes off the
    // journal tail, leaving a partial final line.
    let victim = Scratch::new("victim");
    let done = advance_journaled(&spec, &victim.0, 6).unwrap();
    assert_eq!(done, 6);
    let text = fs::read_to_string(&victim.0).unwrap();
    assert!(text.ends_with('\n'));
    fs::write(&victim.0, &text[..text.len() - 17]).unwrap();

    // Resume: the partial line is dropped and re-simulated; everything
    // completed stays journaled; the final report matches byte for byte.
    let evals = run_journaled(&spec, &victim.0).unwrap();
    let got = report::full_report("campaign", &evals);
    assert_eq!(want, got);

    // The journal left behind is complete and immediately reusable: a
    // third invocation re-simulates nothing and reports identically.
    let evals = run_journaled(&spec, &victim.0).unwrap();
    assert_eq!(want, report::full_report("campaign", &evals));
}

#[test]
fn journal_from_a_different_spec_is_refused() {
    let spec = tiny_spec(7);
    let scratch = Scratch::new("foreign");
    advance_journaled(&spec, &scratch.0, 3).unwrap();
    let other = tiny_spec(8);
    match run_journaled(&other, &scratch.0) {
        Err(CampaignError::SpecMismatch { expected, found }) => {
            assert_eq!(expected, other.fingerprint());
            assert_eq!(found, spec.fingerprint());
        }
        other => panic!("expected SpecMismatch, got {other:?}"),
    }
}

#[test]
fn corrupt_complete_journal_line_is_an_error_not_a_skip() {
    let spec = tiny_spec(13);
    let scratch = Scratch::new("corrupt");
    advance_journaled(&spec, &scratch.0, 2).unwrap();
    let text = fs::read_to_string(&scratch.0).unwrap();
    // Poison a value on a *complete* (newline-terminated) line.
    let poisoned = text.replacen("unit eon cpi train 0 ", "unit eon cpi train 0 NaN ", 1);
    assert_ne!(text, poisoned);
    fs::write(&scratch.0, poisoned).unwrap();
    assert!(matches!(
        run_journaled(&spec, &scratch.0),
        Err(CampaignError::NonFinite { .. })
    ));
}

#[test]
fn chaos_journaled_campaign_completes_under_injected_faults() {
    use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
    let spec = tiny_spec(97);
    let scratch = Scratch::new("chaos");
    let plan = FaultPlan::new(5)
        .rate(0.5)
        .targeting(&[FaultSite::RbfWeightFit])
        .kinds(&[
            FaultKind::Singular,
            FaultKind::NonFinite,
            FaultKind::EarlyStop,
        ]);
    let (out, fault_report) = fault::with_plan(plan, || run_journaled(&spec, &scratch.0));
    let evals = out.unwrap();
    assert!(fault_report.fired > 0);
    let degradation = &evals[0].degradation;
    assert_eq!(
        degradation.rung_counts().iter().sum::<usize>(),
        degradation.coefficient_count(),
        "every coefficient must be accounted for"
    );
    assert!(degradation.degraded_count() > 0);
    // Degradation is visible in the archived report.
    let doc = report::full_report("chaos campaign", &evals);
    assert!(doc.contains("Model health:"));
    assert!(doc.contains("fallback") || doc.contains("ridge-escalated"));
}
