//! Cross-crate consistency tests: simulator, power and AVF models seen
//! through the `dynawave-core` dataset layer.

use dynawave_avf::{AvfModel, Structure};
use dynawave_core::{collect_domain_traces, trace_for, Metric};
use dynawave_power::PowerModel;
use dynawave_sampling::{lhs, random, DesignPoint, DesignSpace, Split};
use dynawave_sim::{MachineConfig, SimOptions, Simulator};
use dynawave_workloads::Benchmark;

fn opts() -> SimOptions {
    SimOptions {
        samples: 16,
        interval_instructions: 900,
        seed: 77,
    }
}

fn baseline_point() -> DesignPoint {
    DesignPoint::new(vec![8.0, 96.0, 96.0, 48.0, 2048.0, 12.0, 32.0, 64.0, 1.0])
}

#[test]
fn domain_traces_consistent_with_individual_collection() {
    let points = vec![baseline_point()];
    let [cpi, power, avf] = collect_domain_traces(Benchmark::Parser, &points, &opts());
    assert_eq!(
        cpi.traces[0],
        trace_for(Benchmark::Parser, &points[0], Metric::Cpi, &opts())
    );
    assert_eq!(
        power.traces[0],
        trace_for(Benchmark::Parser, &points[0], Metric::Power, &opts())
    );
    assert_eq!(
        avf.traces[0],
        trace_for(Benchmark::Parser, &points[0], Metric::Avf, &opts())
    );
}

#[test]
fn every_benchmark_runs_on_every_test_level_extreme() {
    // Corner configurations of the test grid must simulate cleanly for
    // all twelve benchmarks.
    let small = DesignPoint::new(vec![2.0, 128.0, 32.0, 16.0, 256.0, 14.0, 8.0, 16.0, 3.0]);
    let large = DesignPoint::new(vec![8.0, 160.0, 64.0, 32.0, 4096.0, 8.0, 32.0, 64.0, 1.0]);
    for bench in Benchmark::ALL {
        for point in [&small, &large] {
            let t = trace_for(bench, point, Metric::Cpi, &opts());
            assert_eq!(t.len(), 16);
            assert!(
                t.iter().all(|&v| v.is_finite() && v > 0.0),
                "{bench} produced a bad CPI trace"
            );
        }
    }
}

#[test]
fn larger_caches_never_increase_miss_counts() {
    // Monotonicity across the dl1 axis for a cache-sensitive benchmark.
    let mut misses = Vec::new();
    for dl1 in [8.0, 16.0, 32.0, 64.0] {
        let p = DesignPoint::new(vec![8.0, 96.0, 96.0, 48.0, 2048.0, 12.0, 32.0, dl1, 1.0]);
        let config = MachineConfig::from_design_values(p.values());
        let run = Simulator::new(config).run(Benchmark::Twolf, &opts());
        misses.push(run.intervals.iter().map(|i| i.dl1_misses).sum::<u64>());
    }
    for w in misses.windows(2) {
        assert!(
            w[1] <= w[0] + w[0] / 10,
            "dl1 misses increased with capacity: {misses:?}"
        );
    }
}

#[test]
fn power_and_avf_remain_in_physical_bounds_across_design_space() {
    let space = DesignSpace::micro2007();
    let pts = lhs::sample(&space, 12, 5);
    for p in &pts {
        let config = MachineConfig::from_design_values(p.values());
        let run = Simulator::new(config.clone()).run(Benchmark::Vortex, &opts());
        let power = PowerModel::new(&config);
        let avf = AvfModel::new(&config);
        for i in &run.intervals {
            let w = power.interval_power(i).total();
            assert!(w > 1.0 && w < 500.0, "power {w} W out of bounds at {p}");
            let rep = avf.interval_report(i);
            for v in [rep.iq, rep.rob, rep.lsq] {
                assert!((0.0..=1.0).contains(&v), "AVF {v} out of bounds at {p}");
            }
        }
    }
}

#[test]
fn same_workload_different_configs_share_instruction_stream() {
    // Aggregate branch counts are timing-independent: two configs must
    // observe the identical dynamic branch count.
    let count = |p: &DesignPoint| {
        let config = MachineConfig::from_design_values(p.values());
        let run = Simulator::new(config).run(Benchmark::Bzip2, &opts());
        run.intervals.iter().map(|i| i.branches).sum::<u64>()
    };
    let a = count(&baseline_point());
    let b = count(&DesignPoint::new(vec![
        2.0, 128.0, 32.0, 16.0, 256.0, 20.0, 8.0, 8.0, 4.0,
    ]));
    assert_eq!(a, b, "branch counts diverged across configurations");
}

#[test]
fn dvm_point_reduces_iq_avf_and_costs_cycles() {
    let mut v = vec![8.0, 96.0, 96.0, 48.0, 256.0, 20.0, 32.0, 16.0, 2.0, 0.0];
    let off = DesignPoint::new(v.clone());
    v[9] = 0.3;
    let on = DesignPoint::new(v);
    let run_of = |p: &DesignPoint| {
        let config = MachineConfig::from_design_values(p.values());
        let run = Simulator::new(config.clone()).run(Benchmark::Mcf, &opts());
        let avf = AvfModel::new(&config).average_avf(&run, Structure::IssueQueue);
        (avf, run.total_cycles())
    };
    let (avf_off, cycles_off) = run_of(&off);
    let (avf_on, cycles_on) = run_of(&on);
    assert!(avf_on < avf_off, "DVM did not lower IQ AVF");
    assert!(
        cycles_on >= cycles_off,
        "DVM sped the machine up, which cannot happen"
    );
}

#[test]
fn test_design_points_are_always_simulable() {
    let space = DesignSpace::micro2007_with_dvm();
    for p in random::sample(&space, 30, Split::Test, 123) {
        let config = MachineConfig::from_design_values(p.values());
        let run = Simulator::new(config).run(
            Benchmark::Eon,
            &SimOptions {
                samples: 4,
                interval_instructions: 500,
                seed: 3,
            },
        );
        assert_eq!(run.intervals.len(), 4);
    }
}
