//! Concurrency battery for the parallel sharded campaign executor:
//! reports, journals, and obs event streams must be byte-identical for
//! any thread count — including under kill-and-resume and deterministic
//! fault injection — and shard-count mismatches must be refused, not
//! silently merged. A seeded interleaving stress harness drives the
//! storage-agnostic core through randomized schedules and mid-run kills
//! against the sequential oracle.

use dynawave_core::campaign::{
    run_journaled, run_journaled_parallel, shard_path, threads_from_env, CampaignError,
    CampaignRunner, CampaignSpec, ShardedCampaign,
};
use dynawave_core::experiment::ExperimentConfig;
use dynawave_core::{report, Metric};
use dynawave_testkit::stress::{stress_parallel, StressOp};
use dynawave_workloads::Benchmark;
use std::fs;
use std::path::PathBuf;

fn tiny_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::single(
        Benchmark::Eon,
        Metric::Cpi,
        ExperimentConfig {
            train_points: 10,
            test_points: 4,
            samples: 16,
            interval_instructions: 400,
            seed,
            ..ExperimentConfig::default()
        },
    )
}

/// A two-pair spec so the merge has to interleave units across
/// (benchmark, metric) boundaries, not just within one pair.
fn wide_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec![Benchmark::Eon, Benchmark::Mcf],
        metrics: vec![Metric::Cpi, Metric::Power],
        config: ExperimentConfig {
            train_points: 6,
            test_points: 2,
            samples: 16,
            interval_instructions: 400,
            seed,
            ..ExperimentConfig::default()
        },
    }
}

/// A collision-free scratch journal path that cleans itself (and any
/// shard sidecars) up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "dynawave-parallel-{}-{tag}.journal",
            std::process::id()
        ));
        let scratch = Scratch(path);
        scratch.wipe();
        scratch
    }

    fn wipe(&self) {
        let _ = fs::remove_file(&self.0);
        for shard in 0..32 {
            let _ = fs::remove_file(shard_path(&self.0, shard));
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        self.wipe();
    }
}

#[test]
fn reports_and_journals_byte_identical_across_thread_counts() {
    let spec = wide_spec(41);
    let reference = Scratch::new("threads-ref");
    let evals = run_journaled(&spec, &reference.0).unwrap();
    let want_report = report::full_report("campaign", &evals);
    let want_journal = fs::read_to_string(&reference.0).unwrap();
    for threads in [1, 2, 4, 8] {
        let scratch = Scratch::new(&format!("threads-{threads}"));
        let evals = run_journaled_parallel(&spec, &scratch.0, threads).unwrap();
        assert_eq!(
            report::full_report("campaign", &evals),
            want_report,
            "report diverged at {threads} threads"
        );
        assert_eq!(
            fs::read_to_string(&scratch.0).unwrap(),
            want_journal,
            "canonical journal diverged at {threads} threads"
        );
        // Completion cleans up every sidecar.
        for shard in 0..threads {
            assert!(
                !shard_path(&scratch.0, shard).exists(),
                "sidecar {shard} survived completion"
            );
        }
    }
}

#[test]
fn kill_and_resume_under_4_threads_is_byte_identical() {
    let spec = tiny_spec(43);
    let reference = Scratch::new("kill-ref");
    let want = report::full_report("campaign", &run_journaled(&spec, &reference.0).unwrap());
    let want_journal = fs::read_to_string(&reference.0).unwrap();

    // Simulate a killed 4-thread run: some shards part-done, one sidecar
    // torn mid-write, no canonical journal yet.
    let victim = Scratch::new("kill-victim");
    let mut partial = ShardedCampaign::new(spec.clone(), 4);
    for _ in 0..2 {
        for shard in 0..4 {
            partial.step(shard);
        }
    }
    assert_eq!(partial.completed_count(), 8);
    for shard in 0..4 {
        let mut text = partial.shard_journal(shard);
        if shard == 1 {
            text.truncate(text.len() - 9);
        }
        fs::write(shard_path(&victim.0, shard), text).unwrap();
    }

    // Resume under the same thread count: torn tail dropped and
    // re-simulated, report and canonical journal byte-identical.
    let evals = run_journaled_parallel(&spec, &victim.0, 4).unwrap();
    assert_eq!(report::full_report("campaign", &evals), want);
    assert_eq!(fs::read_to_string(&victim.0).unwrap(), want_journal);

    // And the completed canonical journal now serves any thread count.
    let evals = run_journaled_parallel(&spec, &victim.0, 2).unwrap();
    assert_eq!(report::full_report("campaign", &evals), want);
}

#[test]
fn chaos_under_4_threads_degrades_identically_to_1_thread() {
    use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
    let spec = tiny_spec(97);
    let plan = || {
        FaultPlan::new(5)
            .rate(0.5)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[
                FaultKind::Singular,
                FaultKind::NonFinite,
                FaultKind::EarlyStop,
            ])
    };
    let run = |threads: usize, tag: &str| {
        let scratch = Scratch::new(tag);
        let (out, fault_report) = fault::with_plan(plan(), || {
            run_journaled_parallel(&spec, &scratch.0, threads)
        });
        (out.unwrap(), fault_report)
    };
    let (evals_1, faults_1) = run(1, "chaos-1");
    let (evals_4, faults_4) = run(4, "chaos-4");
    // All fault sites are solver-side: training stays sequential on the
    // caller's thread, so the injected schedule cannot depend on the
    // worker count.
    assert!(faults_1.fired > 0, "plan must inject to mean much");
    assert_eq!(faults_1, faults_4, "fault schedule depends on thread count");
    assert_eq!(
        evals_1[0].degradation.rung_counts(),
        evals_4[0].degradation.rung_counts(),
        "recovery ladder depends on thread count"
    );
    assert!(evals_1[0].degradation.degraded_count() > 0);
    assert_eq!(
        report::full_report("chaos campaign", &evals_1),
        report::full_report("chaos campaign", &evals_4)
    );
}

#[test]
fn obs_streams_byte_identical_across_thread_counts_and_runs() {
    let spec = tiny_spec(59);
    let traced_run = |threads: usize, tag: &str| {
        let scratch = Scratch::new(tag);
        let prior = dynawave_obs::take();
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
        let evals = run_journaled_parallel(&spec, &scratch.0, threads).unwrap();
        let events = dynawave_obs::drain().expect("recorder was installed");
        if let Some(prior) = prior {
            dynawave_obs::install(prior);
        }
        (evals, dynawave_obs::encode_lines(&events))
    };
    let (evals_1, stream_1) = traced_run(1, "obs-1");
    let (_, stream_2) = traced_run(2, "obs-2");
    let (evals_4, stream_4) = traced_run(4, "obs-4");
    let (_, stream_8) = traced_run(8, "obs-8");
    let (_, stream_4b) = traced_run(4, "obs-4b");
    assert_eq!(
        stream_1, stream_4,
        "stream diverged between 1 and 4 threads"
    );
    assert_eq!(
        stream_1, stream_2,
        "stream diverged between 1 and 2 threads"
    );
    assert_eq!(
        stream_1, stream_8,
        "stream diverged between 1 and 8 threads"
    );
    assert_eq!(stream_4, stream_4b, "4-thread stream diverged across runs");
    assert_eq!(evals_1[0].nmse_per_test, evals_4[0].nmse_per_test);
    let summary = dynawave_obs::validate_stream(&stream_4);
    assert!(summary.is_clean(), "{:?}", summary.errors);
}

#[test]
fn stream_analysis_is_deterministic_and_sums_like_the_profile() {
    let spec = tiny_spec(67);
    let traced_run = |threads: usize, tag: &str| {
        let scratch = Scratch::new(tag);
        let prior = dynawave_obs::take();
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
        run_journaled_parallel(&spec, &scratch.0, threads).unwrap();
        let events = dynawave_obs::drain().expect("recorder was installed");
        if let Some(prior) = prior {
            dynawave_obs::install(prior);
        }
        events
    };
    let events_1 = traced_run(1, "analysis-1");
    let events_4 = traced_run(4, "analysis-4");
    let analysis_1 = dynawave_obs::StreamAnalysis::from_events(&events_1);
    let analysis_4 = dynawave_obs::StreamAnalysis::from_events(&events_4);
    // The derived report is byte-identical across worker counts, like the
    // stream it came from.
    let report_1 = analysis_1.render_markdown(5);
    assert_eq!(
        report_1,
        analysis_4.render_markdown(5),
        "obs report diverged between 1 and 4 threads"
    );
    assert_eq!(report_1, analysis_1.render_markdown(5), "render not stable");
    // Per-stage inclusive time must agree exactly with the existing
    // PipelineProfile section — two views of one attribution.
    let profile = dynawave_obs::PipelineProfile::from_events(&events_4);
    for (stage, stats) in profile.stages() {
        let got = &analysis_4.stages[stage];
        assert_eq!(
            got.inclusive_ticks, stats.ticks,
            "stage {stage} inclusive ticks diverged from PipelineProfile"
        );
        assert_eq!(got.count, stats.spans, "stage {stage} span count diverged");
        assert!(
            got.self_ticks <= got.inclusive_ticks,
            "stage {stage} self time exceeds inclusive"
        );
    }
    // One latency sample per completed unit, and the executor's
    // campaign.unit_latency histogram holds the same population.
    assert_eq!(analysis_4.unit_latencies.len(), spec.unit_count());
    let (_, counts) = &analysis_4.histograms["campaign.unit_latency"];
    assert_eq!(
        counts.iter().sum::<u64>(),
        spec.unit_count() as u64,
        "histogram population != unit count"
    );
    assert!(analysis_4.latency_summary().is_some());
    // parse_events round-trips the encoded stream into the same analysis.
    let text = dynawave_obs::encode_lines(&events_4);
    let reparsed = dynawave_obs::parse_events(&text).unwrap();
    assert_eq!(
        dynawave_obs::StreamAnalysis::from_events(&reparsed).render_markdown(5),
        report_1
    );
}

#[test]
fn parallel_resume_refuses_foreign_shard_counts() {
    let spec = tiny_spec(61);
    let scratch = Scratch::new("mismatch");
    let mut partial = ShardedCampaign::new(spec.clone(), 4);
    partial.step(0);
    partial.step(2);
    for shard in 0..4 {
        fs::write(shard_path(&scratch.0, shard), partial.shard_journal(shard)).unwrap();
    }
    match run_journaled_parallel(&spec, &scratch.0, 2) {
        Err(CampaignError::ShardMismatch { expected, found }) => {
            assert_eq!((expected, found), (2, 4));
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }
    // The sequential loader refuses them too (it is the one-shard case).
    match run_journaled(&spec, &scratch.0) {
        Err(CampaignError::ShardMismatch { expected, found }) => {
            assert_eq!((expected, found), (1, 4));
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }
}

#[test]
fn stress_randomized_schedules_match_the_sequential_oracle() {
    let spec = tiny_spec(73);
    // Sequential oracle, computed once.
    let mut oracle = CampaignRunner::new(spec.clone());
    while oracle.run_next().is_some() {}
    let oracle_journal = oracle.journal();
    let oracle_report = report::full_report("campaign", &oracle.finish().unwrap());

    stress_parallel("sharded campaign vs sequential oracle", 3, 12, |plan| {
        let shards = plan.shards;
        let mut campaign = ShardedCampaign::new(spec.clone(), shards);
        // Shadow "disk": the persisted sidecar text per shard. Steps
        // append their journal line, as the file-backed driver does.
        let mut journals: Vec<String> = (0..shards)
            .map(|shard| campaign.shard_journal(shard))
            .collect();
        let header_len = journals[0].len();
        for op in &plan.ops {
            match *op {
                StressOp::Step(shard) => {
                    let shard = shard % shards;
                    if let Some((_, line)) = campaign.step(shard) {
                        journals[shard].push_str(&line);
                    }
                }
                StressOp::Kill { shard, drop_bytes } => {
                    // Tear the tail (never the header: it was written
                    // whole at shard start), then rebuild the executor
                    // from the persisted journals alone.
                    let shard = shard % shards;
                    let body = journals[shard].len() - header_len;
                    let keep = journals[shard].len() - drop_bytes.min(body);
                    journals[shard].truncate(keep);
                    let mut rebuilt = ShardedCampaign::new(spec.clone(), shards);
                    for text in &journals {
                        rebuilt
                            .ingest_shard_journal(text)
                            .map_err(|e| format!("resume failed: {e}"))?;
                    }
                    campaign = rebuilt;
                    journals = (0..shards)
                        .map(|shard| campaign.shard_journal(shard))
                        .collect();
                }
            }
        }
        // Drain whatever the schedule left pending, round-robin.
        loop {
            let mut progressed = false;
            for shard in 0..shards {
                progressed |= campaign.step(shard).is_some();
            }
            if !progressed {
                break;
            }
        }
        if !campaign.is_complete() {
            return Err(format!(
                "campaign stalled at {}/{} units",
                campaign.completed_count(),
                spec.unit_count()
            ));
        }
        if campaign.merged_journal() != oracle_journal {
            return Err("merged journal diverged from sequential oracle".into());
        }
        let evals = campaign.finish().map_err(|e| format!("finish: {e}"))?;
        if report::full_report("campaign", &evals) != oracle_report {
            return Err("report diverged from sequential oracle".into());
        }
        Ok(())
    });
}

#[test]
fn threads_from_env_parses_overrides_and_defaults() {
    // One test owns the env var: cargo may run tests concurrently in one
    // process, and DYNAWAVE_THREADS is read nowhere else in this binary.
    std::env::set_var("DYNAWAVE_THREADS", "3");
    assert_eq!(threads_from_env().unwrap(), 3);
    std::env::set_var("DYNAWAVE_THREADS", "0");
    let err = threads_from_env().unwrap_err();
    assert_eq!(err.name, "DYNAWAVE_THREADS");
    std::env::set_var("DYNAWAVE_THREADS", "many");
    assert!(threads_from_env().is_err());
    std::env::remove_var("DYNAWAVE_THREADS");
    assert!(threads_from_env().unwrap() >= 1);
}
