//! Determinism regression tests: a single `ExperimentConfig.seed` must pin
//! every stochastic component of the workspace bit-for-bit, run to run.
//! These guard the hermetic in-tree RNG — any change to its stream or to a
//! consumer's draw order shows up here before it silently shifts results.

use dynawave_core::experiment::{evaluate_benchmark, ExperimentConfig};
use dynawave_core::Metric;
use dynawave_sampling::{lhs, random, DesignSpace, Split};
use dynawave_workloads::{Benchmark, TraceGenerator};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        train_points: 20,
        test_points: 5,
        samples: 16,
        interval_instructions: 500,
        seed: 20260806,
        ..ExperimentConfig::default()
    }
}

#[test]
fn traces_are_bit_identical_across_runs() {
    let cfg = cfg();
    for bench in [Benchmark::Gcc, Benchmark::Mcf, Benchmark::Swim] {
        let a: Vec<_> = TraceGenerator::new(bench, 10_000, cfg.seed).collect();
        let b: Vec<_> = TraceGenerator::new(bench, 10_000, cfg.seed).collect();
        assert_eq!(
            a, b,
            "{bench} trace differs between runs of seed {}",
            cfg.seed
        );
    }
}

#[test]
fn traces_differ_across_seeds_and_benchmarks() {
    let cfg = cfg();
    let a: Vec<_> = TraceGenerator::new(Benchmark::Gcc, 5_000, cfg.seed).collect();
    let b: Vec<_> = TraceGenerator::new(Benchmark::Gcc, 5_000, cfg.seed + 1).collect();
    let c: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 5_000, cfg.seed).collect();
    assert_ne!(a, b, "seed does not feed the trace stream");
    assert_ne!(a, c, "benchmark label does not feed the trace stream");
}

#[test]
fn lhs_matrix_is_identical_across_runs() {
    let cfg = cfg();
    let a = cfg.train_design();
    let b = cfg.train_design();
    assert_eq!(a, b, "LHS training design differs between runs");
    // And the raw sampler agrees with itself under an explicit space.
    let space = DesignSpace::micro2007();
    assert_eq!(
        lhs::sample(&space, 50, cfg.seed),
        lhs::sample(&space, 50, cfg.seed)
    );
}

#[test]
fn random_test_design_is_identical_across_runs() {
    let cfg = cfg();
    let space = DesignSpace::micro2007();
    assert_eq!(
        random::sample(&space, 30, Split::Test, cfg.seed),
        random::sample(&space, 30, Split::Test, cfg.seed)
    );
}

#[test]
fn end_to_end_nmse_is_identical_across_runs() {
    let cfg = cfg();
    let a = evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg).expect("pipeline runs");
    let b = evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg).expect("pipeline runs");
    assert_eq!(
        a.nmse_per_test, b.nmse_per_test,
        "end-to-end NMSE differs between identical runs"
    );
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.median_nmse(), b.median_nmse());
}

#[test]
fn obs_event_streams_are_byte_identical_across_runs() {
    // Tracing must not perturb determinism, and must itself be
    // deterministic: two identical seeded runs on the tick clock emit
    // byte-identical JSON-lines streams.
    let run = || {
        let prior = dynawave_obs::take();
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
        let eval = evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg()).expect("pipeline runs");
        let events = dynawave_obs::drain().expect("recorder was installed");
        if let Some(prior) = prior {
            dynawave_obs::install(prior);
        }
        (eval, dynawave_obs::encode_lines(&events))
    };
    let (eval_a, stream_a) = run();
    let (eval_b, stream_b) = run();
    assert_eq!(stream_a, stream_b, "traced event streams differ");
    assert_eq!(eval_a.nmse_per_test, eval_b.nmse_per_test);
    // The stream is schema-valid and covers the instrumented stages this
    // path exercises.
    let summary = dynawave_obs::validate_stream(&stream_a);
    assert!(summary.is_clean(), "{:?}", summary.errors);
    for stage in ["sim", "wavelet", "neural", "predictor", "experiment"] {
        assert!(
            summary.stages.contains(stage),
            "stage {stage} missing from {:?}",
            summary.stages
        );
    }
    // An untraced run is unaffected by instrumentation.
    let plain = evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg()).expect("pipeline runs");
    assert_eq!(plain.nmse_per_test, eval_a.nmse_per_test);
}

#[test]
fn traced_parallel_campaign_streams_are_byte_identical_across_runs() {
    use dynawave_core::campaign::{run_journaled_parallel, shard_path, CampaignSpec};
    // Four worker threads, each with its own thread-local recorder; the
    // merged stream must be deterministic run to run, schema-valid, and
    // cover the same stages `obs_validate --require-stages` gates on in
    // CI.
    let spec = CampaignSpec::single(
        Benchmark::Eon,
        Metric::Cpi,
        ExperimentConfig {
            train_points: 10,
            test_points: 4,
            samples: 16,
            interval_instructions: 400,
            seed: 20260808,
            ..ExperimentConfig::default()
        },
    );
    let run = |tag: &str| {
        let journal = std::env::temp_dir().join(format!(
            "dynawave-determinism-par-{}-{tag}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal);
        let prior = dynawave_obs::take();
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
        let evals = run_journaled_parallel(&spec, &journal, 4).expect("campaign runs");
        let events = dynawave_obs::drain().expect("recorder was installed");
        if let Some(prior) = prior {
            dynawave_obs::install(prior);
        }
        let _ = std::fs::remove_file(&journal);
        for shard in 0..4 {
            let _ = std::fs::remove_file(shard_path(&journal, shard));
        }
        (evals, dynawave_obs::encode_lines(&events))
    };
    let (evals_a, stream_a) = run("a");
    let (evals_b, stream_b) = run("b");
    assert_eq!(stream_a, stream_b, "traced parallel streams differ");
    assert_eq!(evals_a[0].nmse_per_test, evals_b[0].nmse_per_test);
    let summary = dynawave_obs::validate_stream(&stream_a);
    assert!(summary.is_clean(), "{:?}", summary.errors);
    for stage in ["sim", "wavelet", "neural", "predictor", "campaign"] {
        assert!(
            summary.stages.contains(stage),
            "stage {stage} missing from {:?}",
            summary.stages
        );
    }
}

#[test]
fn chaos_runs_are_bit_identical_across_runs() {
    use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
    let cfg = cfg();
    // A chaos run is a first-class experiment: the same fault-plan seed
    // must produce the same injected faults, the same degradation ladder
    // and the same numbers, bit for bit.
    let run = || {
        let plan = FaultPlan::new(0xBAD5EED)
            .rate(0.4)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[FaultKind::Singular, FaultKind::NonFinite]);
        fault::with_plan(plan, || {
            evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg).expect("resilient run")
        })
    };
    let (a, fr_a) = run();
    let (b, fr_b) = run();
    assert_eq!(fr_a, fr_b, "fault schedule differs between identical plans");
    assert!(
        fr_a.fired > 0,
        "plan must inject for this test to mean much"
    );
    assert_eq!(a.degradation, b.degradation, "degradation ladder differs");
    assert!(a.degradation.degraded_count() > 0);
    assert_eq!(a.nmse_per_test, b.nmse_per_test);
    assert_eq!(a.predictions, b.predictions);
}
