//! End-to-end integration tests: the full paper pipeline (design space →
//! simulation → wavelet decomposition → per-coefficient RBF networks →
//! reconstruction → accuracy metrics) at a small but real scale.

use dynawave_core::experiment::{evaluate_benchmark, score_model, ExperimentConfig};
use dynawave_core::{
    collect_traces, CoefficientSelection, Metric, ModelKind, PredictorParams,
    WaveletNeuralPredictor,
};
use dynawave_numeric::stats::{mean, nmse_percent};
use dynawave_workloads::Benchmark;

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        train_points: 40,
        test_points: 10,
        samples: 32,
        interval_instructions: 700,
        seed: 20260707,
        ..ExperimentConfig::default()
    }
}

#[test]
fn full_pipeline_accuracy_in_band() {
    // The headline claim: dynamics are predictable across the design
    // space at single-digit NMSE for most cases.
    let cfg = small_config();
    for (bench, metric, bound) in [
        (Benchmark::Mcf, Metric::Cpi, 15.0),
        (Benchmark::Eon, Metric::Power, 5.0),
        (Benchmark::Gap, Metric::Avf, 15.0),
    ] {
        let eval = evaluate_benchmark(bench, metric, &cfg).expect("pipeline runs");
        let median = eval.median_nmse();
        assert!(
            median < bound,
            "{bench}/{metric:?}: median NMSE {median}% over bound {bound}%"
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let cfg = small_config();
    let a = evaluate_benchmark(Benchmark::Vpr, Metric::Cpi, &cfg).unwrap();
    let b = evaluate_benchmark(Benchmark::Vpr, Metric::Cpi, &cfg).unwrap();
    assert_eq!(a.nmse_per_test, b.nmse_per_test);
    assert_eq!(a.predictions, b.predictions);
}

#[test]
fn prediction_tracks_level_changes_across_configs() {
    // The model must order configurations: a machine with tiny resources
    // should be forecast slower than a maximal one. Slightly more training
    // data than small_config(): the 1.2x ordering margin is tight enough
    // that 40 points leave it at the mercy of the sampling seed.
    let cfg = ExperimentConfig {
        train_points: 60,
        ..small_config()
    };
    let opts = cfg.sim_options();
    let train = collect_traces(Benchmark::Twolf, &cfg.train_design(), Metric::Cpi, &opts);
    let model = WaveletNeuralPredictor::train(&train, &cfg.predictor).unwrap();
    let weak = dynawave_sampling::DesignPoint::new(vec![
        2.0, 96.0, 32.0, 16.0, 256.0, 20.0, 8.0, 8.0, 4.0,
    ]);
    let strong = dynawave_sampling::DesignPoint::new(vec![
        16.0, 160.0, 128.0, 64.0, 4096.0, 8.0, 64.0, 64.0, 1.0,
    ]);
    let weak_cpi = mean(&model.predict(&weak));
    let strong_cpi = mean(&model.predict(&strong));
    assert!(
        weak_cpi > strong_cpi * 1.2,
        "weak {weak_cpi} vs strong {strong_cpi}"
    );
}

#[test]
fn wavelet_model_beats_flat_forecast_on_dynamics() {
    // Reproduces the motivation: a model that only gets the aggregate
    // right (flat trace at the predicted mean) classifies scenarios far
    // worse than the wavelet model on a phase-heavy benchmark.
    let cfg = small_config();
    let opts = cfg.sim_options();
    let train = collect_traces(Benchmark::Gap, &cfg.train_design(), Metric::Cpi, &opts);
    let test = collect_traces(Benchmark::Gap, &cfg.test_design(), Metric::Cpi, &opts);
    let model = WaveletNeuralPredictor::train(&train, &cfg.predictor).unwrap();
    let mut wavelet_err = 0.0;
    let mut flat_err = 0.0;
    for (p, actual) in test.points.iter().zip(&test.traces) {
        let pred = model.predict(p);
        let flat = vec![mean(&pred); actual.len()];
        wavelet_err += nmse_percent(actual, &pred);
        flat_err += nmse_percent(actual, &flat);
    }
    assert!(
        wavelet_err < flat_err,
        "wavelet {wavelet_err} vs flat {flat_err}"
    );
}

#[test]
fn magnitude_selection_not_worse_than_order() {
    // §3: "the magnitude-based scheme ... always outperforms the
    // order-based scheme". Allow a small tolerance at this tiny scale.
    let cfg = small_config();
    let opts = cfg.sim_options();
    let train = collect_traces(Benchmark::Gcc, &cfg.train_design(), Metric::Cpi, &opts);
    let test = collect_traces(Benchmark::Gcc, &cfg.test_design(), Metric::Cpi, &opts);
    let err = |selection| {
        let params = PredictorParams {
            selection,
            ..cfg.predictor.clone()
        };
        let model = WaveletNeuralPredictor::train(&train, &params).unwrap();
        score_model(Benchmark::Gcc, Metric::Cpi, model, test.clone()).mean_nmse()
    };
    let magnitude = err(CoefficientSelection::Magnitude);
    let order = err(CoefficientSelection::Order);
    assert!(
        magnitude <= order * 1.2,
        "magnitude {magnitude}% vs order {order}%"
    );
}

#[test]
fn nonlinear_model_not_worse_than_linear() {
    let cfg = small_config();
    let opts = cfg.sim_options();
    let train = collect_traces(Benchmark::Mcf, &cfg.train_design(), Metric::Cpi, &opts);
    let test = collect_traces(Benchmark::Mcf, &cfg.test_design(), Metric::Cpi, &opts);
    let err = |kind| {
        let params = PredictorParams {
            model: kind,
            ..cfg.predictor.clone()
        };
        let model = WaveletNeuralPredictor::train(&train, &params).unwrap();
        score_model(Benchmark::Mcf, Metric::Cpi, model, test.clone()).mean_nmse()
    };
    let rbf = err(ModelKind::TreeRbf);
    let linear = err(ModelKind::Linear);
    assert!(rbf <= linear * 1.5, "rbf {rbf}% vs linear {linear}%");
}

#[test]
fn dvm_parameter_is_learnable() {
    // With DVM as a 10th input, the model must forecast lower IQ AVF for
    // the policy-enabled variant of a memory-bound configuration.
    let cfg = ExperimentConfig {
        with_dvm_parameter: true,
        ..small_config()
    };
    let opts = cfg.sim_options();
    let train = collect_traces(Benchmark::Mcf, &cfg.train_design(), Metric::IqAvf, &opts);
    let model = WaveletNeuralPredictor::train(&train, &cfg.predictor).unwrap();
    let mut off = vec![8.0, 96.0, 96.0, 48.0, 256.0, 20.0, 32.0, 16.0, 2.0, 0.0];
    let off_pred = mean(&model.predict(&dynawave_sampling::DesignPoint::new(off.clone())));
    off[9] = 0.3;
    let on_pred = mean(&model.predict(&dynawave_sampling::DesignPoint::new(off)));
    assert!(
        on_pred < off_pred,
        "predicted IQ AVF with DVM ({on_pred}) not below without ({off_pred})"
    );
}
