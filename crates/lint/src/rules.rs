//! The dynalint rule engine: file classification, `#[cfg(test)]` region
//! tracking, inline suppressions, the token rules D001–D007 and the
//! structural rules D010–D013 (which run on the parse tree and call
//! graph from [`crate::parser`] / [`crate::callgraph`]).
//!
//! | Rule | Fires on | Why |
//! |------|----------|-----|
//! | D001 | `.unwrap()` / `.expect(…)` in non-test library code | library panics abort whole experiment runs |
//! | D002 | `panic!` / `todo!` / `unimplemented!` outside tests and bins | same; use the crate error types |
//! | D003 | `==` / `!=` against a float literal | bit-level float equality is almost never intended |
//! | D004 | `std::time`, `thread::sleep`, `thread::available_parallelism`, `thread::current`, `std::env`, `Instant`, `SystemTime`, `HashMap`, `HashSet`, `ThreadId` outside the harness crates | wall-clock, environment, machine capacity, thread identity and randomized hash iteration break bit-reproducibility |
//! | D005 | non-`path` dependencies in any `Cargo.toml` | the workspace is hermetic by policy |
//! | D006 | `unsafe` anywhere | `#![forbid(unsafe_code)]` is workspace policy |
//! | D007 | `Instant::now()` / `SystemTime` anywhere — tests included — outside the harness crates and the obs clock impls | wall-clock reads belong behind `dynawave_obs::Clock`, so even test timing is deterministic |
//! | D010 | public library fns that transitively reach a panic site through the call graph, or that index their own parameters without an assert contract | a panic N calls below the public surface still aborts a campaign |
//! | D011 | float comparators built on `partial_cmp`, and float reductions over unordered map/set iteration | NaN and hash order make results run-dependent; use `total_cmp` and sorted iteration |
//! | D012 | thread spawns, sync primitives, atomics and `static mut` outside the approved containment modules | concurrency is quarantined to the campaign executor, testkit stress harness and obs absorb |
//! | D013 | schema-ish string literals, bench units and instrument names that are not in the canonical `dynawave_obs::schema` vocabulary | a typo'd tag or stage silently forks the byte-stream fleet |
//! | D000 | malformed `dynalint:allow` suppressions | suppressions must name rules and carry a reason |

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::parser::parse_file;
use crate::tree::{Expr, File, Item, ItemKind};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Malformed or reason-less `dynalint:allow` comment.
    D000,
    /// `unwrap()` / `expect()` in non-test library code.
    D001,
    /// `panic!` / `todo!` / `unimplemented!` outside tests and bins.
    D002,
    /// Float `==` / `!=` comparison.
    D003,
    /// Nondeterminism source outside the harness crates.
    D004,
    /// External (non-path) dependency in a manifest.
    D005,
    /// `unsafe` block or function.
    D006,
    /// Direct wall-clock read outside the sanctioned clock impls.
    D007,
    /// Public fn transitively reaches a panic site (call-graph rule).
    D010,
    /// Run-dependent float ordering (`partial_cmp` comparators,
    /// reductions over unordered iteration).
    D011,
    /// Concurrency primitive outside the containment modules.
    D012,
    /// String literal drifts from the canonical schema vocabulary.
    D013,
}

impl RuleId {
    /// All real rules, in order (excludes the D000 meta-rule).
    pub const ALL: [RuleId; 11] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::D006,
        RuleId::D007,
        RuleId::D010,
        RuleId::D011,
        RuleId::D012,
        RuleId::D013,
    ];

    /// Parses `"D001"` → [`RuleId::D001`]; `None` for unknown names.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D000" => Some(RuleId::D000),
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "D005" => Some(RuleId::D005),
            "D006" => Some(RuleId::D006),
            "D007" => Some(RuleId::D007),
            "D010" => Some(RuleId::D010),
            "D011" => Some(RuleId::D011),
            "D012" => Some(RuleId::D012),
            "D013" => Some(RuleId::D013),
            _ => None,
        }
    }

    /// Stable display name (`"D001"`).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D000 => "D000",
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
            RuleId::D007 => "D007",
            RuleId::D010 => "D010",
            RuleId::D011 => "D011",
            RuleId::D012 => "D012",
            RuleId::D013 => "D013",
        }
    }

    /// One-line description of what the rule fires on (for `--explain`).
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D000 => "malformed or reason-less `dynalint:allow` suppression",
            RuleId::D001 => "`.unwrap()` / `.expect(...)` in non-test library code",
            RuleId::D002 => "`panic!` / `todo!` / `unimplemented!` outside tests and bins",
            RuleId::D003 => "`==` / `!=` comparison against a float literal",
            RuleId::D004 => "nondeterminism source (wall clock, env, hasher) outside the harness",
            RuleId::D005 => "non-`path` dependency in a Cargo.toml",
            RuleId::D006 => "`unsafe` anywhere in the workspace",
            RuleId::D007 => "direct wall-clock read outside the sanctioned clock impls",
            RuleId::D010 => "public library fn that can transitively reach a panic",
            RuleId::D011 => "run-dependent float ordering (partial_cmp, unordered reduction)",
            RuleId::D012 => "concurrency primitive outside the containment modules",
            RuleId::D013 => "string literal drifting from the canonical schema vocabulary",
        }
    }

    /// Why the rule exists (for `--explain`).
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::D000 => {
                "a suppression that names no rule or gives no reason defeats the audit \
                 trail the mechanism exists for"
            }
            RuleId::D001 => {
                "a panicking Option/Result accessor aborts the whole experiment campaign; \
                 library code must surface failures through the crate error types"
            }
            RuleId::D002 => {
                "panic-family macros in library code abort campaigns the same way an \
                 unwrap does, just more deliberately"
            }
            RuleId::D003 => {
                "bit-exact float equality is almost never the intended predicate and \
                 silently diverges across optimization levels"
            }
            RuleId::D004 => {
                "wall clocks, environment reads, machine capacity probes and randomized \
                 hash iteration all make two runs of the same seed differ"
            }
            RuleId::D005 => {
                "the workspace builds offline and hermetically; every dependency must be \
                 a path dependency inside the repo"
            }
            RuleId::D006 => "`#![forbid(unsafe_code)]` is workspace policy, tests included",
            RuleId::D007 => {
                "all timing flows through `dynawave_obs::Clock` so test and bench time \
                 is injectable and deterministic"
            }
            RuleId::D010 => {
                "a panic N calls below the public surface still aborts the campaign; the \
                 call graph is searched so the abort can't hide behind a helper. Fires \
                 only for transitive reach (depth-0 sites are D001/D002's business) and \
                 for public fns that index their own parameters without an assert \
                 contract"
            }
            RuleId::D011 => {
                "`partial_cmp` comparators return None on NaN, so sorts become \
                 input-order-dependent; reductions over HashMap/HashSet iteration \
                 accumulate floats in hasher order, which differs between runs"
            }
            RuleId::D012 => {
                "determinism is enforced by quarantine: threads, locks, channels, \
                 atomics and `static mut` live only in the campaign executor \
                 (crates/core/src/campaign.rs), the testkit stress harness and the obs \
                 absorb path, where their merge order is proven deterministic"
            }
            RuleId::D013 => {
                "every byte stream the workspace speaks is named in \
                 `dynawave_obs::schema`; a typo'd tag, unit or stage prefix silently \
                 forks producers from consumers"
            }
        }
    }

    /// The idiomatic fix (for `--explain`).
    pub fn fix_pattern(self) -> &'static str {
        match self {
            RuleId::D000 => "write `// dynalint:allow(D001) -- why this is sound`",
            RuleId::D001 => "return the crate's error type (`ok_or`, `?`, `unwrap_or_else`)",
            RuleId::D002 => "return an error; keep `assert!` for documented contracts",
            RuleId::D003 => "compare with an epsilon, or order with `total_cmp`",
            RuleId::D004 => "inject via config/clock traits; use BTreeMap/BTreeSet",
            RuleId::D005 => "vendor the code as a workspace crate and use `path = ...`",
            RuleId::D006 => "rewrite safely; there is no sanctioned unsafe in this repo",
            RuleId::D007 => "take a `&dyn dynawave_obs::Clock` (e.g. `dynawave_bench::WallClock`)",
            RuleId::D010 => {
                "make the helper fallible and propagate, or discharge the site with an \
                 audited `dynalint:allow(D010) -- reason`; for parameter indexing, use \
                 `.get()` or assert the bound first"
            }
            RuleId::D011 => "sort with `total_cmp`; iterate sorted keys before reducing",
            RuleId::D012 => {
                "route the parallelism through `dynawave_core::campaign` or move the \
                 code into an approved containment module"
            }
            RuleId::D013 => {
                "use the constants in `dynawave_obs::schema` (SCHEMA_TAGS, BENCH_UNITS) \
                 and name instruments `<stage>.<rest>` with a canonical stage"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding, pointing at a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// How a file participates in the workspace, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `crates/*/src` (not `src/bin`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Test, bench or example source (`tests/**`, `benches/**`,
    /// `examples/**`).
    Test,
    /// Source in a harness crate (`crates/bench`, `crates/testkit`),
    /// exempt from the determinism and panic-freedom rules.
    Harness,
}

/// Classifies a workspace-relative path (with `/` separators).
pub fn classify(path: &str) -> FileKind {
    let in_harness = path.starts_with("crates/bench/") || path.starts_with("crates/testkit/");
    if path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
    {
        return FileKind::Test;
    }
    if in_harness {
        return FileKind::Harness;
    }
    if path.contains("/src/bin/") || path.ends_with("/src/main.rs") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Per-line suppression state parsed from `dynalint:allow` comments.
struct Suppressions {
    /// line → rules allowed on that line.
    allowed: BTreeMap<usize, Vec<RuleId>>,
    /// Malformed suppressions become D000 findings.
    errors: Vec<(usize, String)>,
}

/// Parses `// dynalint:allow(D001, D004) -- reason` comments.
///
/// A suppression applies to its own line; a comment that owns its line
/// (nothing but the comment on it) applies to the next line instead. A
/// missing rule list or missing `-- reason` is itself a finding (D000):
/// silent, unexplained suppressions defeat the point of the tool.
fn parse_suppressions(comments: &[Comment]) -> Suppressions {
    let mut sup = Suppressions {
        allowed: BTreeMap::new(),
        errors: Vec::new(),
    };
    for c in comments {
        // Doc comments mention the marker in prose (like this crate's own
        // documentation); only plain comments carry directives.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("dynalint:allow") else {
            continue;
        };
        let rest = &c.text[at + "dynalint:allow".len()..];
        let Some(open) = rest.find('(') else {
            sup.errors
                .push((c.line, "dynalint:allow without a rule list".to_string()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            sup.errors
                .push((c.line, "dynalint:allow with unclosed rule list".to_string()));
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for part in rest[open + 1..close].split(',') {
            match RuleId::parse(part.trim()) {
                Some(r) => rules.push(r),
                None => {
                    sup.errors.push((
                        c.line,
                        format!("unknown rule {:?} in dynalint:allow", part.trim()),
                    ));
                    bad = true;
                }
            }
        }
        let after = &rest[close + 1..];
        let reason = after
            .split_once("--")
            .map(|(_, r)| r.trim())
            .unwrap_or_default();
        if reason.is_empty() {
            sup.errors.push((
                c.line,
                "dynalint:allow needs a reason: `-- why this is sound`".to_string(),
            ));
            bad = true;
        }
        if bad || rules.is_empty() {
            continue;
        }
        let target = if c.owns_line { c.line + 1 } else { c.line };
        sup.allowed.entry(target).or_default().extend(rules);
    }
    sup
}

/// Line ranges covered by `#[test]` / `#[cfg(test)]` items.
///
/// Token-level heuristic: after a test attribute, the annotated item
/// extends to the first `;` before any brace, or to the matching `}` of
/// the first `{`. Good enough for inline `mod tests { … }` and
/// `#[test] fn …` items, which is how the workspace writes tests.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                t => attr.push(t),
            }
            j += 1;
        }
        let is_test_attr = attr.first() == Some(&"test")
            || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes on the same item.
        let mut k = j;
        while k < tokens.len()
            && tokens[k].text == "#"
            && tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[")
        {
            let mut depth = 1usize;
            k += 2;
            while k < tokens.len() && depth > 0 {
                match tokens[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Find the item extent.
        let mut brace_depth = 0usize;
        let mut end_line = start_line;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = tokens[k].line;
                        k += 1;
                        break;
                    }
                }
                ";" if brace_depth == 0 => {
                    end_line = tokens[k].line;
                    k += 1;
                    break;
                }
                _ => {}
            }
            end_line = tokens[k].line;
            k += 1;
        }
        regions.push((start_line, end_line));
        i = k;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// One parsed source file: the unit both the token rules and the
/// structural rules operate on. Parse once, lint many ways — the
/// workspace walker builds one `SourceFile` per file and hands the whole
/// set to [`lint_sources`] so the call graph can span crate boundaries.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Role derived from the path (see [`classify`]).
    pub kind: FileKind,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Structural parse tree.
    pub tree: File,
    test_lines: Vec<(usize, usize)>,
    sup: Suppressions,
}

impl SourceFile {
    /// Lexes and parses `src`. Never fails: unparseable regions degrade
    /// to `Other` nodes, and the token rules still see every token.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let tree = parse_file(&lexed);
        let test_lines = test_regions(&lexed.tokens);
        let sup = parse_suppressions(&lexed.comments);
        SourceFile {
            path: path.to_string(),
            kind: classify(path),
            lexed,
            tree,
            test_lines,
            sup,
        }
    }

    /// True when `rule` is suppressed on `line` by a well-formed
    /// `dynalint:allow`.
    pub fn is_allowed(&self, line: usize, rule: RuleId) -> bool {
        self.sup
            .allowed
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule))
    }

    /// True when `line` falls inside a `#[test]` / `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: usize) -> bool {
        in_regions(&self.test_lines, line)
    }
}

/// Nondeterministic two-segment paths (`std::time`, `thread::sleep`, …).
/// `thread::available_parallelism` and `thread::current` are
/// machine/schedule-dependent: worker counts must flow through the
/// documented config entry points (where the allow is explicit) and
/// nothing may branch on thread identity.
const NONDET_PATHS: [(&str, &str); 8] = [
    ("std", "time"),
    ("thread", "sleep"),
    ("thread", "available_parallelism"),
    ("thread", "current"),
    ("env", "var"),
    ("env", "vars"),
    ("env", "var_os"),
    ("env", "args"),
];

/// Nondeterministic bare identifiers. `HashMap` / `HashSet` use a
/// randomized hasher, so their iteration order differs between runs;
/// `ThreadId` values depend on spawn order and recycling.
const NONDET_IDENTS: [&str; 5] = ["Instant", "SystemTime", "HashMap", "HashSet", "ThreadId"];

/// Lints one Rust source file: token rules, structural rules and the
/// single-file slice of D010. `path` must be workspace-relative with `/`
/// separators; it determines which rules apply (see [`classify`]). For
/// cross-file panic-reachability, use [`lint_sources`].
pub fn lint_rust_source(path: &str, src: &str) -> Vec<Finding> {
    let sf = SourceFile::parse(path, src);
    let mut findings = token_findings(&sf);
    findings.extend(structural_findings(&sf));
    findings.extend(crate::callgraph::panic_reachability(std::slice::from_ref(
        &sf,
    )));
    apply_suppressions(findings, &sf.sup, &sf.path)
}

/// Lints a whole set of parsed files, running the call-graph rule D010
/// across all of them so reachability crosses file and crate boundaries.
/// Findings come back sorted by `(file, line, col, rule)`.
pub fn lint_sources(files: &[SourceFile]) -> Vec<Finding> {
    let mut all = Vec::new();
    for sf in files {
        let mut findings = token_findings(sf);
        findings.extend(structural_findings(sf));
        all.extend(apply_suppressions(findings, &sf.sup, &sf.path));
    }
    for f in crate::callgraph::panic_reachability(files) {
        let allowed = files
            .iter()
            .find(|s| s.path == f.file)
            .is_some_and(|s| s.is_allowed(f.line, RuleId::D010));
        if !allowed {
            all.push(f);
        }
    }
    all.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    all
}

/// The token-level rules D001–D007 over one file. Findings are not yet
/// suppression-filtered.
fn token_findings(sf: &SourceFile) -> Vec<Finding> {
    let path = sf.path.as_str();
    let kind = sf.kind;
    let tokens = &sf.lexed.tokens;
    let regions = &sf.test_lines;
    let mut findings = Vec::new();
    let mut push = |rule: RuleId, tok: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let panic_free_scope = kind == FileKind::Lib;
    let deterministic_scope = matches!(kind, FileKind::Lib | FileKind::Bin);
    // D007 scope is broader than FileKind: benches and tests under the
    // harness crates classify as Test, so exempt by path prefix, plus the
    // obs clock implementations — the one sanctioned home for wall time.
    let wall_clock_scope = !(path.starts_with("crates/bench/")
        || path.starts_with("crates/testkit/")
        || path == "crates/obs/src/clock.rs");

    for (i, tok) in tokens.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);
        let in_test = in_regions(regions, tok.line);

        // D006: unsafe anywhere, tests included.
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            push(
                RuleId::D006,
                tok,
                "`unsafe` is forbidden workspace-wide".to_string(),
            );
        }

        // D007: direct wall-clock reads anywhere — tests and examples
        // included. `Instant::now()` call sites and any `SystemTime`
        // mention; timing belongs behind `dynawave_obs::Clock`.
        if wall_clock_scope && tok.kind == TokenKind::Ident {
            let instant_now = tok.text == "Instant"
                && next.is_some_and(|n| n.text == "::")
                && tokens.get(i + 2).is_some_and(|t| t.text == "now");
            if instant_now {
                push(
                    RuleId::D007,
                    tok,
                    "`Instant::now()` outside the clock impls; \
                     use a `dynawave_obs::Clock` (e.g. `dynawave_bench::WallClock`)"
                        .to_string(),
                );
            } else if tok.text == "SystemTime" {
                push(
                    RuleId::D007,
                    tok,
                    "`SystemTime` outside the clock impls; \
                     use a `dynawave_obs::Clock` (e.g. `dynawave_bench::WallClock`)"
                        .to_string(),
                );
            }
        }
        if in_test {
            continue;
        }

        // D001: .unwrap() / .expect( in library code.
        if panic_free_scope
            && tok.kind == TokenKind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && prev.is_some_and(|p| p.text == ".")
            && next.is_some_and(|n| n.text == "(")
        {
            push(
                RuleId::D001,
                tok,
                format!(
                    "`.{}()` in library code; return the crate's error type instead",
                    tok.text
                ),
            );
        }

        // D002: panic-family macros in library code.
        if panic_free_scope
            && tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
            && next.is_some_and(|n| n.text == "!")
        {
            push(
                RuleId::D002,
                tok,
                format!("`{}!` in library code; return an error instead", tok.text),
            );
        }

        // D003: ==/!= with a float literal on either side.
        if panic_free_scope && tok.kind == TokenKind::Op && (tok.text == "==" || tok.text == "!=") {
            let float_neighbor = prev.is_some_and(|p| p.kind == TokenKind::Float)
                || next.is_some_and(|n| n.kind == TokenKind::Float);
            if float_neighbor {
                push(
                    RuleId::D003,
                    tok,
                    format!(
                        "float `{}` comparison; use an epsilon or `total_cmp`",
                        tok.text
                    ),
                );
            }
        }

        // D004: nondeterminism sources outside the harness crates.
        if deterministic_scope && tok.kind == TokenKind::Ident {
            if NONDET_IDENTS.contains(&tok.text.as_str()) {
                push(
                    RuleId::D004,
                    tok,
                    format!(
                        "`{}` is a nondeterminism source (wall clock / randomized hasher)",
                        tok.text
                    ),
                );
            }
            if next.is_some_and(|n| n.text == "::") {
                if let Some(seg2) = tokens.get(i + 2) {
                    for (a, b) in NONDET_PATHS {
                        if tok.text == a && seg2.text == b {
                            push(
                                RuleId::D004,
                                tok,
                                format!("`{}::{}` is a nondeterminism source", a, b),
                            );
                        }
                    }
                }
            }
        }
    }

    findings
}

/// Drops findings covered by a `dynalint:allow` on their line and appends
/// D000 findings for malformed suppressions.
fn apply_suppressions(findings: Vec<Finding>, sup: &Suppressions, path: &str) -> Vec<Finding> {
    let mut kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            !sup.allowed
                .get(&f.line)
                .is_some_and(|rules| rules.contains(&f.rule))
        })
        .collect();
    for (line, msg) in &sup.errors {
        kept.push(Finding {
            rule: RuleId::D000,
            file: path.to_string(),
            line: *line,
            col: 1,
            message: msg.clone(),
        });
    }
    kept.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    kept
}

/// The tree-based rules D011–D013 over one file. Findings are not yet
/// suppression-filtered.
fn structural_findings(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    d011_float_determinism(sf, &mut findings);
    d012_concurrency_containment(sf, &mut findings);
    d013_schema_drift(sf, &mut findings);
    findings
}

/// Comparator-taking methods whose closure must not use `partial_cmp`.
const D011_SINKS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// D011: float determinism. Two shapes: a comparator passed to a sort/
/// search/extremum method that calls `partial_cmp` (NaN makes the order
/// partial), and a `sum`/`product`/`fold` chained off unordered
/// HashMap/HashSet iteration (hasher order differs between runs).
fn d011_float_determinism(sf: &SourceFile, findings: &mut Vec<Finding>) {
    if !matches!(sf.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    for fr in sf.tree.functions() {
        if sf.in_test_region(fr.func.span.line) {
            continue;
        }
        let Some(body) = &fr.func.body else { continue };
        // Pass 1: which let-bindings are unordered collections?
        let mut unordered: Vec<String> = Vec::new();
        for e in body {
            e.walk(&mut |e| {
                if let Expr::Let {
                    name: Some(n),
                    ty,
                    init,
                    ..
                } = e
                {
                    let ty_unordered = ty.iter().any(|t| t == "HashMap" || t == "HashSet");
                    let init_unordered = init.as_deref().is_some_and(|i| {
                        let mut hit = false;
                        i.walk(&mut |c| {
                            if let Expr::Path { segs, .. } = c {
                                hit |= segs.iter().any(|s| s == "HashMap" || s == "HashSet");
                            }
                        });
                        hit
                    });
                    if ty_unordered || init_unordered {
                        unordered.push(n.clone());
                    }
                }
            });
        }
        // Pass 2: the sinks.
        for e in body {
            e.walk(&mut |e| {
                if let Expr::MethodCall {
                    name, args, span, ..
                } = e
                {
                    if D011_SINKS.contains(&name.as_str()) && args_use_partial_cmp(args) {
                        findings.push(Finding {
                            rule: RuleId::D011,
                            file: sf.path.clone(),
                            line: span.line,
                            col: span.col,
                            message: format!(
                                "`{name}` comparator uses `partial_cmp`; NaN makes the \
                                 order run-dependent — use `total_cmp`"
                            ),
                        });
                    }
                }
                if let Expr::MethodCall {
                    name, recv, span, ..
                } = e
                {
                    if matches!(name.as_str(), "sum" | "product" | "fold")
                        && chain_root_is_unordered(recv, &unordered)
                    {
                        findings.push(Finding {
                            rule: RuleId::D011,
                            file: sf.path.clone(),
                            line: span.line,
                            col: span.col,
                            message: format!(
                                "`{name}` reduces over unordered hash iteration; float \
                                 accumulation order differs between runs — iterate \
                                 sorted keys (or a BTree collection) instead"
                            ),
                        });
                    }
                }
            });
        }
    }
}

/// True when any argument expression mentions `partial_cmp`.
fn args_use_partial_cmp(args: &[Expr]) -> bool {
    let mut hit = false;
    for a in args {
        a.walk(&mut |e| match e {
            Expr::MethodCall { name, .. } if name == "partial_cmp" => hit = true,
            Expr::Path { segs, .. } if segs.iter().any(|s| s == "partial_cmp") => hit = true,
            _ => {}
        });
    }
    hit
}

/// Descends a receiver chain; true when it passes through an iteration
/// adaptor (`values`/`keys`/`iter`/...) and bottoms out at a binding
/// known to be a HashMap/HashSet.
fn chain_root_is_unordered(recv: &Expr, unordered: &[String]) -> bool {
    let mut cur = recv;
    let mut saw_iter = false;
    loop {
        match cur {
            Expr::MethodCall { recv, name, .. } => {
                if matches!(
                    name.as_str(),
                    "values" | "keys" | "iter" | "into_iter" | "drain" | "values_mut" | "map"
                ) {
                    saw_iter |= name != "map";
                }
                cur = recv;
            }
            Expr::Field { recv, .. } => cur = recv,
            Expr::Unary { expr, .. } => cur = expr,
            Expr::Path { segs, .. } => {
                return saw_iter
                    && segs
                        .first()
                        .is_some_and(|s| unordered.iter().any(|u| u == s));
            }
            _ => return false,
        }
    }
}

/// The modules allowed to hold threads, locks and shared mutable state.
/// Everything else is single-threaded by policy so campaign results merge
/// deterministically.
const D012_APPROVED: [&str; 3] = [
    "crates/core/src/campaign.rs",
    "crates/testkit/src/stress.rs",
    "crates/obs/src/lib.rs",
];

/// Sync-primitive type names that signal shared-state concurrency.
const D012_SYNC_SEGS: [&str; 7] = [
    "Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "OnceLock", "LazyLock",
];

fn is_conc_seg(seg: &str) -> bool {
    D012_SYNC_SEGS.contains(&seg) || seg.starts_with("Atomic")
}

/// True for paths that reach into `std::thread`'s spawning surface.
/// `thread::available_parallelism` / `thread::current` are deliberately
/// not here — they are D004's (determinism) business, not containment's.
fn is_thread_spawn_path(segs: &[String]) -> bool {
    segs.iter().any(|s| s == "thread")
        && (segs.iter().any(|s| s == "Builder")
            || segs
                .last()
                .is_some_and(|s| matches!(s.as_str(), "spawn" | "scope" | "park")))
}

/// D012: concurrency containment. Thread spawns, sync primitives,
/// atomics, channels and `static mut` may appear only in the approved
/// modules; anywhere else they undermine the workspace's deterministic
/// single-threaded execution model.
fn d012_concurrency_containment(sf: &SourceFile, findings: &mut Vec<Finding>) {
    if sf.kind == FileKind::Test || D012_APPROVED.contains(&sf.path.as_str()) {
        return;
    }
    let mut push = |line: usize, col: usize, what: String| {
        if !in_regions(&sf.test_lines, line) {
            findings.push(Finding {
                rule: RuleId::D012,
                file: sf.path.clone(),
                line,
                col,
                message: format!(
                    "{what} outside the concurrency-containment modules (campaign \
                     executor, testkit stress harness, obs absorb)"
                ),
            });
        }
    };
    // Items: `use` paths and `static mut`.
    walk_items(&sf.tree.items, &mut |item: &Item| match &item.kind {
        ItemKind::Use(u) => {
            for path in &u.paths {
                if path.iter().any(|s| is_conc_seg(s)) || path.iter().any(|s| s == "thread") {
                    push(
                        item.span.line,
                        item.span.col,
                        format!("`use {}`", path.join("::")),
                    );
                }
            }
        }
        ItemKind::StaticMut { name } => {
            push(
                item.span.line,
                item.span.col,
                format!("`static mut {name}` (shared mutable state)"),
            );
        }
        _ => {}
    });
    // Expressions: qualified paths and `.spawn(...)` method calls.
    sf.tree.walk_exprs(&mut |e| match e {
        Expr::Path { segs, span } => {
            if segs.iter().any(|s| is_conc_seg(s)) {
                push(span.line, span.col, format!("`{}`", segs.join("::")));
            } else if is_thread_spawn_path(segs) {
                push(span.line, span.col, format!("`{}`", segs.join("::")));
            }
        }
        Expr::MethodCall { name, span, .. } if name == "spawn" => {
            push(span.line, span.col, "`.spawn(...)`".to_string());
        }
        _ => {}
    });
}

/// Recursive item walk (through impls and inline modules).
fn walk_items(items: &[Item], f: &mut impl FnMut(&Item)) {
    for item in items {
        f(item);
        match &item.kind {
            ItemKind::Impl(imp) => walk_items(&imp.items, f),
            ItemKind::Mod(m) => walk_items(&m.items, f),
            _ => {}
        }
    }
}

/// Obs emitter fns whose first argument is an instrument name that must
/// carry a canonical `<stage>.` prefix.
const D013_EMITTERS: [&str; 7] = [
    "span",
    "counter_add",
    "gauge_set",
    "histogram_observe",
    "marker",
    "marker_with_detail",
    "marker_latency",
];

/// D013: schema-literal drift. Checks string literals against the
/// canonical vocabulary exported by `dynawave_obs::schema`: whole-literal
/// schema tags, `"schema":"..."` values embedded in JSON templates, bench
/// units passed to `bench_json_line_with_unit`, and instrument-name
/// arguments of the obs emitters.
fn d013_schema_drift(sf: &SourceFile, findings: &mut Vec<Finding>) {
    if sf.kind == FileKind::Test {
        return;
    }
    let mut push = |line: usize, col: usize, message: String| {
        findings.push(Finding {
            rule: RuleId::D013,
            file: sf.path.clone(),
            line,
            col,
            message,
        });
    };
    // Token scan: literals anywhere (consts included — the tree does not
    // model const initializers).
    for tok in &sf.lexed.tokens {
        if tok.kind != TokenKind::Str || in_regions(&sf.test_lines, tok.line) {
            continue;
        }
        let Some(content) = str_content(&tok.text) else {
            continue;
        };
        if looks_like_schema_tag(content) && !dynawave_obs::schema::SCHEMA_TAGS.contains(&content) {
            push(
                tok.line,
                tok.col,
                format!(
                    "string literal {content:?} looks like a schema tag but is not in \
                     `dynawave_obs::schema::SCHEMA_TAGS`"
                ),
            );
        }
        if let Some(value) = embedded_schema_value(content) {
            if !value.contains('{') && !dynawave_obs::schema::SCHEMA_TAGS.contains(&value) {
                push(
                    tok.line,
                    tok.col,
                    format!(
                        "embedded schema tag {value:?} is not in \
                         `dynawave_obs::schema::SCHEMA_TAGS`"
                    ),
                );
            }
            // Serve-protocol templates: the embedded `"kind"` value must
            // come from the canonical request/response vocabulary.
            if value == dynawave_obs::schema::SERVE_SCHEMA {
                if let Some(kind) = embedded_kind_value(content) {
                    if !kind.contains('{') && !dynawave_obs::schema::is_serve_kind(kind) {
                        push(
                            tok.line,
                            tok.col,
                            format!(
                                "embedded serve kind {kind:?} is not a canonical \
                                 `dynawave-serve` request/response kind (see \
                                 `dynawave_obs::schema::SERVE_REQUEST_KINDS` / \
                                 `SERVE_RESPONSE_KINDS`)"
                            ),
                        );
                    }
                }
            }
        }
    }
    // Tree scan: argument positions of the schema-speaking call surface.
    sf.tree.walk_exprs(&mut |e| {
        let (name, args, span) = match e {
            Expr::Call { callee, args, span } => match callee.as_ref() {
                Expr::Path { segs, .. } => match segs.last() {
                    Some(n) => (n.as_str(), args, span),
                    None => return,
                },
                _ => return,
            },
            Expr::MethodCall {
                name, args, span, ..
            } => (name.as_str(), args, span),
            _ => return,
        };
        if in_regions(&sf.test_lines, span.line) {
            return;
        }
        if name == "bench_json_line_with_unit" {
            if let Some(unit) = lit_str_arg(args, 1) {
                if !dynawave_obs::schema::BENCH_UNITS.contains(&unit) {
                    push(
                        span.line,
                        span.col,
                        format!(
                            "bench unit {unit:?} is not in `dynawave_obs::schema::BENCH_UNITS`"
                        ),
                    );
                }
            }
        }
        if D013_EMITTERS.contains(&name) {
            let mut check = |idx: usize| {
                if let Some(instr) = lit_str_arg(args, idx) {
                    if !dynawave_obs::schema::has_canonical_stage(instr) {
                        push(
                            span.line,
                            span.col,
                            format!(
                                "instrument name {instr:?} has no canonical `<stage>.` \
                                 prefix (see `dynawave_obs::schema::STAGES`)"
                            ),
                        );
                    } else if instr.starts_with("serve.")
                        && !dynawave_obs::schema::is_serve_metric(instr)
                    {
                        // The serve stage's instruments are a closed
                        // vocabulary: the stats snapshot, the validator
                        // and the SLO analyzer all key off these exact
                        // names, so an uncatalogued one is drift.
                        push(
                            span.line,
                            span.col,
                            format!(
                                "serve instrument {instr:?} is not in \
                                 `dynawave_obs::schema::SERVE_METRICS`"
                            ),
                        );
                    }
                }
            };
            check(0);
            if name == "marker_latency" {
                // The histogram name (arg 2) is an instrument too.
                check(2);
            }
        }
    });
}

/// The `idx`-th argument when it is a plain string literal.
fn lit_str_arg(args: &[Expr], idx: usize) -> Option<&str> {
    match args.get(idx) {
        Some(Expr::Lit {
            kind: TokenKind::Str,
            text,
            ..
        }) => str_content(text),
        _ => None,
    }
}

/// The inner text of a string-literal token (`"x"` / `r"x"` / `r#"x"#`),
/// or `None` for anything unquotable.
fn str_content(text: &str) -> Option<&str> {
    let stripped = text.strip_prefix('r').unwrap_or(text);
    let stripped = stripped.trim_matches('#');
    stripped.strip_prefix('"')?.strip_suffix('"')
}

/// True for literals shaped like a dynawave schema tag:
/// `dynawave-<word>` with an optional ` v<digits>` suffix, where `<word>`
/// is non-empty `[a-z0-9_-]+`.
fn looks_like_schema_tag(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("dynawave-") else {
        return false;
    };
    let (base, version) = match rest.split_once(" v") {
        Some((b, v)) => (b, Some(v)),
        None => (rest, None),
    };
    if base.is_empty()
        || !base
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
    {
        return false;
    }
    match version {
        Some(v) => !v.is_empty() && v.chars().all(|c| c.is_ascii_digit()),
        None => true,
    }
}

/// Extracts the value of a `"schema":"<value>"` pair embedded in a JSON
/// template literal (handles both raw and `\"`-escaped quoting).
fn embedded_schema_value(content: &str) -> Option<&str> {
    embedded_json_value(content, &["schema\\\":\\\"", "schema\":\""])
}

/// The `"kind":"<value>"` payload embedded in a JSON template literal.
fn embedded_kind_value(content: &str) -> Option<&str> {
    embedded_json_value(content, &["kind\\\":\\\"", "kind\":\""])
}

fn embedded_json_value<'a>(content: &'a str, markers: &[&str]) -> Option<&'a str> {
    for marker in markers {
        if let Some(at) = content.find(marker) {
            let rest = &content[at + marker.len()..];
            let end = rest.find("\\\"").or_else(|| rest.find('"'))?;
            return rest.get(..end);
        }
    }
    None
}

/// Lints a `Cargo.toml`. Every entry in a dependency section must be a
/// `path` dependency (hermetic workspace policy); `workspace = true` is
/// accepted because `[workspace.dependencies]` itself is checked.
pub fn lint_manifest(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies"
                || (section.starts_with("target.") && section.ends_with("dependencies"));
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let hermetic =
            value.contains("path") && value.contains('=') || value.contains("workspace = true");
        if !hermetic {
            findings.push(Finding {
                rule: RuleId::D005,
                file: path.to_string(),
                line: line_no,
                col: raw.len() - raw.trim_start().len() + 1,
                message: format!(
                    "dependency `{key}` is not a path dependency; the workspace is hermetic"
                ),
            });
        }
        if value.contains("git") && value.contains('=') && value.contains("//") {
            findings.push(Finding {
                rule: RuleId::D005,
                file: path.to_string(),
                line: line_no,
                col: 1,
                message: format!("dependency `{key}` pulls from git; the workspace is hermetic"),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<RuleId> {
        lint_rust_source(path, src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d001_fires_in_lib_only() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(LIB, src), [RuleId::D001]);
        assert!(rules_fired("crates/demo/src/bin/tool.rs", src).is_empty());
        assert!(rules_fired("crates/demo/tests/it.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d001_skips_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn d002_fires_on_panic_family() {
        assert_eq!(
            rules_fired(LIB, "fn f() { panic!(\"boom\") }"),
            [RuleId::D002]
        );
        assert_eq!(rules_fired(LIB, "fn f() { todo!() }"), [RuleId::D002]);
        // assert! is allowed: documented contract checks are fine.
        assert!(rules_fired(LIB, "fn f(x: u8) { assert!(x > 0); }").is_empty());
    }

    #[test]
    fn d003_fires_on_float_literal_compare() {
        assert_eq!(
            rules_fired(LIB, "fn f(x: f64) -> bool { x == 0.0 }"),
            [RuleId::D003]
        );
        assert_eq!(
            rules_fired(LIB, "fn f(x: f64) -> bool { 1e-3 != x }"),
            [RuleId::D003]
        );
        assert!(rules_fired(LIB, "fn f(x: u8) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn d004_fires_on_nondeterminism() {
        assert_eq!(
            rules_fired(LIB, "use std::time::Instant;"),
            [RuleId::D004, RuleId::D004] // std::time and Instant
        );
        assert_eq!(
            rules_fired(LIB, "fn f() { let m = HashMap::new(); m.len(); }"),
            [RuleId::D004]
        );
        assert!(rules_fired("crates/testkit/src/lib.rs", "use std::time::Instant;").is_empty());
    }

    #[test]
    fn d006_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { unsafe { } }\n}";
        assert_eq!(rules_fired(LIB, src), [RuleId::D006]);
    }

    #[test]
    fn d007_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { let _ = Instant::now(); }\n}";
        assert_eq!(rules_fired(LIB, src), [RuleId::D007]);
        // A test file path is no shelter either.
        assert_eq!(
            rules_fired(
                "crates/demo/tests/it.rs",
                "fn f() -> SystemTime { SystemTime::now() }"
            ),
            [RuleId::D007, RuleId::D007]
        );
    }

    #[test]
    fn d007_exempts_clock_homes_and_bare_instant() {
        let src = "fn f() { let _ = Instant::now(); }";
        assert!(rules_fired("crates/bench/benches/microbench.rs", src).is_empty());
        assert!(rules_fired("crates/testkit/src/lib.rs", src).is_empty());
        assert!(rules_fired("crates/obs/src/clock.rs", src)
            .iter()
            .all(|&r| r != RuleId::D007));
        // `Instant` without `::now` is D004's business, not D007's.
        assert_eq!(
            rules_fired(LIB, "fn f(t: Instant) -> Instant { t }"),
            [RuleId::D004, RuleId::D004]
        );
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // dynalint:allow(D001) -- demo";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn suppression_on_own_line_covers_next_line() {
        let src = "// dynalint:allow(D001) -- demo\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_d000() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // dynalint:allow(D001)";
        let fired = rules_fired(LIB, src);
        assert!(fired.contains(&RuleId::D000));
        assert!(fired.contains(&RuleId::D001));
    }

    #[test]
    fn rules_never_fire_in_strings_or_comments() {
        let src = "pub fn f() -> &'static str { \"x.unwrap() panic! unsafe\" } // .unwrap()";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn d011_partial_cmp_comparator_fires() {
        let src = "pub fn order(v: &mut Vec<f64>) {\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                   }";
        let fired = rules_fired(LIB, src);
        assert!(fired.contains(&RuleId::D011), "{fired:?}");
        let clean = "pub fn order(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(!rules_fired(LIB, clean).contains(&RuleId::D011));
    }

    #[test]
    fn d011_unordered_reduction_fires() {
        let src = "fn total(n: usize) -> f64 {\n\
                   let m: HashMap<u32, f64> = HashMap::new(); // dynalint:allow(D004) -- demo\n\
                   m.values().sum()\n\
                   }";
        assert!(rules_fired(LIB, src).contains(&RuleId::D011));
        let btree = "fn total(n: usize) -> f64 {\n\
                     let m: BTreeMap<u32, f64> = BTreeMap::new();\n\
                     m.values().sum()\n\
                     }";
        assert!(rules_fired(LIB, btree).is_empty());
    }

    #[test]
    fn d012_thread_and_sync_fire_outside_containment() {
        let spawn = "fn go() { std::thread::spawn(|| {}); }";
        assert!(rules_fired(LIB, spawn).contains(&RuleId::D012));
        let mutex = "use std::sync::Mutex;\nfn go(m: &Mutex<u8>) { let _ = Mutex::new(0u8); }";
        let fired = rules_fired(LIB, mutex);
        assert!(fired.contains(&RuleId::D012), "{fired:?}");
        let smut = "static mut COUNTER: u64 = 0;";
        assert!(rules_fired(LIB, smut).contains(&RuleId::D012));
    }

    #[test]
    fn d012_containment_modules_and_d004_probes_are_exempt() {
        let spawn = "fn go() { std::thread::spawn(|| {}); }";
        assert!(rules_fired("crates/core/src/campaign.rs", spawn).is_empty());
        assert!(rules_fired("crates/testkit/src/stress.rs", spawn).is_empty());
        // Capacity probes are D004's business, not containment's.
        let probe = "fn go() { let _ = std::thread::available_parallelism(); }";
        assert!(!rules_fired("crates/bench/src/bin/par.rs", probe).contains(&RuleId::D012));
    }

    #[test]
    fn d013_schema_tag_drift_fires() {
        let bad = "const MAGIC: &str = \"dynawave-campain v1\";";
        assert!(rules_fired(LIB, bad).contains(&RuleId::D013));
        let good = "const MAGIC: &str = \"dynawave-campaign v1\";";
        assert!(rules_fired(LIB, good).is_empty());
        // Not tag-shaped at all: no finding.
        let prose = "const MSG: &str = \"dynawave-lint: clean\";";
        assert!(rules_fired(LIB, prose).is_empty());
    }

    #[test]
    fn d013_embedded_tag_and_unit_fire() {
        let embedded = r#"fn line() -> &'static str { "{\"schema\":\"dynawave-os\",\"v\":1}" }"#;
        assert!(rules_fired(LIB, embedded).contains(&RuleId::D013));
        let unit = "fn go() { let _ = bench_json_line_with_unit(\"b\", \"furlongs\", \
                    1.0, 1.0, 1.0, 1, 1); }";
        assert!(rules_fired(LIB, unit).contains(&RuleId::D013));
    }

    #[test]
    fn d013_instrument_stage_prefix_checked() {
        let bad = "fn go() { let _s = dynawave_obs::span(\"simulator.run\"); }";
        assert!(rules_fired(LIB, bad).contains(&RuleId::D013));
        let good = "fn go() { let _s = dynawave_obs::span(\"sim.run_trace\"); }";
        assert!(rules_fired(LIB, good).is_empty());
        // Non-literal names are out of D013's reach by design.
        let dynamic = "fn go(n: &str) { let _s = dynawave_obs::span(n); }";
        assert!(rules_fired(LIB, dynamic).is_empty());
    }

    #[test]
    fn lint_sources_links_reachability_across_files() {
        let api = SourceFile::parse(
            "crates/a/src/lib.rs",
            "pub fn api(v: &[f64]) -> f64 { helper(v) }",
        );
        let helper = SourceFile::parse(
            "crates/b/src/lib.rs",
            "pub fn helper(v: &[f64]) -> f64 { *v.first().unwrap() }",
        );
        let findings = lint_sources(&[api, helper]);
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        // helper's own unwrap is D001; api reaching it across crates is D010.
        assert!(rules.contains(&RuleId::D001), "{findings:?}");
        assert!(rules.contains(&RuleId::D010), "{findings:?}");
    }

    #[test]
    fn explain_covers_every_rule() {
        for rule in RuleId::ALL {
            assert!(!rule.summary().is_empty());
            assert!(!rule.rationale().is_empty());
            assert!(!rule.fix_pattern().is_empty());
        }
    }

    #[test]
    fn manifest_path_deps_are_clean() {
        let src = "[dependencies]\nfoo = { path = \"../foo\" }\nbar = { workspace = true }\n";
        assert!(lint_manifest("crates/demo/Cargo.toml", src).is_empty());
    }

    #[test]
    fn manifest_registry_dep_fires() {
        let src = "[dependencies]\nserde = \"1.0\"\n";
        let f = lint_manifest("crates/demo/Cargo.toml", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::D005);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn manifest_non_dep_sections_ignored() {
        let src = "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[[test]]\npath = \"t.rs\"\n";
        assert!(lint_manifest("crates/demo/Cargo.toml", src).is_empty());
    }
}
