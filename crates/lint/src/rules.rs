//! The dynalint rule engine: file classification, `#[cfg(test)]` region
//! tracking, inline suppressions and the D001–D006 rules themselves.
//!
//! | Rule | Fires on | Why |
//! |------|----------|-----|
//! | D001 | `.unwrap()` / `.expect(…)` in non-test library code | library panics abort whole experiment runs |
//! | D002 | `panic!` / `todo!` / `unimplemented!` outside tests and bins | same; use the crate error types |
//! | D003 | `==` / `!=` against a float literal | bit-level float equality is almost never intended |
//! | D004 | `std::time`, `thread::sleep`, `thread::available_parallelism`, `thread::current`, `std::env`, `Instant`, `SystemTime`, `HashMap`, `HashSet`, `ThreadId` outside the harness crates | wall-clock, environment, machine capacity, thread identity and randomized hash iteration break bit-reproducibility |
//! | D005 | non-`path` dependencies in any `Cargo.toml` | the workspace is hermetic by policy |
//! | D006 | `unsafe` anywhere | `#![forbid(unsafe_code)]` is workspace policy |
//! | D007 | `Instant::now()` / `SystemTime` anywhere — tests included — outside the harness crates and the obs clock impls | wall-clock reads belong behind `dynawave_obs::Clock`, so even test timing is deterministic |
//! | D000 | malformed `dynalint:allow` suppressions | suppressions must name rules and carry a reason |

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Malformed or reason-less `dynalint:allow` comment.
    D000,
    /// `unwrap()` / `expect()` in non-test library code.
    D001,
    /// `panic!` / `todo!` / `unimplemented!` outside tests and bins.
    D002,
    /// Float `==` / `!=` comparison.
    D003,
    /// Nondeterminism source outside the harness crates.
    D004,
    /// External (non-path) dependency in a manifest.
    D005,
    /// `unsafe` block or function.
    D006,
    /// Direct wall-clock read outside the sanctioned clock impls.
    D007,
}

impl RuleId {
    /// All real rules, in order (excludes the D000 meta-rule).
    pub const ALL: [RuleId; 7] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::D006,
        RuleId::D007,
    ];

    /// Parses `"D001"` → [`RuleId::D001`]; `None` for unknown names.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D000" => Some(RuleId::D000),
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "D005" => Some(RuleId::D005),
            "D006" => Some(RuleId::D006),
            "D007" => Some(RuleId::D007),
            _ => None,
        }
    }

    /// Stable display name (`"D001"`).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D000 => "D000",
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
            RuleId::D007 => "D007",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding, pointing at a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// How a file participates in the workspace, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `crates/*/src` (not `src/bin`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Test, bench or example source (`tests/**`, `benches/**`,
    /// `examples/**`).
    Test,
    /// Source in a harness crate (`crates/bench`, `crates/testkit`),
    /// exempt from the determinism and panic-freedom rules.
    Harness,
}

/// Classifies a workspace-relative path (with `/` separators).
pub fn classify(path: &str) -> FileKind {
    let in_harness = path.starts_with("crates/bench/") || path.starts_with("crates/testkit/");
    if path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
    {
        return FileKind::Test;
    }
    if in_harness {
        return FileKind::Harness;
    }
    if path.contains("/src/bin/") || path.ends_with("/src/main.rs") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Per-line suppression state parsed from `dynalint:allow` comments.
struct Suppressions {
    /// line → rules allowed on that line.
    allowed: BTreeMap<usize, Vec<RuleId>>,
    /// Malformed suppressions become D000 findings.
    errors: Vec<(usize, String)>,
}

/// Parses `// dynalint:allow(D001, D004) -- reason` comments.
///
/// A suppression applies to its own line; a comment that owns its line
/// (nothing but the comment on it) applies to the next line instead. A
/// missing rule list or missing `-- reason` is itself a finding (D000):
/// silent, unexplained suppressions defeat the point of the tool.
fn parse_suppressions(comments: &[Comment]) -> Suppressions {
    let mut sup = Suppressions {
        allowed: BTreeMap::new(),
        errors: Vec::new(),
    };
    for c in comments {
        // Doc comments mention the marker in prose (like this crate's own
        // documentation); only plain comments carry directives.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("dynalint:allow") else {
            continue;
        };
        let rest = &c.text[at + "dynalint:allow".len()..];
        let Some(open) = rest.find('(') else {
            sup.errors
                .push((c.line, "dynalint:allow without a rule list".to_string()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            sup.errors
                .push((c.line, "dynalint:allow with unclosed rule list".to_string()));
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for part in rest[open + 1..close].split(',') {
            match RuleId::parse(part.trim()) {
                Some(r) => rules.push(r),
                None => {
                    sup.errors.push((
                        c.line,
                        format!("unknown rule {:?} in dynalint:allow", part.trim()),
                    ));
                    bad = true;
                }
            }
        }
        let after = &rest[close + 1..];
        let reason = after
            .split_once("--")
            .map(|(_, r)| r.trim())
            .unwrap_or_default();
        if reason.is_empty() {
            sup.errors.push((
                c.line,
                "dynalint:allow needs a reason: `-- why this is sound`".to_string(),
            ));
            bad = true;
        }
        if bad || rules.is_empty() {
            continue;
        }
        let target = if c.owns_line { c.line + 1 } else { c.line };
        sup.allowed.entry(target).or_default().extend(rules);
    }
    sup
}

/// Line ranges covered by `#[test]` / `#[cfg(test)]` items.
///
/// Token-level heuristic: after a test attribute, the annotated item
/// extends to the first `;` before any brace, or to the matching `}` of
/// the first `{`. Good enough for inline `mod tests { … }` and
/// `#[test] fn …` items, which is how the workspace writes tests.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                t => attr.push(t),
            }
            j += 1;
        }
        let is_test_attr = attr.first() == Some(&"test")
            || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes on the same item.
        let mut k = j;
        while k < tokens.len()
            && tokens[k].text == "#"
            && tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[")
        {
            let mut depth = 1usize;
            k += 2;
            while k < tokens.len() && depth > 0 {
                match tokens[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Find the item extent.
        let mut brace_depth = 0usize;
        let mut end_line = start_line;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = tokens[k].line;
                        k += 1;
                        break;
                    }
                }
                ";" if brace_depth == 0 => {
                    end_line = tokens[k].line;
                    k += 1;
                    break;
                }
                _ => {}
            }
            end_line = tokens[k].line;
            k += 1;
        }
        regions.push((start_line, end_line));
        i = k;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Nondeterministic two-segment paths (`std::time`, `thread::sleep`, …).
/// `thread::available_parallelism` and `thread::current` are
/// machine/schedule-dependent: worker counts must flow through the
/// documented config entry points (where the allow is explicit) and
/// nothing may branch on thread identity.
const NONDET_PATHS: [(&str, &str); 8] = [
    ("std", "time"),
    ("thread", "sleep"),
    ("thread", "available_parallelism"),
    ("thread", "current"),
    ("env", "var"),
    ("env", "vars"),
    ("env", "var_os"),
    ("env", "args"),
];

/// Nondeterministic bare identifiers. `HashMap` / `HashSet` use a
/// randomized hasher, so their iteration order differs between runs;
/// `ThreadId` values depend on spawn order and recycling.
const NONDET_IDENTS: [&str; 5] = ["Instant", "SystemTime", "HashMap", "HashSet", "ThreadId"];

/// Lints one Rust source file. `path` must be workspace-relative with
/// `/` separators; it determines which rules apply (see [`classify`]).
pub fn lint_rust_source(path: &str, src: &str) -> Vec<Finding> {
    let kind = classify(path);
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let regions = test_regions(tokens);
    let sup = parse_suppressions(&lexed.comments);
    let mut findings = Vec::new();
    let mut push = |rule: RuleId, tok: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let panic_free_scope = kind == FileKind::Lib;
    let deterministic_scope = matches!(kind, FileKind::Lib | FileKind::Bin);
    // D007 scope is broader than FileKind: benches and tests under the
    // harness crates classify as Test, so exempt by path prefix, plus the
    // obs clock implementations — the one sanctioned home for wall time.
    let wall_clock_scope = !(path.starts_with("crates/bench/")
        || path.starts_with("crates/testkit/")
        || path == "crates/obs/src/clock.rs");

    for (i, tok) in tokens.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);
        let in_test = in_regions(&regions, tok.line);

        // D006: unsafe anywhere, tests included.
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            push(
                RuleId::D006,
                tok,
                "`unsafe` is forbidden workspace-wide".to_string(),
            );
        }

        // D007: direct wall-clock reads anywhere — tests and examples
        // included. `Instant::now()` call sites and any `SystemTime`
        // mention; timing belongs behind `dynawave_obs::Clock`.
        if wall_clock_scope && tok.kind == TokenKind::Ident {
            let instant_now = tok.text == "Instant"
                && next.is_some_and(|n| n.text == "::")
                && tokens.get(i + 2).is_some_and(|t| t.text == "now");
            if instant_now {
                push(
                    RuleId::D007,
                    tok,
                    "`Instant::now()` outside the clock impls; \
                     use a `dynawave_obs::Clock` (e.g. `dynawave_bench::WallClock`)"
                        .to_string(),
                );
            } else if tok.text == "SystemTime" {
                push(
                    RuleId::D007,
                    tok,
                    "`SystemTime` outside the clock impls; \
                     use a `dynawave_obs::Clock` (e.g. `dynawave_bench::WallClock`)"
                        .to_string(),
                );
            }
        }
        if in_test {
            continue;
        }

        // D001: .unwrap() / .expect( in library code.
        if panic_free_scope
            && tok.kind == TokenKind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && prev.is_some_and(|p| p.text == ".")
            && next.is_some_and(|n| n.text == "(")
        {
            push(
                RuleId::D001,
                tok,
                format!(
                    "`.{}()` in library code; return the crate's error type instead",
                    tok.text
                ),
            );
        }

        // D002: panic-family macros in library code.
        if panic_free_scope
            && tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
            && next.is_some_and(|n| n.text == "!")
        {
            push(
                RuleId::D002,
                tok,
                format!("`{}!` in library code; return an error instead", tok.text),
            );
        }

        // D003: ==/!= with a float literal on either side.
        if panic_free_scope && tok.kind == TokenKind::Op && (tok.text == "==" || tok.text == "!=") {
            let float_neighbor = prev.is_some_and(|p| p.kind == TokenKind::Float)
                || next.is_some_and(|n| n.kind == TokenKind::Float);
            if float_neighbor {
                push(
                    RuleId::D003,
                    tok,
                    format!(
                        "float `{}` comparison; use an epsilon or `total_cmp`",
                        tok.text
                    ),
                );
            }
        }

        // D004: nondeterminism sources outside the harness crates.
        if deterministic_scope && tok.kind == TokenKind::Ident {
            if NONDET_IDENTS.contains(&tok.text.as_str()) {
                push(
                    RuleId::D004,
                    tok,
                    format!(
                        "`{}` is a nondeterminism source (wall clock / randomized hasher)",
                        tok.text
                    ),
                );
            }
            if next.is_some_and(|n| n.text == "::") {
                if let Some(seg2) = tokens.get(i + 2) {
                    for (a, b) in NONDET_PATHS {
                        if tok.text == a && seg2.text == b {
                            push(
                                RuleId::D004,
                                tok,
                                format!("`{}::{}` is a nondeterminism source", a, b),
                            );
                        }
                    }
                }
            }
        }
    }

    apply_suppressions(findings, sup, path)
}

/// Drops findings covered by a `dynalint:allow` on their line and appends
/// D000 findings for malformed suppressions.
fn apply_suppressions(findings: Vec<Finding>, sup: Suppressions, path: &str) -> Vec<Finding> {
    let mut kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            !sup.allowed
                .get(&f.line)
                .is_some_and(|rules| rules.contains(&f.rule))
        })
        .collect();
    for (line, msg) in sup.errors {
        kept.push(Finding {
            rule: RuleId::D000,
            file: path.to_string(),
            line,
            col: 1,
            message: msg,
        });
    }
    kept.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    kept
}

/// Lints a `Cargo.toml`. Every entry in a dependency section must be a
/// `path` dependency (hermetic workspace policy); `workspace = true` is
/// accepted because `[workspace.dependencies]` itself is checked.
pub fn lint_manifest(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies"
                || (section.starts_with("target.") && section.ends_with("dependencies"));
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let hermetic =
            value.contains("path") && value.contains('=') || value.contains("workspace = true");
        if !hermetic {
            findings.push(Finding {
                rule: RuleId::D005,
                file: path.to_string(),
                line: line_no,
                col: raw.len() - raw.trim_start().len() + 1,
                message: format!(
                    "dependency `{key}` is not a path dependency; the workspace is hermetic"
                ),
            });
        }
        if value.contains("git") && value.contains('=') && value.contains("//") {
            findings.push(Finding {
                rule: RuleId::D005,
                file: path.to_string(),
                line: line_no,
                col: 1,
                message: format!("dependency `{key}` pulls from git; the workspace is hermetic"),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<RuleId> {
        lint_rust_source(path, src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d001_fires_in_lib_only() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(LIB, src), [RuleId::D001]);
        assert!(rules_fired("crates/demo/src/bin/tool.rs", src).is_empty());
        assert!(rules_fired("crates/demo/tests/it.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d001_skips_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn d002_fires_on_panic_family() {
        assert_eq!(
            rules_fired(LIB, "fn f() { panic!(\"boom\") }"),
            [RuleId::D002]
        );
        assert_eq!(rules_fired(LIB, "fn f() { todo!() }"), [RuleId::D002]);
        // assert! is allowed: documented contract checks are fine.
        assert!(rules_fired(LIB, "fn f(x: u8) { assert!(x > 0); }").is_empty());
    }

    #[test]
    fn d003_fires_on_float_literal_compare() {
        assert_eq!(
            rules_fired(LIB, "fn f(x: f64) -> bool { x == 0.0 }"),
            [RuleId::D003]
        );
        assert_eq!(
            rules_fired(LIB, "fn f(x: f64) -> bool { 1e-3 != x }"),
            [RuleId::D003]
        );
        assert!(rules_fired(LIB, "fn f(x: u8) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn d004_fires_on_nondeterminism() {
        assert_eq!(
            rules_fired(LIB, "use std::time::Instant;"),
            [RuleId::D004, RuleId::D004] // std::time and Instant
        );
        assert_eq!(
            rules_fired(LIB, "fn f() { let m = HashMap::new(); m.len(); }"),
            [RuleId::D004]
        );
        assert!(rules_fired("crates/testkit/src/lib.rs", "use std::time::Instant;").is_empty());
    }

    #[test]
    fn d006_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { unsafe { } }\n}";
        assert_eq!(rules_fired(LIB, src), [RuleId::D006]);
    }

    #[test]
    fn d007_fires_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { let _ = Instant::now(); }\n}";
        assert_eq!(rules_fired(LIB, src), [RuleId::D007]);
        // A test file path is no shelter either.
        assert_eq!(
            rules_fired(
                "crates/demo/tests/it.rs",
                "fn f() -> SystemTime { SystemTime::now() }"
            ),
            [RuleId::D007, RuleId::D007]
        );
    }

    #[test]
    fn d007_exempts_clock_homes_and_bare_instant() {
        let src = "fn f() { let _ = Instant::now(); }";
        assert!(rules_fired("crates/bench/benches/microbench.rs", src).is_empty());
        assert!(rules_fired("crates/testkit/src/lib.rs", src).is_empty());
        assert!(rules_fired("crates/obs/src/clock.rs", src)
            .iter()
            .all(|&r| r != RuleId::D007));
        // `Instant` without `::now` is D004's business, not D007's.
        assert_eq!(
            rules_fired(LIB, "fn f(t: Instant) -> Instant { t }"),
            [RuleId::D004, RuleId::D004]
        );
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // dynalint:allow(D001) -- demo";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn suppression_on_own_line_covers_next_line() {
        let src = "// dynalint:allow(D001) -- demo\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_d000() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // dynalint:allow(D001)";
        let fired = rules_fired(LIB, src);
        assert!(fired.contains(&RuleId::D000));
        assert!(fired.contains(&RuleId::D001));
    }

    #[test]
    fn rules_never_fire_in_strings_or_comments() {
        let src = "pub fn f() -> &'static str { \"x.unwrap() panic! unsafe\" } // .unwrap()";
        assert!(rules_fired(LIB, src).is_empty());
    }

    #[test]
    fn manifest_path_deps_are_clean() {
        let src = "[dependencies]\nfoo = { path = \"../foo\" }\nbar = { workspace = true }\n";
        assert!(lint_manifest("crates/demo/Cargo.toml", src).is_empty());
    }

    #[test]
    fn manifest_registry_dep_fires() {
        let src = "[dependencies]\nserde = \"1.0\"\n";
        let f = lint_manifest("crates/demo/Cargo.toml", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::D005);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn manifest_non_dep_sections_ignored() {
        let src = "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[[test]]\npath = \"t.rs\"\n";
        assert!(lint_manifest("crates/demo/Cargo.toml", src).is_empty());
    }
}
