//! Panic-free, always-terminating recursive-descent parser.
//!
//! Produces the [`crate::tree`] structure from the span-carrying token
//! stream. Three hard guarantees, enforced mechanically rather than by
//! hope:
//!
//! * **No panics.** The parser never indexes, unwraps or asserts; every
//!   token access goes through `Option`. Unparseable input degrades to
//!   [`Expr::Other`] — the rules see less, they never crash.
//! * **Termination.** A global fuel counter (a small multiple of the
//!   token count) is burned on every `bump`; when it runs out the cursor
//!   jumps to end-of-input and every loop unwinds. Additionally, every
//!   loop either consumes a token or breaks.
//! * **Bounded recursion.** Expression recursion is capped at
//!   [`MAX_DEPTH`]; beyond it, nested input is skipped as balanced token
//!   soup instead of recursed into.
//!
//! The grammar is deliberately approximate: patterns are skipped
//! token-wise, types are skipped with bracket matching, macro arguments
//! are parsed tolerantly as expression soup (so `assert_eq!(a.unwrap(), …)`
//! still surfaces the method call). DESIGN §12 documents the resulting
//! false-negative/positive envelope.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::tree::{Expr, File, Fn, Impl, Item, ItemKind, Mod, Span, Use};

/// Maximum expression nesting before the parser falls back to balanced
/// token skipping. Real code in this workspace nests < 40 deep; the cap
/// exists for adversarial input.
const MAX_DEPTH: usize = 96;

/// Binding power of prefix operators (`-x`, `!x`, `&x`, `*x`).
const PREFIX_BP: u8 = 23;

/// Parses a lexed file. Never fails; see module docs for the guarantees.
pub fn parse_file(lexed: &Lexed) -> File {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
        fuel: lexed.tokens.len().saturating_mul(16).saturating_add(256),
        depth: 0,
        hoisted: Vec::new(),
    };
    let mut items = p.items(false);
    items.append(&mut p.hoisted);
    File { items }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    fuel: usize,
    depth: usize,
    /// Items found inside fn bodies, hoisted to the file level so the
    /// call graph still sees them.
    hoisted: Vec<Item>,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead)
    }

    fn at(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.text == text)
    }

    fn at_ahead(&self, ahead: usize, text: &str) -> bool {
        self.peek(ahead).is_some_and(|t| t.text == text)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        if self.fuel == 0 {
            // Out of fuel: jump to EOF so every loop sees exhaustion.
            self.pos = self.toks.len();
            return None;
        }
        self.fuel -= 1;
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn span_here(&self) -> Span {
        match self.peek(0) {
            Some(t) => Span {
                line: t.line,
                col: t.col,
            },
            None => Span::default(),
        }
    }

    /// Consumes a balanced bracket group starting at the current opener.
    /// Tolerant: any opener/closer of any bracket kind adjusts depth.
    fn skip_balanced(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            if self.bump().is_none() {
                return;
            }
            if depth == 0 {
                return;
            }
        }
    }

    /// Consumes a generic-argument group starting at `<`. `<<`/`>>`
    /// count double; `->` (fn-pointer types) is neutral. Gives up at
    /// `;`, `{` or EOF so a stray `<` cannot swallow the file.
    fn skip_angles(&mut self) {
        let mut depth = 0isize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ">=" => depth -= 1,
                ";" | "{" => return,
                _ => {}
            }
            if self.bump().is_none() {
                return;
            }
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skips `#[...]` / `#![...]` attributes; returns true if any were
    /// consumed.
    fn skip_attrs(&mut self) -> bool {
        let mut any = false;
        while self.at("#") {
            any = true;
            self.bump();
            if self.at("!") {
                self.bump();
            }
            if self.at("[") {
                self.skip_balanced();
            }
        }
        any
    }

    /// Consumes tokens up to and including the next `;` at bracket depth
    /// zero (or `{...}` group followed by nothing, for items like
    /// `struct S { .. }`).
    fn skip_item_tail(&mut self) {
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    return;
                }
                "(" | "[" => self.skip_balanced(),
                "{" => {
                    self.skip_balanced();
                    return;
                }
                "<" => self.skip_angles(),
                _ => {
                    if self.bump().is_none() {
                        return;
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Items
    // ---------------------------------------------------------------

    /// Parses items until EOF (or, when `inside_braces`, the matching
    /// `}` which is consumed).
    fn items(&mut self, inside_braces: bool) -> Vec<Item> {
        let mut out = Vec::new();
        loop {
            let before = self.pos;
            if self.peek(0).is_none() {
                return out;
            }
            if self.at("}") {
                self.bump();
                if inside_braces {
                    return out;
                }
                continue;
            }
            if let Some(item) = self.parse_one_item() {
                out.push(item);
            }
            if self.pos == before && self.bump().is_none() {
                return out;
            }
        }
    }

    /// Parses one item at the cursor, if the cursor is at something
    /// item-shaped; otherwise consumes at least one token and returns
    /// `None`.
    fn parse_one_item(&mut self) -> Option<Item> {
        self.skip_attrs();
        let span = self.span_here();
        let mut vis_pub = false;
        if self.at("pub") {
            vis_pub = true;
            self.bump();
            if self.at("(") {
                self.skip_balanced();
            }
        }
        // Fn modifiers and `extern "C"` blocks / `extern crate`.
        loop {
            let t = self.peek(0)?;
            match t.text.as_str() {
                "async" | "default" => {
                    self.bump();
                }
                "unsafe" if !self.at_ahead(1, "{") => {
                    self.bump();
                }
                "const" if self.at_ahead(1, "fn") => {
                    self.bump();
                }
                "extern" => {
                    self.bump();
                    if self.peek(0).is_some_and(|t| t.kind == TokenKind::Str) {
                        self.bump();
                    }
                    if self.at("crate") {
                        self.skip_item_tail();
                        return None;
                    }
                    if self.at("{") {
                        // Foreign block: declarations only, skip whole.
                        self.skip_balanced();
                        return None;
                    }
                }
                _ => break,
            }
        }
        let kw = self.peek(0)?;
        match kw.text.as_str() {
            "fn" => {
                let func = self.parse_fn();
                Some(Item {
                    span,
                    vis_pub,
                    kind: ItemKind::Fn(func),
                })
            }
            "impl" => Some(Item {
                span,
                vis_pub,
                kind: self.parse_impl(),
            }),
            "trait" => {
                // Model a trait as an impl-like container so default
                // method bodies join the call graph with an owner.
                self.bump();
                let name = self.bump_ident().unwrap_or_default();
                if self.at("<") {
                    self.skip_angles();
                }
                while let Some(t) = self.peek(0) {
                    match t.text.as_str() {
                        "{" => break,
                        ";" => {
                            self.bump();
                            return Some(Item {
                                span,
                                vis_pub,
                                kind: ItemKind::Other {
                                    keyword: "trait".into(),
                                },
                            });
                        }
                        "<" => self.skip_angles(),
                        _ => {
                            self.bump()?;
                        }
                    }
                }
                self.bump(); // {
                let items = self.items(true);
                Some(Item {
                    span,
                    vis_pub,
                    kind: ItemKind::Impl(Impl {
                        type_name: name,
                        trait_name: None,
                        items,
                    }),
                })
            }
            "mod" => {
                self.bump();
                let name = self.bump_ident().unwrap_or_default();
                if self.at("{") {
                    self.bump();
                    let items = self.items(true);
                    Some(Item {
                        span,
                        vis_pub,
                        kind: ItemKind::Mod(Mod { name, items }),
                    })
                } else {
                    if self.at(";") {
                        self.bump();
                    }
                    Some(Item {
                        span,
                        vis_pub,
                        kind: ItemKind::Other {
                            keyword: "mod".into(),
                        },
                    })
                }
            }
            "use" => {
                self.bump();
                let paths = self.parse_use_tree();
                if self.at(";") {
                    self.bump();
                }
                Some(Item {
                    span,
                    vis_pub,
                    kind: ItemKind::Use(Use { paths }),
                })
            }
            "static" => {
                self.bump();
                let is_mut = self.at("mut");
                if is_mut {
                    self.bump();
                }
                let name = self.bump_ident().unwrap_or_default();
                self.skip_item_tail();
                let kind = if is_mut {
                    ItemKind::StaticMut { name }
                } else {
                    ItemKind::Other {
                        keyword: "static".into(),
                    }
                };
                Some(Item {
                    span,
                    vis_pub,
                    kind,
                })
            }
            "const" | "type" => {
                let keyword = kw.text.clone();
                self.bump();
                self.skip_item_tail();
                Some(Item {
                    span,
                    vis_pub,
                    kind: ItemKind::Other { keyword },
                })
            }
            "struct" | "enum" | "union" => {
                let keyword = kw.text.clone();
                self.bump();
                self.bump_ident();
                if self.at("<") {
                    self.skip_angles();
                }
                self.skip_item_tail();
                // Tuple structs end `(...)` then `;`.
                if self.at(";") {
                    self.bump();
                }
                Some(Item {
                    span,
                    vis_pub,
                    kind: ItemKind::Other { keyword },
                })
            }
            "macro_rules" => {
                self.bump();
                if self.at("!") {
                    self.bump();
                }
                self.bump_ident();
                if self.at("{") || self.at("(") || self.at("[") {
                    self.skip_balanced();
                }
                Some(Item {
                    span,
                    vis_pub,
                    kind: ItemKind::Other {
                        keyword: "macro_rules".into(),
                    },
                })
            }
            _ => {
                self.bump();
                None
            }
        }
    }

    fn bump_ident(&mut self) -> Option<String> {
        let t = self.peek(0)?;
        if t.kind == TokenKind::Ident {
            let text = t.text.clone();
            self.bump();
            Some(text)
        } else {
            None
        }
    }

    /// Parses a fn starting at the `fn` keyword.
    fn parse_fn(&mut self) -> Fn {
        let span = self.span_here();
        self.bump(); // fn
        let name = self.bump_ident().unwrap_or_default();
        if self.at("<") {
            self.skip_angles();
        }
        let params = if self.at("(") {
            self.parse_params()
        } else {
            Vec::new()
        };
        // Return type and where clause: skip to the body or `;`.
        loop {
            let Some(t) = self.peek(0) else {
                return Fn {
                    name,
                    params,
                    body: None,
                    span,
                };
            };
            match t.text.as_str() {
                "{" => break,
                ";" => {
                    self.bump();
                    return Fn {
                        name,
                        params,
                        body: None,
                        span,
                    };
                }
                "(" | "[" => self.skip_balanced(),
                "<" => self.skip_angles(),
                _ => {
                    if self.bump().is_none() {
                        return Fn {
                            name,
                            params,
                            body: None,
                            span,
                        };
                    }
                }
            }
        }
        let (body, _) = self.parse_block();
        Fn {
            name,
            params,
            body: Some(body),
            span,
        }
    }

    /// Parses `( pattern: Type, ... )`, collecting pattern-side binding
    /// idents. `self` receivers are recorded as `"self"`.
    fn parse_params(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut angle = 0isize;
        let mut in_pattern = true;
        self.bump(); // (
        paren += 1;
        while let Some(t) = self.peek(0) {
            let at_top = paren == 1 && bracket == 0 && angle <= 0;
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        self.bump();
                        return params;
                    }
                }
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                ":" if at_top => in_pattern = false,
                "," if at_top => in_pattern = true,
                "self" => {
                    if in_pattern {
                        params.push("self".to_string());
                    }
                }
                "mut" | "ref" | "_" | "&" | "&&" | "dyn" | "impl" => {}
                _ => {
                    if in_pattern && t.kind == TokenKind::Ident {
                        params.push(t.text.clone());
                    }
                }
            }
            if self.bump().is_none() {
                return params;
            }
        }
        params
    }

    fn parse_impl(&mut self) -> ItemKind {
        self.bump(); // impl
        if self.at("<") {
            self.skip_angles();
        }
        // First path up to `for` / `{` / `where`; if `for` appears, the
        // first path was the trait and the second is the type.
        let first = self.parse_type_path();
        let (type_name, trait_name) = if self.at("for") {
            self.bump();
            (self.parse_type_path(), Some(first))
        } else {
            (first, None)
        };
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "{" => break,
                ";" => {
                    self.bump();
                    return ItemKind::Other {
                        keyword: "impl".into(),
                    };
                }
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                _ => {
                    if self.bump().is_none() {
                        return ItemKind::Other {
                            keyword: "impl".into(),
                        };
                    }
                }
            }
        }
        self.bump(); // {
        let items = self.items(true);
        ItemKind::Impl(Impl {
            type_name,
            trait_name: trait_name.filter(|t| !t.is_empty()),
            items,
        })
    }

    /// Parses a type path (`a::b::Foo<Bar>`) returning the last plain
    /// segment before any generic arguments.
    fn parse_type_path(&mut self) -> String {
        let mut last = String::new();
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "::" => {
                    self.bump();
                }
                "<" => self.skip_angles(),
                "&" | "&&" | "dyn" | "mut" => {
                    self.bump();
                }
                _ if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "for" | "where") => {
                    last = t.text.clone();
                    self.bump();
                }
                _ => break,
            }
        }
        last
    }

    /// Parses a use tree after the `use` keyword, expanding brace groups
    /// into full paths.
    fn parse_use_tree(&mut self) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        self.use_tree_into(&mut Vec::new(), &mut out, 0);
        out
    }

    fn use_tree_into(
        &mut self,
        prefix: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
        depth: usize,
    ) {
        if depth > 16 {
            // Adversarially nested use tree: record what we have.
            out.push(prefix.clone());
            self.skip_balanced();
            return;
        }
        let mut segs: Vec<String> = Vec::new();
        loop {
            let Some(t) = self.peek(0) else { break };
            match t.text.as_str() {
                "::" => {
                    self.bump();
                }
                "{" => {
                    self.bump();
                    loop {
                        if self.peek(0).is_none() || self.at("}") {
                            self.bump();
                            break;
                        }
                        let before = self.pos;
                        let mut nested_prefix: Vec<String> =
                            prefix.iter().chain(segs.iter()).cloned().collect();
                        self.use_tree_into(&mut nested_prefix, out, depth + 1);
                        if self.at(",") {
                            self.bump();
                        }
                        if self.pos == before && self.bump().is_none() {
                            break;
                        }
                    }
                    return;
                }
                ";" | "," | "}" => break,
                "*" => {
                    segs.push("*".to_string());
                    self.bump();
                }
                "as" => {
                    // Rename: the original path is what matters.
                    self.bump();
                    self.bump_ident();
                }
                _ if t.kind == TokenKind::Ident => {
                    segs.push(t.text.clone());
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
        if !segs.is_empty() || !prefix.is_empty() {
            let full: Vec<String> = prefix.iter().cloned().chain(segs).collect();
            out.push(full);
        }
    }

    // ---------------------------------------------------------------
    // Statements and expressions
    // ---------------------------------------------------------------

    /// Parses `{ ... }` starting at the opening brace; consumes the
    /// matching close. Returns the statements and the brace's span.
    fn parse_block(&mut self) -> (Vec<Expr>, Span) {
        let span = self.span_here();
        self.bump(); // {
        let mut out = Vec::new();
        loop {
            let before = self.pos;
            let Some(t) = self.peek(0) else {
                return (out, span);
            };
            match t.text.as_str() {
                "}" => {
                    self.bump();
                    return (out, span);
                }
                ";" => {
                    self.bump();
                }
                "#" => {
                    self.skip_attrs();
                }
                "let" => {
                    out.push(self.parse_let());
                }
                "fn" | "use" | "impl" | "mod" | "struct" | "enum" | "trait" | "macro_rules"
                | "type" => {
                    if let Some(item) = self.parse_one_item() {
                        self.hoisted.push(item);
                    }
                }
                // `static`/`const` statements are items too, but `const`
                // can also start a const block expression; disambiguate
                // by the following token.
                "static" => {
                    if let Some(item) = self.parse_one_item() {
                        self.hoisted.push(item);
                    }
                }
                "const" if !self.at_ahead(1, "{") => {
                    if let Some(item) = self.parse_one_item() {
                        self.hoisted.push(item);
                    }
                }
                "pub" => {
                    if let Some(item) = self.parse_one_item() {
                        self.hoisted.push(item);
                    }
                }
                _ => {
                    out.push(self.parse_expr(0, true));
                }
            }
            if self.pos == before && self.bump().is_none() {
                return (out, span);
            }
        }
    }

    /// Parses a `let` statement starting at the `let` keyword.
    fn parse_let(&mut self) -> Expr {
        let span = self.span_here();
        self.bump(); // let
        let mut name: Option<String> = None;
        let mut ty: Vec<String> = Vec::new();
        let mut in_ty = false;
        let mut depth = 0isize;
        loop {
            let Some(t) = self.peek(0) else {
                return Expr::Let {
                    name,
                    ty,
                    init: None,
                    span,
                };
            };
            let at_top = depth <= 0;
            match t.text.as_str() {
                "=" if at_top => {
                    self.bump();
                    break;
                }
                ";" if at_top => {
                    return Expr::Let {
                        name,
                        ty,
                        init: None,
                        span,
                    };
                }
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ":" if at_top => in_ty = true,
                "mut" | "ref" => {}
                _ => {
                    if t.kind == TokenKind::Ident {
                        if in_ty {
                            ty.push(t.text.clone());
                        } else if name.is_none() && t.text != "_" {
                            name = Some(t.text.clone());
                        }
                    }
                }
            }
            if self.bump().is_none() {
                return Expr::Let {
                    name,
                    ty,
                    init: None,
                    span,
                };
            }
        }
        let mut init = self.parse_expr(0, true);
        // `let ... else { diverge }`
        if self.at("else") && self.at_ahead(1, "{") {
            self.bump();
            let (body, bspan) = self.parse_block();
            init = Expr::Other {
                children: vec![
                    init,
                    Expr::Block {
                        exprs: body,
                        span: bspan,
                    },
                ],
                span,
            };
        }
        Expr::Let {
            name,
            ty,
            init: Some(Box::new(init)),
            span,
        }
    }

    /// Depth-guarded expression entry point.
    fn parse_expr(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            return self.skip_expr_soup();
        }
        self.depth += 1;
        let e = self.expr_bp(min_bp, allow_struct);
        self.depth -= 1;
        e
    }

    /// Consumes one expression-shaped run of tokens without building a
    /// tree: stops before `,`/`;`/closers at depth zero.
    fn skip_expr_soup(&mut self) -> Expr {
        let span = self.span_here();
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "," | ";" if depth == 0 => break,
                _ => {}
            }
            if self.bump().is_none() {
                break;
            }
        }
        Expr::Other {
            children: Vec::new(),
            span,
        }
    }

    fn expr_bp(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        let mut lhs = self.prefix(allow_struct);
        loop {
            let Some(t) = self.peek(0) else { return lhs };
            match t.text.as_str() {
                "." => {
                    lhs = self.postfix_dot(lhs);
                }
                "(" => {
                    let span = lhs.span();
                    let args = self.parse_args();
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        span,
                    };
                }
                "[" => {
                    let span = self.span_here();
                    self.bump();
                    let index = if self.at("]") {
                        Expr::Other {
                            children: Vec::new(),
                            span,
                        }
                    } else {
                        self.parse_expr(0, true)
                    };
                    // Tolerantly reach the closing bracket.
                    while let Some(t) = self.peek(0) {
                        match t.text.as_str() {
                            "]" => {
                                self.bump();
                                break;
                            }
                            "(" | "[" | "{" => self.skip_balanced(),
                            _ => {
                                if self.bump().is_none() {
                                    break;
                                }
                            }
                        }
                    }
                    lhs = Expr::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                        span,
                    };
                }
                "?" => {
                    let span = self.span_here();
                    self.bump();
                    lhs = Expr::Unary {
                        op: "?".to_string(),
                        expr: Box::new(lhs),
                        span,
                    };
                }
                "as" => {
                    self.bump();
                    self.skip_cast_type();
                }
                "{" if allow_struct && self.looks_like_struct_lit(&lhs) => {
                    let span = self.span_here();
                    let children = self.parse_struct_body();
                    lhs = Expr::Other {
                        children: {
                            let mut c = vec![lhs];
                            c.extend(children);
                            c
                        },
                        span,
                    };
                }
                op => {
                    let Some((l_bp, r_bp)) = infix_bp(op) else {
                        return lhs;
                    };
                    if l_bp < min_bp {
                        return lhs;
                    }
                    let span = self.span_here();
                    let op = op.to_string();
                    self.bump();
                    // Open ranges (`a..`) have no right operand.
                    let rhs = if (op == ".." || op == "..=") && !self.starts_expr() {
                        Expr::Other {
                            children: Vec::new(),
                            span,
                        }
                    } else {
                        self.parse_expr(r_bp, allow_struct)
                    };
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        span,
                    };
                }
            }
        }
    }

    /// True when the current token could start an expression.
    fn starts_expr(&self) -> bool {
        let Some(t) = self.peek(0) else { return false };
        match t.kind {
            TokenKind::Ident => !matches!(t.text.as_str(), "else" | "in" | "where"),
            TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char => true,
            TokenKind::Lifetime => true,
            TokenKind::Op => matches!(
                t.text.as_str(),
                "(" | "[" | "{" | "|" | "||" | "&" | "&&" | "*" | "!" | "-" | ".." | "..=" | "#"
            ),
        }
    }

    /// `.name(...)`, `.name`, `.0`, `.await` — cursor is at the dot.
    fn postfix_dot(&mut self, lhs: Expr) -> Expr {
        self.bump(); // .
        let span = self.span_here();
        let Some(t) = self.peek(0) else { return lhs };
        if t.kind == TokenKind::Ident {
            let name = t.text.clone();
            self.bump();
            if self.at("::") && self.at_ahead(1, "<") {
                self.bump();
                self.skip_angles();
            }
            if self.at("(") {
                let args = self.parse_args();
                return Expr::MethodCall {
                    recv: Box::new(lhs),
                    name,
                    args,
                    span,
                };
            }
            return Expr::Field {
                recv: Box::new(lhs),
                name,
                span,
            };
        }
        if matches!(t.kind, TokenKind::Int | TokenKind::Float) {
            // Tuple index; `a.0.1` lexes the `0.1` as a float.
            let name = t.text.clone();
            self.bump();
            return Expr::Field {
                recv: Box::new(lhs),
                name,
                span,
            };
        }
        // `.` followed by something unexpected — keep lhs, progress is
        // guaranteed by the dot we consumed.
        lhs
    }

    /// `(...)` argument list — cursor at the opening paren.
    fn parse_args(&mut self) -> Vec<Expr> {
        self.bump(); // (
        let mut args = Vec::new();
        loop {
            let before = self.pos;
            let Some(t) = self.peek(0) else { return args };
            match t.text.as_str() {
                ")" => {
                    self.bump();
                    return args;
                }
                "," => {
                    self.bump();
                }
                _ => {
                    args.push(self.parse_expr(0, true));
                }
            }
            if self.pos == before && self.bump().is_none() {
                return args;
            }
        }
    }

    /// After `as`: consume the cast target type.
    fn skip_cast_type(&mut self) {
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "::" | "*" | "&" | "&&" | "mut" | "const" | "dyn" => {
                    self.bump();
                }
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                _ if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "if" | "else") => {
                    self.bump();
                }
                _ => return,
            }
        }
    }

    /// Struct-literal lookahead: `Path {` followed by a field-ish token.
    fn looks_like_struct_lit(&self, lhs: &Expr) -> bool {
        if !matches!(lhs, Expr::Path { .. }) {
            return false;
        }
        // cursor at `{`
        let Some(t1) = self.peek(1) else { return false };
        match t1.text.as_str() {
            "}" | ".." => true,
            _ if t1.kind == TokenKind::Ident => self
                .peek(2)
                .is_some_and(|t2| matches!(t2.text.as_str(), ":" | "," | "}")),
            _ => false,
        }
    }

    /// `{ field: expr, .. }` — cursor at the opening brace.
    fn parse_struct_body(&mut self) -> Vec<Expr> {
        self.bump(); // {
        let mut out = Vec::new();
        loop {
            let before = self.pos;
            let Some(t) = self.peek(0) else { return out };
            match t.text.as_str() {
                "}" => {
                    self.bump();
                    return out;
                }
                "," => {
                    self.bump();
                }
                ".." => {
                    self.bump();
                    if self.starts_expr() {
                        out.push(self.parse_expr(0, true));
                    }
                }
                _ if t.kind == TokenKind::Ident
                    && self.at_ahead(1, ":")
                    && !self.at_ahead(1, "::") =>
                {
                    self.bump();
                    self.bump();
                    out.push(self.parse_expr(0, true));
                }
                _ => {
                    out.push(self.parse_expr(0, true));
                }
            }
            if self.pos == before && self.bump().is_none() {
                return out;
            }
        }
    }

    fn prefix(&mut self, allow_struct: bool) -> Expr {
        let span = self.span_here();
        let Some(t) = self.peek(0) else {
            return Expr::Other {
                children: Vec::new(),
                span,
            };
        };
        match t.kind {
            TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char => {
                let (kind, text) = (t.kind, t.text.clone());
                self.bump();
                Expr::Lit { kind, text, span }
            }
            TokenKind::Lifetime => {
                // Loop label: `'outer: loop { ... }`.
                self.bump();
                if self.at(":") {
                    self.bump();
                }
                self.prefix(allow_struct)
            }
            TokenKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "while" => {
                    self.bump();
                    let mut children = Vec::new();
                    if self.at("let") {
                        self.bump();
                        self.skip_pattern_until(&["="]);
                        if self.at("=") {
                            self.bump();
                        }
                    }
                    children.push(self.parse_expr(0, false));
                    if self.at("{") {
                        let (body, bspan) = self.parse_block();
                        children.push(Expr::Block {
                            exprs: body,
                            span: bspan,
                        });
                    }
                    Expr::Other { children, span }
                }
                "loop" => {
                    self.bump();
                    let mut children = Vec::new();
                    if self.at("{") {
                        let (body, bspan) = self.parse_block();
                        children.push(Expr::Block {
                            exprs: body,
                            span: bspan,
                        });
                    }
                    Expr::Other { children, span }
                }
                "for" => {
                    self.bump();
                    self.skip_pattern_until(&["in"]);
                    if self.at("in") {
                        self.bump();
                    }
                    let mut children = vec![self.parse_expr(0, false)];
                    if self.at("{") {
                        let (body, bspan) = self.parse_block();
                        children.push(Expr::Block {
                            exprs: body,
                            span: bspan,
                        });
                    }
                    Expr::Other { children, span }
                }
                "unsafe" | "async" => {
                    self.bump();
                    if self.at("{") {
                        let (body, bspan) = self.parse_block();
                        Expr::Block {
                            exprs: body,
                            span: bspan,
                        }
                    } else {
                        self.prefix(allow_struct)
                    }
                }
                "return" | "break" => {
                    self.bump();
                    if self.starts_expr() {
                        let e = self.parse_expr(0, allow_struct);
                        Expr::Other {
                            children: vec![e],
                            span,
                        }
                    } else {
                        Expr::Other {
                            children: Vec::new(),
                            span,
                        }
                    }
                }
                "continue" => {
                    self.bump();
                    Expr::Other {
                        children: Vec::new(),
                        span,
                    }
                }
                "move" => {
                    self.bump();
                    self.prefix(allow_struct)
                }
                "let" => {
                    // `if let`-style chains reach here via `&&`.
                    self.bump();
                    self.skip_pattern_until(&["="]);
                    if self.at("=") {
                        self.bump();
                    }
                    self.parse_expr(PREFIX_BP, false)
                }
                "const" if self.at_ahead(1, "{") => {
                    self.bump();
                    let (body, bspan) = self.parse_block();
                    Expr::Block {
                        exprs: body,
                        span: bspan,
                    }
                }
                _ => self.parse_path_expr(span),
            },
            TokenKind::Op => match t.text.as_str() {
                "(" => {
                    self.bump();
                    let mut children = Vec::new();
                    loop {
                        let before = self.pos;
                        let Some(t) = self.peek(0) else { break };
                        match t.text.as_str() {
                            ")" => {
                                self.bump();
                                break;
                            }
                            "," => {
                                self.bump();
                            }
                            _ => children.push(self.parse_expr(0, true)),
                        }
                        if self.pos == before && self.bump().is_none() {
                            break;
                        }
                    }
                    if children.len() == 1 {
                        children.pop().unwrap_or(Expr::Other {
                            children: Vec::new(),
                            span,
                        })
                    } else {
                        Expr::Other { children, span }
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    loop {
                        let before = self.pos;
                        let Some(t) = self.peek(0) else { break };
                        match t.text.as_str() {
                            "]" => {
                                self.bump();
                                break;
                            }
                            "," | ";" => {
                                self.bump();
                            }
                            _ => elems.push(self.parse_expr(0, true)),
                        }
                        if self.pos == before && self.bump().is_none() {
                            break;
                        }
                    }
                    Expr::Array { elems, span }
                }
                "{" => {
                    let (body, bspan) = self.parse_block();
                    Expr::Block {
                        exprs: body,
                        span: bspan,
                    }
                }
                "|" | "||" => self.parse_closure(span, allow_struct),
                "&" | "&&" => {
                    let op = t.text.clone();
                    self.bump();
                    if self.at("mut") {
                        self.bump();
                    }
                    Expr::Unary {
                        op,
                        expr: Box::new(self.parse_expr(PREFIX_BP, allow_struct)),
                        span,
                    }
                }
                "*" | "!" | "-" => {
                    let op = t.text.clone();
                    self.bump();
                    Expr::Unary {
                        op,
                        expr: Box::new(self.parse_expr(PREFIX_BP, allow_struct)),
                        span,
                    }
                }
                ".." | "..=" => {
                    self.bump();
                    if self.starts_expr() {
                        Expr::Other {
                            children: vec![self.parse_expr(4, allow_struct)],
                            span,
                        }
                    } else {
                        Expr::Other {
                            children: Vec::new(),
                            span,
                        }
                    }
                }
                "#" => {
                    self.skip_attrs();
                    self.prefix(allow_struct)
                }
                _ => {
                    self.bump();
                    Expr::Other {
                        children: Vec::new(),
                        span,
                    }
                }
            },
        }
    }

    /// Path expression (`a::b::c`, with optional turbofish) that may be
    /// a macro invocation.
    fn parse_path_expr(&mut self, span: Span) -> Expr {
        let mut segs: Vec<String> = Vec::new();
        loop {
            let Some(t) = self.peek(0) else { break };
            if t.kind == TokenKind::Ident
                && segs.last().map_or(true, |_| {
                    self.toks
                        .get(self.pos.wrapping_sub(1))
                        .is_some_and(|p| p.text == "::")
                })
            {
                segs.push(t.text.clone());
                self.bump();
            } else if t.text == "::" {
                self.bump();
                if self.at("<") {
                    self.skip_angles();
                }
            } else {
                break;
            }
        }
        if segs.is_empty() {
            // Not actually a path (can happen after error recovery).
            self.bump();
            return Expr::Other {
                children: Vec::new(),
                span,
            };
        }
        if self.at("!") {
            let delim_ok = self.at_ahead(1, "(") || self.at_ahead(1, "[") || self.at_ahead(1, "{");
            if delim_ok {
                self.bump(); // !
                let name = segs.last().cloned().unwrap_or_default();
                let args = self.parse_macro_args();
                return Expr::Macro { name, args, span };
            }
        }
        Expr::Path { segs, span }
    }

    /// Macro argument soup: parse expressions tolerantly until the
    /// closing delimiter.
    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let closer = match self.peek(0).map(|t| t.text.as_str()) {
            Some("(") => ")",
            Some("[") => "]",
            Some("{") => "}",
            _ => return Vec::new(),
        };
        self.bump(); // opener
        let mut args = Vec::new();
        loop {
            let before = self.pos;
            let Some(t) = self.peek(0) else { return args };
            match t.text.as_str() {
                s if s == closer => {
                    self.bump();
                    return args;
                }
                "," | ";" | "=>" | "=" => {
                    self.bump();
                }
                ")" | "]" | "}" => {
                    // Mismatched closer inside soup: consume and go on.
                    self.bump();
                }
                _ => {
                    args.push(self.parse_expr(0, true));
                }
            }
            if self.pos == before && self.bump().is_none() {
                return args;
            }
        }
    }

    fn parse_closure(&mut self, span: Span, allow_struct: bool) -> Expr {
        if self.at("||") {
            self.bump();
        } else {
            self.bump(); // opening |
            let mut depth = 0isize;
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "|" if depth <= 0 => {
                        self.bump();
                        break;
                    }
                    "{" | ";" => break, // runaway: missing closing |
                    _ => {}
                }
                if self.bump().is_none() {
                    break;
                }
            }
        }
        // Optional return type before a required block body.
        if self.at("->") {
            self.bump();
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "{" => break,
                    "<" => self.skip_angles(),
                    "(" | "[" => self.skip_balanced(),
                    _ if t.kind == TokenKind::Ident || t.text == "::" || t.text == "&" => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        let body = self.parse_expr(0, allow_struct);
        Expr::Closure {
            body: Box::new(body),
            span,
        }
    }

    fn parse_if(&mut self) -> Expr {
        let span = self.span_here();
        self.bump(); // if
        let mut children = Vec::new();
        if self.at("let") {
            self.bump();
            self.skip_pattern_until(&["="]);
            if self.at("=") {
                self.bump();
            }
        }
        children.push(self.parse_expr(0, false));
        if self.at("{") {
            let (body, bspan) = self.parse_block();
            children.push(Expr::Block {
                exprs: body,
                span: bspan,
            });
        }
        if self.at("else") {
            self.bump();
            if self.at("if") {
                children.push(self.parse_if());
            } else if self.at("{") {
                let (body, bspan) = self.parse_block();
                children.push(Expr::Block {
                    exprs: body,
                    span: bspan,
                });
            }
        }
        Expr::Other { children, span }
    }

    fn parse_match(&mut self) -> Expr {
        let span = self.span_here();
        self.bump(); // match
        let mut children = vec![self.parse_expr(0, false)];
        if !self.at("{") {
            return Expr::Other { children, span };
        }
        self.bump(); // {
        loop {
            let before = self.pos;
            let Some(t) = self.peek(0) else {
                return Expr::Other { children, span };
            };
            match t.text.as_str() {
                "}" => {
                    self.bump();
                    return Expr::Other { children, span };
                }
                "," => {
                    self.bump();
                }
                "#" => {
                    self.skip_attrs();
                }
                _ => {
                    // Pattern (and optional guard) up to `=>`, then the
                    // arm expression.
                    self.skip_pattern_until(&["=>"]);
                    if self.at("=>") {
                        self.bump();
                        children.push(self.parse_expr(0, true));
                    }
                }
            }
            if self.pos == before && self.bump().is_none() {
                return Expr::Other { children, span };
            }
        }
    }

    /// Skips pattern tokens until one of `stops` at bracket depth zero
    /// (also stopping at `{`, `;` or EOF as a safety net).
    fn skip_pattern_until(&mut self, stops: &[&str]) {
        let mut depth = 0isize;
        while let Some(t) = self.peek(0) {
            let text = t.text.as_str();
            if depth <= 0 && stops.contains(&text) {
                return;
            }
            match text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => return,
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth <= 0 => return,
                _ => {}
            }
            if self.bump().is_none() {
                return;
            }
        }
    }
}

/// Infix binding powers (left, right). Higher binds tighter.
fn infix_bp(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 1),
        ".." | "..=" => (4, 3),
        "||" => (5, 6),
        "&&" => (7, 8),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (9, 10),
        "|" => (11, 12),
        "^" => (13, 14),
        "&" => (15, 16),
        "<<" | ">>" => (17, 18),
        "+" | "-" => (19, 20),
        "*" | "/" | "%" => (21, 22),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::{Expr, ItemKind};

    fn parse(src: &str) -> File {
        parse_file(&lex(src))
    }

    fn method_calls(file: &File) -> Vec<String> {
        let mut out = Vec::new();
        file.walk_exprs(&mut |e| {
            if let Expr::MethodCall { name, .. } = e {
                out.push(name.clone());
            }
        });
        out
    }

    #[test]
    fn fn_with_params_and_body() {
        let f = parse("pub fn add(a: f64, b: &[f64]) -> f64 { a + b.len() as f64 }");
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        let fr = fns.first().expect("one fn");
        assert!(fr.vis_pub);
        assert_eq!(fr.func.name, "add");
        assert_eq!(fr.func.params, ["a", "b"]);
        assert_eq!(method_calls(&f), ["len"]);
    }

    #[test]
    fn impl_block_and_method_ownership() {
        let f = parse(
            "struct S; impl S { pub fn go(&self) -> usize { self.items.sort_by(|a, b| a.cmp(b)); 0 } }",
        );
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        let fr = fns.first().expect("one fn");
        assert_eq!(fr.owner, Some("S"));
        assert_eq!(fr.func.params, ["self"]);
        assert!(method_calls(&f).contains(&"sort_by".to_string()));
        assert!(method_calls(&f).contains(&"cmp".to_string()));
    }

    #[test]
    fn use_brace_expansion() {
        let f = parse("use std::sync::{Mutex, atomic::AtomicU64};");
        let paths = f.use_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(
            paths.first().map(|p| p.join("::")).as_deref(),
            Some("std::sync::Mutex")
        );
        assert_eq!(
            paths.get(1).map(|p| p.join("::")).as_deref(),
            Some("std::sync::atomic::AtomicU64")
        );
    }

    #[test]
    fn index_and_call_expressions() {
        let f = parse("fn g(xs: &[f64], i: usize) -> f64 { helper(xs[i + 1]) }");
        let mut saw_index = false;
        let mut saw_call = false;
        f.walk_exprs(&mut |e| match e {
            Expr::Index { base, .. } => {
                saw_index = true;
                assert_eq!(base.root_ident(), Some("xs"));
            }
            Expr::Call { callee, .. } => {
                saw_call = true;
                assert_eq!(callee.root_ident(), Some("helper"));
            }
            _ => {}
        });
        assert!(saw_index && saw_call);
    }

    #[test]
    fn macro_args_are_salvaged() {
        let f = parse("fn t(v: Vec<u8>) { assert_eq!(v.first().unwrap(), &0); }");
        assert!(method_calls(&f).contains(&"unwrap".to_string()));
    }

    #[test]
    fn static_mut_is_detected() {
        let f = parse("static mut HITS: u64 = 0; static OK: u64 = 0;");
        let muts: Vec<_> = f
            .items
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::StaticMut { .. }))
            .collect();
        assert_eq!(muts.len(), 1);
    }

    #[test]
    fn match_arms_and_closures() {
        let f = parse(
            "fn m(o: Option<usize>) -> usize { match o { Some(x) if x > 0 => x, _ => fallback(|| compute()) } }",
        );
        let mut calls = Vec::new();
        f.walk_exprs(&mut |e| {
            if let Expr::Call { callee, .. } = e {
                if let Some(root) = callee.root_ident() {
                    calls.push(root.to_string());
                }
            }
        });
        assert!(calls.contains(&"fallback".to_string()));
        assert!(calls.contains(&"compute".to_string()));
    }

    #[test]
    fn struct_literal_values_are_visited() {
        let f = parse("fn s() -> P { P { x: build(), y: 2 } }");
        let mut calls = Vec::new();
        f.walk_exprs(&mut |e| {
            if let Expr::Call { callee, .. } = e {
                calls.extend(callee.root_ident().map(str::to_string));
            }
        });
        assert_eq!(calls, ["build"]);
    }

    #[test]
    fn nested_fn_is_hoisted() {
        let f = parse("fn outer() { fn inner(q: usize) -> usize { q } inner(1); }");
        let names: Vec<_> = f
            .functions()
            .iter()
            .map(|fr| fr.func.name.clone())
            .collect();
        assert!(names.contains(&"outer".to_string()));
        assert!(names.contains(&"inner".to_string()));
    }

    #[test]
    fn garbage_terminates() {
        // Unbalanced everything; must terminate and not panic.
        let srcs = [
            "fn f( { ) [ } impl impl fn fn",
            "((((((((((((((((((((((((((((",
            "match match match { { {",
            "let let = = fn |x| |y|",
            "r#\"unterminated",
            "' ' ' ''' \\ \\ \"",
        ];
        for src in srcs {
            let _ = parse(src);
        }
    }
}
