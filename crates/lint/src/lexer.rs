//! A hand-rolled Rust lexer producing tokens with line/column spans.
//!
//! The lexer is deliberately small: it only needs to be good enough that
//! lint rules never fire inside string literals, character literals,
//! comments or doc comments (which is where a grep-based checker falls
//! over). It understands:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments,
//! * plain, raw (`r"…"`, `r#"…"#`), byte (`b"…"`) and raw-byte strings,
//! * character literals vs. lifetimes (`'a'` vs. `'a`),
//! * integer and float literals, including hex/octal/binary prefixes,
//!   exponents and type suffixes (`1e3`, `2.5f32`, `0x1E` is *not* a
//!   float),
//! * multi-character operators (`==`, `!=`, `::`, `..=`, `<<=`, …).
//!
//! Comments are kept out of the token stream but returned alongside it so
//! the suppression parser can see `// dynalint:allow(...)` annotations.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `unsafe`, `unwrap`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `4f64`).
    Float,
    /// String literal of any flavour (plain, raw, byte).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Operator or punctuation (`==`, `.`, `{`, `::`).
    Op,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Raw text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
    /// Byte offset of the first byte of the token in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

/// A comment, kept separate from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: usize,
    /// True when no token precedes the comment on its starting line, i.e.
    /// the comment owns the whole line. Suppression comments that own
    /// their line apply to the *next* line instead.
    pub owns_line: bool,
    /// Byte offset of the first byte of the comment in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the comment.
    pub end: usize,
}

/// Output of [`lex`]: the token stream plus the comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so matching can be greedy.
const OPS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "=>", "->", "::", "&&", "||", "<<", ">>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "?",
];

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes
/// are emitted as single-character [`TokenKind::Op`] tokens so the rule
/// engine always sees the full file.
pub fn lex(src: &str) -> Lexed {
    // Byte offset of each char, plus a final sentinel, so spans can be
    // reported in bytes while the scanner itself walks chars.
    let mut byte_offsets: Vec<usize> = src.char_indices().map(|(i, _)| i).collect();
    byte_offsets.push(src.len());
    Lexer {
        chars: src.chars().collect(),
        byte_offsets,
        pos: 0,
        line: 1,
        col: 1,
        tok_start: 0,
        line_has_token: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    byte_offsets: Vec<usize>,
    pos: usize,
    line: usize,
    col: usize,
    tok_start: usize,
    line_has_token: bool,
    out: Lexed,
}

impl Lexer {
    fn byte_at(&self, pos: usize) -> usize {
        let last = self.byte_offsets.last().copied().unwrap_or(0);
        self.byte_offsets.get(pos).copied().unwrap_or(last)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            self.tok_start = self.byte_at(self.pos);
            if c == '\n' {
                self.bump();
                continue;
            }
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
                continue;
            }
            if c == '"' {
                self.string(line, col);
                continue;
            }
            if c == '\'' {
                self.char_or_lifetime(line, col);
                continue;
            }
            if self.raw_or_byte_string(line, col) {
                continue;
            }
            if c == '_' || c.is_alphabetic() {
                self.ident(line, col);
                continue;
            }
            if c.is_ascii_digit() {
                self.number(line, col);
                continue;
            }
            self.operator(line, col);
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_token = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.line_has_token = true;
        let (start, end) = (self.tok_start, self.byte_at(self.pos));
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
            start,
            end,
        });
    }

    fn line_comment(&mut self, line: usize) {
        let owns_line = !self.line_has_token;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let (start, end) = (self.tok_start, self.byte_at(self.pos));
        self.out.comments.push(Comment {
            text,
            line,
            owns_line,
            start,
            end,
        });
    }

    fn block_comment(&mut self, line: usize) {
        let owns_line = !self.line_has_token;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let (start, end) = (self.tok_start, self.byte_at(self.pos));
        self.out.comments.push(Comment {
            text,
            line,
            owns_line,
            start,
            end,
        });
    }

    /// Consumes a plain or byte string body starting at the opening quote.
    fn string(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        text.extend(self.bump()); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.extend(self.bump());
                text.extend(self.bump());
                continue;
            }
            text.push(c);
            self.bump();
            if c == '"' {
                break;
            }
        }
        self.push_token(TokenKind::Str, text, line, col);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` at the current
    /// position. Returns false when the position is not a raw/byte string
    /// (e.g. an identifier starting with `r` or `b`).
    fn raw_or_byte_string(&mut self, line: usize, col: usize) -> bool {
        let c = match self.peek(0) {
            Some(c) => c,
            None => return false,
        };
        if c != 'r' && c != 'b' {
            return false;
        }
        // Look past the `r` / `b` / `br` prefix for `#...#"` or `"`.
        let mut idx = 1;
        if c == 'b' && self.peek(1) == Some('r') {
            idx = 2;
        }
        let mut hashes = 0usize;
        while self.peek(idx + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(idx + hashes) != Some('"') {
            // `b"…"` without `r` and without hashes is a plain byte string.
            if c == 'b' && hashes == 0 && self.peek(1) == Some('"') {
                let mut text = String::new();
                text.extend(self.bump()); // b
                self.string_into(&mut text);
                self.push_token(TokenKind::Str, text, line, col);
                return true;
            }
            return false;
        }
        if c == 'b' && idx == 1 {
            // `b#…` is not valid Rust; treat as identifier territory.
            return false;
        }
        // Raw string: consume prefix, hashes, quote, then scan for the
        // closing `"` followed by the same number of hashes.
        let mut text = String::new();
        for _ in 0..(idx + hashes + 1) {
            text.extend(self.bump());
        }
        loop {
            let c = match self.bump() {
                Some(c) => c,
                None => break,
            };
            text.push(c);
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    text.extend(self.bump());
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push_token(TokenKind::Str, text, line, col);
        true
    }

    /// Appends a plain string (starting at the opening quote) to `text`.
    fn string_into(&mut self, text: &mut String) {
        text.extend(self.bump()); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.extend(self.bump());
                text.extend(self.bump());
                continue;
            }
            text.push(c);
            self.bump();
            if c == '"' {
                break;
            }
        }
    }

    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        // `'a'` / `'\n'` are char literals; `'a` / `'static` are
        // lifetimes. Disambiguation: a backslash or a closing quote two
        // characters ahead means char literal.
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(c) if c != '\'' => self.peek(2) == Some('\''),
            _ => true, // `''` or `'\''`-ish degenerate cases
        };
        let mut text = String::new();
        text.extend(self.bump()); // opening quote
        if is_char {
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.extend(self.bump());
                    text.extend(self.bump());
                    continue;
                }
                text.push(c);
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            self.push_token(TokenKind::Char, text, line, col);
        } else {
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Lifetime, text, line, col);
        }
    }

    fn ident(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut is_float = false;
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
        if radix_prefixed {
            text.extend(self.bump());
            text.extend(self.bump());
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            self.digits_into(&mut text);
            // Fractional part: `.` must be followed by a digit, otherwise
            // it is a method call (`1.max(2)`) or a range (`1..5`).
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                text.extend(self.bump());
                self.digits_into(&mut text);
            }
            // Exponent: only for decimal literals.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign_len = usize::from(matches!(self.peek(1), Some('+') | Some('-')));
                if self.peek(1 + sign_len).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    for _ in 0..(1 + sign_len) {
                        text.extend(self.bump());
                    }
                    self.digits_into(&mut text);
                }
            }
        }
        // Type suffix (`u32`, `f64`, …). An `f` suffix makes it a float.
        if self.peek(0).is_some_and(|c| c == '_' || c.is_alphabetic()) {
            if self.peek(0) == Some('f') && !radix_prefixed {
                is_float = true;
            }
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, text, line, col);
    }

    fn digits_into(&mut self, text: &mut String) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }

    fn operator(&mut self, line: usize, col: usize) {
        for op in OPS {
            let len = op.chars().count();
            let matches = op
                .chars()
                .enumerate()
                .all(|(i, expected)| self.peek(i) == Some(expected));
            if matches {
                for _ in 0..len {
                    self.bump();
                }
                self.push_token(TokenKind::Op, op.to_string(), line, col);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push_token(TokenKind::Op, c.to_string(), line, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_ops() {
        assert_eq!(texts("a.unwrap()"), ["a", ".", "unwrap", "(", ")"]);
        assert_eq!(texts("x == 0.0"), ["x", "==", "0.0"]);
        assert_eq!(texts("a..=b"), ["a", "..=", "b"]);
    }

    #[test]
    fn comments_are_not_tokens() {
        let out = lex("let x = 1; // foo.unwrap()\n/* panic!() */ let y = 2;");
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(out.tokens.iter().all(|t| t.text != "panic"));
        assert_eq!(out.comments.len(), 2);
        assert!(!out.comments[0].owns_line);
        assert!(out.comments[1].owns_line);
    }

    #[test]
    fn nested_block_comment() {
        let out = lex("/* a /* b */ c */ token");
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].text, "token");
    }

    #[test]
    fn strings_swallow_contents() {
        let out = lex(r#"let s = "calls .unwrap() and panic!";"#);
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings() {
        let out = lex(r###"let s = r#"embedded "quote" and unwrap()"#; x"###);
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(out.tokens.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn char_vs_lifetime() {
        let out = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_classification() {
        let kinds: Vec<TokenKind> = lex("1 1.5 1e3 0x1E 2f64 1_000 3.0f32 1.max(2)")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokenKind::Int);
        assert_eq!(kinds[1], TokenKind::Float);
        assert_eq!(kinds[2], TokenKind::Float);
        assert_eq!(kinds[3], TokenKind::Int); // hex, not a float exponent
        assert_eq!(kinds[4], TokenKind::Float);
        assert_eq!(kinds[5], TokenKind::Int);
        assert_eq!(kinds[6], TokenKind::Float);
        assert_eq!(kinds[7], TokenKind::Int); // `1.max` is not a float
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn byte_spans_cover_every_non_whitespace_byte() {
        let src = "let s = \"héllo\"; // trailing 你好\nfn f() {}";
        let out = lex(src);
        let mut covered = vec![false; src.len()];
        for (start, end) in out
            .tokens
            .iter()
            .map(|t| (t.start, t.end))
            .chain(out.comments.iter().map(|c| (c.start, c.end)))
        {
            assert!(start < end, "empty span {start}..{end}");
            assert!(end <= src.len());
            for flag in covered.iter_mut().take(end).skip(start) {
                *flag = true;
            }
        }
        for (i, flag) in covered.iter().enumerate() {
            let at_ws = src.as_bytes()[i].is_ascii_whitespace();
            assert!(
                *flag || at_ws,
                "byte {i} ({:?}) not covered by any span",
                src.as_bytes()[i] as char
            );
        }
    }
}
