//! Checked-in baseline of grandfathered findings.
//!
//! The baseline (`lint-baseline.toml` at the workspace root) maps
//! `"file:RULE"` keys to the number of findings that are tolerated in
//! that file for that rule. This lets the tool land green on a codebase
//! with existing violations and then ratchet: new findings fail CI, and
//! fixing old ones lets the baseline shrink (stale entries are reported
//! so they get burned down rather than lingering).

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Parsed baseline: `"file:RULE"` → tolerated finding count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

/// Outcome of checking findings against a [`Baseline`].
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// Findings not covered by the baseline — these fail the build. When
    /// a file/rule group exceeds its allowance, the whole group is listed
    /// so the offending lines are all visible.
    pub new: Vec<Finding>,
    /// Number of findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline entries whose allowance exceeds the current finding count
    /// (`key`, allowed, found): candidates for ratcheting down.
    pub stale: Vec<(String, usize, usize)>,
}

impl Baseline {
    /// Parses the baseline file format: `"file:RULE" = count` lines under
    /// a `[counts]` section; `#` comments and blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line == "[counts]" {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {}: expected `key = count`", idx + 1));
            };
            let key = key.trim().trim_matches('"').to_string();
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {}: count is not a number", idx + 1))?;
            counts.insert(key, count);
        }
        Ok(Baseline { counts })
    }

    /// Renders the canonical baseline file for a set of findings.
    pub fn render(findings: &[Finding]) -> String {
        let mut grouped: BTreeMap<String, usize> = BTreeMap::new();
        for f in findings {
            *grouped.entry(format!("{}:{}", f.file, f.rule)).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# dynalint baseline — grandfathered findings per file and rule.\n\
             # Regenerate with `cargo run -p dynawave-lint -- --update-baseline`.\n\
             # The goal is to burn this file down to nothing, never to grow it.\n\
             [counts]\n",
        );
        for (key, count) in grouped {
            out.push_str(&format!("\"{key}\" = {count}\n"));
        }
        out
    }

    /// Number of entries in the baseline.
    pub fn entry_count(&self) -> usize {
        self.counts.len()
    }

    /// Total tolerated findings across all entries.
    pub fn total_allowance(&self) -> usize {
        self.counts.values().sum()
    }

    /// Splits findings into new vs. baselined and reports stale entries.
    pub fn check(&self, findings: &[Finding]) -> BaselineReport {
        let mut grouped: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            grouped
                .entry(format!("{}:{}", f.file, f.rule))
                .or_default()
                .push(f);
        }
        let mut report = BaselineReport::default();
        for (key, group) in &grouped {
            let allowed = self.counts.get(key).copied().unwrap_or(0);
            if group.len() <= allowed {
                report.baselined += group.len();
            } else {
                report.new.extend(group.iter().map(|&f| f.clone()));
            }
        }
        for (key, &allowed) in &self.counts {
            let found = grouped.get(key).map(|g| g.len()).unwrap_or(0);
            if found < allowed {
                report.stale.push((key.clone(), allowed, found));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn finding(file: &str, rule: RuleId, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let fs = [
            finding("a.rs", RuleId::D001, 1),
            finding("a.rs", RuleId::D001, 2),
            finding("b.rs", RuleId::D004, 9),
        ];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text).expect("parses");
        assert_eq!(b.entry_count(), 2);
        assert_eq!(b.total_allowance(), 3);
        let report = b.check(&fs);
        assert!(report.new.is_empty());
        assert_eq!(report.baselined, 3);
        assert!(report.stale.is_empty());
    }

    #[test]
    fn exceeding_allowance_reports_whole_group() {
        let b = Baseline::parse("[counts]\n\"a.rs:D001\" = 1\n").expect("parses");
        let fs = [
            finding("a.rs", RuleId::D001, 1),
            finding("a.rs", RuleId::D001, 2),
        ];
        let report = b.check(&fs);
        assert_eq!(report.new.len(), 2);
        assert_eq!(report.baselined, 0);
    }

    #[test]
    fn stale_entries_are_reported() {
        let b = Baseline::parse("\"a.rs:D001\" = 3\n").expect("parses");
        let fs = [finding("a.rs", RuleId::D001, 1)];
        let report = b.check(&fs);
        assert!(report.new.is_empty());
        assert_eq!(report.stale, vec![("a.rs:D001".to_string(), 3, 1)]);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("nonsense without equals\n").is_err());
        assert!(Baseline::parse("\"a.rs:D001\" = many\n").is_err());
    }
}
