//! Lightweight syntax tree for the structural lint rules.
//!
//! This is not a faithful Rust AST — it models exactly what the D010–D013
//! rule families need: item structure (fns with parameter names, impl
//! blocks, `use` paths, `static mut`), and an expression layer that keeps
//! calls, method calls, indexing, macros, closures and `let` bindings
//! while collapsing everything else into [`Expr::Other`] with its
//! salvageable children. Every node carries a line/column span so
//! findings point at real source positions.

use crate::lexer::TokenKind;

/// 1-based line/column position of a node's first token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// A parsed source file: a flat list of top-level items. Fns nested in
/// blocks are hoisted here too, so the call graph sees them.
#[derive(Debug, Clone, Default)]
pub struct File {
    /// Items in source order (hoisted nested items appended at the end).
    pub items: Vec<Item>,
}

/// One item, at any nesting level.
#[derive(Debug, Clone)]
pub struct Item {
    /// Position of the item's introducing keyword.
    pub span: Span,
    /// True for `pub` (including `pub(crate)` and friends — the rules
    /// treat any visibility wider than private as public surface).
    pub vis_pub: bool,
    /// What the item is.
    pub kind: ItemKind,
}

/// Item discriminant.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// A function (free, in an impl, or in a trait with a default body).
    Fn(Fn),
    /// An `impl` block with its contained items.
    Impl(Impl),
    /// An inline `mod name { ... }` with its contained items.
    Mod(Mod),
    /// A `use` declaration, brace groups expanded to full paths.
    Use(Use),
    /// A `static mut` item — D012 evidence regardless of its initializer.
    StaticMut {
        /// Name of the static.
        name: String,
    },
    /// Anything else (struct, enum, type alias, const, plain static, ...).
    Other {
        /// The introducing keyword, for diagnostics.
        keyword: String,
    },
}

/// A function with its signature surface and body.
#[derive(Debug, Clone)]
pub struct Fn {
    /// Function name.
    pub name: String,
    /// Parameter binding names in order; `self` receivers appear as
    /// `"self"`, destructured patterns contribute every bound ident.
    pub params: Vec<String>,
    /// Body statements/expressions; `None` for bodiless declarations.
    pub body: Option<Vec<Expr>>,
    /// Position of the `fn` keyword.
    pub span: Span,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct Impl {
    /// Last path segment of the implemented type (`Foo` in
    /// `impl<T> Trait for Foo<T>`).
    pub type_name: String,
    /// Last path segment of the trait, when this is a trait impl.
    pub trait_name: Option<String>,
    /// Items inside the block (fns, consts, ...).
    pub items: Vec<Item>,
}

/// An inline module.
#[derive(Debug, Clone)]
pub struct Mod {
    /// Module name.
    pub name: String,
    /// Items inside the module body.
    pub items: Vec<Item>,
}

/// A `use` declaration.
#[derive(Debug, Clone)]
pub struct Use {
    /// Each imported path as its segment list; `use a::{b, c::d}` yields
    /// `[["a","b"], ["a","c","d"]]`. Globs end with `"*"`.
    pub paths: Vec<Vec<String>>,
}

/// Expression layer. Deliberately shallow: unmodelled forms become
/// [`Expr::Other`] but keep their parsed children, so `walk` still visits
/// every call/index the parser could salvage.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `a::b::c` or a bare identifier.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Position of the first segment.
        span: Span,
    },
    /// A literal token.
    Lit {
        /// Literal class (Int/Float/Str/Char).
        kind: TokenKind,
        /// Raw source text including quotes/prefixes.
        text: String,
        /// Position of the literal.
        span: Span,
    },
    /// `callee(args...)`.
    Call {
        /// The called expression (usually a path).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Position of the callee.
        span: Span,
    },
    /// `recv.name(args...)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Position of the method name.
        span: Span,
    },
    /// `recv.field` (also tuple fields `.0` and `.await`).
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// Position of the field name.
        span: Span,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Position of the opening bracket.
        span: Span,
    },
    /// `lhs op rhs`.
    Binary {
        /// Operator text (`+`, `==`, `..`, ...).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position of the operator.
        span: Span,
    },
    /// Prefix (`!x`, `-x`, `&x`, `*x`) or postfix (`x?`) unary.
    Unary {
        /// Operator text.
        op: String,
        /// Operand.
        expr: Box<Expr>,
        /// Position of the operator.
        span: Span,
    },
    /// `name!(...)` — arguments parsed tolerantly as expression soup.
    Macro {
        /// Macro name (last path segment before `!`).
        name: String,
        /// Salvaged argument expressions.
        args: Vec<Expr>,
        /// Position of the macro name.
        span: Span,
    },
    /// `[a, b, c]` or `[x; n]`.
    Array {
        /// Element (and repeat-count) expressions.
        elems: Vec<Expr>,
        /// Position of the opening bracket.
        span: Span,
    },
    /// `{ ... }` block, including if/loop/match bodies.
    Block {
        /// Statements/expressions in order.
        exprs: Vec<Expr>,
        /// Position of the opening brace.
        span: Span,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Closure body.
        body: Box<Expr>,
        /// Position of the opening `|`.
        span: Span,
    },
    /// `let pat: Ty = init` statement.
    Let {
        /// First bound ident of the pattern, when recoverable.
        name: Option<String>,
        /// Raw tokens of the type annotation (empty when absent).
        ty: Vec<String>,
        /// Initializer expression.
        init: Option<Box<Expr>>,
        /// Position of the `let` keyword.
        span: Span,
    },
    /// Anything unmodelled, keeping whatever children were parsed.
    Other {
        /// Salvaged child expressions.
        children: Vec<Expr>,
        /// Position of the construct.
        span: Span,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path { span, .. }
            | Expr::Lit { span, .. }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Macro { span, .. }
            | Expr::Array { span, .. }
            | Expr::Block { span, .. }
            | Expr::Closure { span, .. }
            | Expr::Let { span, .. }
            | Expr::Other { span, .. } => *span,
        }
    }

    /// Pre-order walk over this expression and all nested expressions.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk(f),
            Expr::Index { base, index, .. } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Array { elems, .. } => {
                for e in elems {
                    e.walk(f);
                }
            }
            Expr::Block { exprs, .. } => {
                for e in exprs {
                    e.walk(f);
                }
            }
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Let { init, .. } => {
                if let Some(i) = init {
                    i.walk(f);
                }
            }
            Expr::Other { children, .. } => {
                for c in children {
                    c.walk(f);
                }
            }
        }
    }

    /// Root identifier of an lvalue-ish chain: descends through field
    /// accesses, method calls, indexing, unary refs/derefs and parens to
    /// the leftmost path, returning its first segment.
    pub fn root_ident(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } => segs.first().map(String::as_str),
            Expr::Field { recv, .. } => recv.root_ident(),
            Expr::MethodCall { recv, .. } => recv.root_ident(),
            Expr::Index { base, .. } => base.root_ident(),
            Expr::Unary { expr, .. } => expr.root_ident(),
            Expr::Call { callee, .. } => callee.root_ident(),
            _ => None,
        }
    }
}

/// A function together with its ownership context, produced by
/// [`File::functions`].
#[derive(Debug, Clone, Copy)]
pub struct FnRef<'a> {
    /// The function.
    pub func: &'a Fn,
    /// Enclosing impl's type name, when the fn is an associated fn.
    pub owner: Option<&'a str>,
    /// Effective visibility: the fn's own `pub` AND-ed with every
    /// enclosing module being `pub` is not tracked — this is the fn's own
    /// marker, which over-approximates public surface.
    pub vis_pub: bool,
}

impl File {
    /// Every function in the file, with impl-ownership context, in
    /// source order.
    pub fn functions(&self) -> Vec<FnRef<'_>> {
        let mut out = Vec::new();
        collect_fns(&self.items, None, &mut out);
        out
    }

    /// Every `use` path in the file, flattened across nesting levels.
    pub fn use_paths(&self) -> Vec<&[String]> {
        let mut out = Vec::new();
        collect_uses(&self.items, &mut out);
        out
    }

    /// Pre-order walk over every expression in every fn body.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        for fr in self.functions() {
            if let Some(body) = &fr.func.body {
                for e in body {
                    e.walk(f);
                }
            }
        }
    }
}

fn collect_fns<'a>(items: &'a [Item], owner: Option<&'a str>, out: &mut Vec<FnRef<'a>>) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(func) => out.push(FnRef {
                func,
                owner,
                vis_pub: item.vis_pub,
            }),
            ItemKind::Impl(imp) => collect_fns(&imp.items, Some(&imp.type_name), out),
            ItemKind::Mod(m) => collect_fns(&m.items, owner, out),
            _ => {}
        }
    }
}

fn collect_uses<'a>(items: &'a [Item], out: &mut Vec<&'a [String]>) {
    for item in items {
        match &item.kind {
            ItemKind::Use(u) => out.extend(u.paths.iter().map(Vec::as_slice)),
            ItemKind::Impl(imp) => collect_uses(&imp.items, out),
            ItemKind::Mod(m) => collect_uses(&m.items, out),
            _ => {}
        }
    }
}
