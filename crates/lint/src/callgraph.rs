//! Workspace symbol index, over-approximate call graph and the D010
//! panic-reachability rule.
//!
//! Nodes are the functions of every **library** file (bins, tests,
//! benches and harness crates are out of scope — a panic there aborts a
//! tool, not a campaign). Edges are resolved by name: a path call
//! `helper(…)` links to every workspace fn named `helper` (restricted by
//! qualifier when one is present: `Foo::helper` only links to `impl Foo`
//! methods, `std::…` never links anywhere), and a method call `.m(…)`
//! links to every impl/trait method named `m`. This over-approximates
//! real dispatch — see DESIGN §12 for the envelope.
//!
//! A **panic source** is a non-suppressed `.unwrap()` / `.expect()` /
//! `panic!` / `todo!` / `unimplemented!` site in library code. A site
//! carrying an audited `dynalint:allow(D001|D002|D010)` is discharged:
//! the allow's reason documents why it cannot fire, so reachability
//! stops there. D010 reports:
//!
//! * every **public** library fn that *transitively* (depth ≥ 1) reaches
//!   a panic source, with the witness call path — depth-0 sites are
//!   D001/D002's business and are not re-reported;
//! * every public library fn that **indexes one of its own parameters**
//!   directly (`xs[i]` where `xs` is a parameter), unless the body
//!   contains an `assert`-family contract check, because out-of-range
//!   caller input then aborts the process.

use crate::rules::{FileKind, Finding, RuleId, SourceFile};
use crate::tree::{Expr, Span};
use std::collections::BTreeMap;

/// Qualifiers that are never workspace symbols: calls through them do
/// not create edges.
const EXTERNAL_QUALS: [&str; 22] = [
    "std", "core", "alloc", "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16",
    "i32", "i64", "i128", "isize", "bool", "char", "str", "String", "Vec",
];

/// One direct abort site inside a fn body.
#[derive(Debug, Clone)]
struct PanicSite {
    what: String,
    span: Span,
}

/// One outgoing call from a fn body.
#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    /// Last-but-one path segment (`Foo` in `Foo::helper`).
    qual: Option<String>,
    /// First path segment of a multi-segment path (`std` in
    /// `std::mem::take`) — used to rule out external roots.
    root: Option<String>,
    is_method: bool,
}

/// A fn node in the graph.
struct Node {
    file: usize,
    name: String,
    owner: Option<String>,
    is_pub: bool,
    span: Span,
    direct: Vec<PanicSite>,
    calls: Vec<CallSite>,
    param_indexes: Vec<(String, Span)>,
    has_assert: bool,
}

/// Runs the D010 panic-reachability analysis over a set of parsed files
/// (the whole workspace, or a single file for the per-file API). Returned
/// findings are **not** yet suppression-filtered.
pub fn panic_reachability(files: &[SourceFile]) -> Vec<Finding> {
    let nodes = collect_nodes(files);
    let index = build_index(&nodes);
    let edges: Vec<Vec<usize>> = nodes.iter().map(|n| resolve(n, &nodes, &index)).collect();

    let mut findings = Vec::new();
    for (start, node) in nodes.iter().enumerate() {
        if !node.is_pub {
            continue;
        }
        let file = match files.get(node.file) {
            Some(f) => f,
            None => continue,
        };
        // Transitive reachability (depth >= 1). A fn whose own body has a
        // direct site is already a D001/D002 finding; re-reporting it
        // here would double-count.
        if node.direct.is_empty() {
            if let Some((path, site)) = shortest_witness(start, &nodes, &edges) {
                let chain: Vec<&str> = path
                    .iter()
                    .filter_map(|&i| nodes.get(i).map(|n| n.name.as_str()))
                    .collect();
                let site_file = path
                    .last()
                    .and_then(|&i| nodes.get(i))
                    .and_then(|n| files.get(n.file))
                    .map(|f| f.path.as_str())
                    .unwrap_or("?");
                findings.push(Finding {
                    rule: RuleId::D010,
                    file: file.path.clone(),
                    line: node.span.line,
                    col: node.span.col,
                    message: format!(
                        "public fn `{}` can reach a panic: {} ({} at {}:{})",
                        node.name,
                        chain.join(" -> "),
                        site.what,
                        site_file,
                        site.span.line,
                    ),
                });
            }
        }
        // Direct parameter indexing in the public fn itself.
        if !node.has_assert {
            for (param, span) in &node.param_indexes {
                findings.push(Finding {
                    rule: RuleId::D010,
                    file: file.path.clone(),
                    line: span.line,
                    col: span.col,
                    message: format!(
                        "public fn `{}` indexes its parameter `{}` directly; \
                         out-of-range caller input aborts — use `.get()` or assert the contract",
                        node.name, param,
                    ),
                });
            }
        }
    }
    findings
}

/// BFS from `start` (exclusive) to the nearest node with a direct panic
/// site; returns the call path `start -> … -> site_fn` and the site.
fn shortest_witness(
    start: usize,
    nodes: &[Node],
    edges: &[Vec<usize>],
) -> Option<(Vec<usize>, PanicSite)> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    queue.push_back(start);
    parent.insert(start, start);
    while let Some(cur) = queue.pop_front() {
        for &next in edges.get(cur).map(Vec::as_slice).unwrap_or(&[]) {
            if parent.contains_key(&next) {
                continue;
            }
            parent.insert(next, cur);
            let node = nodes.get(next)?;
            if let Some(site) = node.direct.first() {
                // Reconstruct start -> ... -> next.
                let mut path = vec![next];
                let mut cursor = next;
                while cursor != start {
                    cursor = *parent.get(&cursor)?;
                    path.push(cursor);
                }
                path.reverse();
                return Some((path, site.clone()));
            }
            queue.push_back(next);
        }
    }
    None
}

fn collect_nodes(files: &[SourceFile]) -> Vec<Node> {
    let mut nodes = Vec::new();
    for (file_idx, sf) in files.iter().enumerate() {
        if sf.kind != FileKind::Lib {
            continue;
        }
        for fr in sf.tree.functions() {
            if sf.in_test_region(fr.func.span.line) {
                continue;
            }
            let mut node = Node {
                file: file_idx,
                name: fr.func.name.clone(),
                owner: fr.owner.map(str::to_string),
                is_pub: fr.vis_pub,
                span: fr.func.span,
                direct: Vec::new(),
                calls: Vec::new(),
                param_indexes: Vec::new(),
                has_assert: false,
            };
            let params: Vec<&str> = fr
                .func
                .params
                .iter()
                .map(String::as_str)
                .filter(|p| *p != "self")
                .collect();
            if let Some(body) = &fr.func.body {
                for e in body {
                    e.walk(&mut |e| visit_expr(e, sf, &params, &mut node));
                }
            }
            nodes.push(node);
        }
    }
    nodes
}

fn visit_expr(e: &Expr, sf: &SourceFile, params: &[&str], node: &mut Node) {
    match e {
        Expr::MethodCall { name, span, .. } => {
            if name == "unwrap" || name == "expect" {
                let discharged = sf.is_allowed(span.line, RuleId::D001)
                    || sf.is_allowed(span.line, RuleId::D010)
                    || sf.in_test_region(span.line);
                if !discharged {
                    node.direct.push(PanicSite {
                        what: format!("`.{name}()`"),
                        span: *span,
                    });
                }
            } else {
                node.calls.push(CallSite {
                    name: name.clone(),
                    qual: None,
                    root: None,
                    is_method: true,
                });
            }
        }
        Expr::Macro { name, span, .. } => {
            if matches!(name.as_str(), "panic" | "todo" | "unimplemented") {
                let discharged = sf.is_allowed(span.line, RuleId::D002)
                    || sf.is_allowed(span.line, RuleId::D010)
                    || sf.in_test_region(span.line);
                if !discharged {
                    node.direct.push(PanicSite {
                        what: format!("`{name}!`"),
                        span: *span,
                    });
                }
            } else if name.starts_with("assert") || name.starts_with("debug_assert") {
                node.has_assert = true;
            }
        }
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(name) = segs.last() {
                    let qual = segs.len().checked_sub(2).and_then(|i| segs.get(i)).cloned();
                    let root = (segs.len() >= 2).then(|| segs.first().cloned()).flatten();
                    node.calls.push(CallSite {
                        name: name.clone(),
                        qual,
                        root,
                        is_method: false,
                    });
                }
            }
        }
        Expr::Index { base, span, .. } => {
            if let Some(root) = base.root_ident() {
                if params.contains(&root)
                    && !sf.is_allowed(span.line, RuleId::D010)
                    && !sf.in_test_region(span.line)
                {
                    node.param_indexes.push((root.to_string(), *span));
                }
            }
        }
        _ => {}
    }
}

fn build_index(nodes: &[Node]) -> BTreeMap<&str, Vec<usize>> {
    let mut index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        index.entry(n.name.as_str()).or_default().push(i);
    }
    index
}

/// Resolves one node's call sites to candidate callee node ids.
fn resolve(node: &Node, nodes: &[Node], index: &BTreeMap<&str, Vec<usize>>) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for call in &node.calls {
        let Some(candidates) = index.get(call.name.as_str()) else {
            continue;
        };
        // A path rooted in an external crate never resolves to workspace
        // code, regardless of how deep it is (`std::mem::take`).
        if call
            .root
            .as_deref()
            .is_some_and(|r| EXTERNAL_QUALS.contains(&r))
        {
            continue;
        }
        let filtered: Vec<usize> = match &call.qual {
            Some(q) if EXTERNAL_QUALS.contains(&q.as_str()) => Vec::new(),
            Some(q) if q == "Self" || q == "self" => candidates
                .iter()
                .copied()
                .filter(|&i| nodes.get(i).is_some_and(|n| n.owner == node.owner))
                .collect(),
            Some(q) => {
                let owned: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| nodes.get(i).is_some_and(|n| n.owner.as_deref() == Some(q)))
                    .collect();
                if owned.is_empty() {
                    // Unknown qualifier (module path, crate name): keep
                    // every candidate — over-approximation by design.
                    candidates.clone()
                } else {
                    owned
                }
            }
            None if call.is_method => candidates
                .iter()
                .copied()
                .filter(|&i| nodes.get(i).is_some_and(|n| n.owner.is_some()))
                .collect(),
            None => candidates.clone(),
        };
        out.extend(filtered);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn d010(path: &str, src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse(path, src);
        panic_reachability(std::slice::from_ref(&sf))
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn transitive_unwrap_reported_with_witness() {
        let src = "pub fn api(v: &[f64]) -> f64 { mid(v) }\n\
                   fn mid(v: &[f64]) -> f64 { leaf(v) }\n\
                   fn leaf(v: &[f64]) -> f64 { *v.first().unwrap() }\n";
        let f = d010(LIB, src);
        assert_eq!(f.len(), 1);
        let msg = &f.first().expect("one finding").message;
        assert!(msg.contains("api -> mid -> leaf"), "witness path in {msg}");
        assert!(msg.contains(".unwrap()"), "site kind in {msg}");
    }

    #[test]
    fn depth_zero_sites_are_not_reported() {
        // Direct unwrap in the pub fn is D001's finding, not D010's.
        let src = "pub fn api(v: &[f64]) -> f64 { *v.first().unwrap() }";
        assert!(d010(LIB, src).is_empty());
    }

    #[test]
    fn allowed_site_discharges_reachability() {
        let src = "pub fn api(v: &[f64]) -> f64 { leaf(v) }\n\
                   fn leaf(v: &[f64]) -> f64 {\n\
                   *v.first().unwrap() // dynalint:allow(D001) -- caller checks non-empty\n\
                   }\n";
        assert!(d010(LIB, src).is_empty());
    }

    #[test]
    fn param_index_fires_without_assert_guard() {
        let src = "pub fn nth(xs: &[f64], i: usize) -> f64 { xs[i] }";
        let f = d010(LIB, src);
        assert_eq!(f.len(), 1);
        assert!(f.first().expect("one").message.contains("parameter `xs`"));
    }

    #[test]
    fn param_index_with_assert_is_contractual() {
        let src = "pub fn nth(xs: &[f64], i: usize) -> f64 { assert!(i < xs.len()); xs[i] }";
        assert!(d010(LIB, src).is_empty());
    }

    #[test]
    fn local_index_is_fine() {
        let src = "pub fn head() -> f64 { let xs = vec![1.0]; xs[0] }";
        assert!(d010(LIB, src).is_empty());
    }

    #[test]
    fn bins_and_harness_are_out_of_scope() {
        let src = "pub fn api(v: &[f64]) -> f64 { leaf(v) }\n\
                   fn leaf(v: &[f64]) -> f64 { *v.first().unwrap() }\n";
        assert!(d010("crates/demo/src/bin/tool.rs", src).is_empty());
        assert!(d010("crates/bench/src/lib.rs", src).is_empty());
        assert!(d010("crates/demo/tests/it.rs", src).is_empty());
    }

    #[test]
    fn method_calls_link_to_impl_methods() {
        let src = "pub struct S;\n\
                   impl S {\n\
                   fn boom(&self) -> u8 { self.v.first().unwrap() }\n\
                   }\n\
                   pub fn api(s: &S) -> u8 { s.boom() }\n";
        let f = d010(LIB, src);
        assert_eq!(f.len(), 1);
        assert!(f.first().expect("one").message.contains("api -> boom"));
    }

    #[test]
    fn qualified_external_calls_do_not_link() {
        // `std::mem::take` shares no name with workspace fns; and even a
        // name collision behind `std::` must not create an edge.
        let src = "pub fn api(v: Vec<f64>) -> Vec<f64> { std::mem::take(&mut take(v)) }\n\
                   fn take(v: Vec<f64>) -> Vec<f64> { v }\n";
        assert!(d010(LIB, src).is_empty());
    }
}
