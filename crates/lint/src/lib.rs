//! `dynawave-lint` ("dynalint") — hermetic in-tree static analysis.
//!
//! PR 1 made the workspace hermetic and bit-reproducible *by
//! construction*; this crate makes those properties hold *by
//! enforcement*. It is an in-tree linter with a hand-rolled Rust lexer
//! (so rules never fire inside string literals, comments or doc
//! examples), a recursive-descent [`parser`] producing a lightweight
//! syntax [`tree`], and a workspace-wide [`callgraph`]. The token rules:
//!
//! * **D001** — `.unwrap()` / `.expect()` in non-test library code.
//! * **D002** — `panic!` / `todo!` / `unimplemented!` outside tests/bins.
//! * **D003** — float `==` / `!=` comparisons (literal heuristic).
//! * **D004** — nondeterminism sources (`std::time`, `thread::sleep`,
//!   `std::env`, `HashMap`/`HashSet` randomized iteration) outside the
//!   `bench`/`testkit` harness crates.
//! * **D005** — non-`path` dependencies in any `Cargo.toml`.
//! * **D006** — `unsafe` anywhere, tests included.
//! * **D007** — `Instant::now()` / `SystemTime` anywhere, tests included,
//!   outside the harness crates and the `dynawave-obs` clock impls: wall
//!   time goes through the `dynawave_obs::Clock` trait.
//!
//! And the structural rules, which run on the parse tree and call graph:
//!
//! * **D010** — public library fns that *transitively* reach a panic
//!   site, reported with the witness call path; plus public fns that
//!   index their own parameters without an assert contract.
//! * **D011** — float determinism: `partial_cmp` comparators and float
//!   reductions over unordered hash iteration.
//! * **D012** — concurrency containment: threads, locks, atomics,
//!   channels and `static mut` only in the approved modules.
//! * **D013** — schema-literal drift from the canonical vocabulary in
//!   `dynawave_obs::schema`.
//!
//! `dynawave-lint --explain D010` prints any rule's rationale and fix
//! pattern; `--json` emits findings as `dynawave-obs` marker events.
//!
//! Individual lines opt out with an audited suppression:
//!
//! ```text
//! let x = v.last().expect("…"); // dynalint:allow(D001) -- checked non-empty above
//! ```
//!
//! A reason after `--` is mandatory; a suppression without one is itself
//! a finding (D000). Pre-existing violations live in `lint-baseline.toml`
//! at the workspace root, which only ever ratchets down: new findings
//! fail, fixed ones are reported as stale baseline entries.
//!
//! Run it via `cargo run -p dynawave-lint --release` (wired into `ci.sh`)
//! or use [`walk::lint_workspace`] programmatically.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod tree;
pub mod walk;

pub use baseline::{Baseline, BaselineReport};
pub use rules::{
    classify, lint_manifest, lint_rust_source, lint_sources, FileKind, Finding, RuleId, SourceFile,
};
