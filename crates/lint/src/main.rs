//! CLI for `dynawave-lint`.
//!
//! ```text
//! dynawave-lint [ROOT] [--no-baseline] [--update-baseline] [--verbose]
//!               [--json] [--explain RULE]
//! ```
//!
//! Walks the workspace at `ROOT` (default: the nearest ancestor of the
//! current directory containing `lint-baseline.toml` or a workspace
//! `Cargo.toml`), lints every `.rs` and `Cargo.toml`, subtracts the
//! committed baseline and exits nonzero on any new finding. Findings are
//! printed as `file:line:col: RULE: message` so terminals make them
//! clickable.
//!
//! `--json` switches stdout to the dynawave-obs JSON-lines schema (one
//! `lint.finding` marker per new finding plus per-rule counters), so the
//! stream can be piped straight into `obs_validate`; the human report
//! moves to stderr. `--explain RULE` prints a rule's summary, rationale
//! and fix pattern, then exits.

use dynawave_lint::{walk, Baseline, BaselineReport, RuleId};
use dynawave_obs::event::{encode_lines, Event, EventKind};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    use_baseline: bool,
    update_baseline: bool,
    verbose: bool,
    json: bool,
    explain: Option<String>,
}

const USAGE: &str = "usage: dynawave-lint [ROOT] [--no-baseline] [--update-baseline] \
                     [--verbose] [--json] [--explain RULE]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::new(),
        use_baseline: true,
        update_baseline: false,
        verbose: false,
        json: false,
        explain: None,
    };
    let mut root: Option<PathBuf> = None;
    // dynalint:allow(D004) -- CLI arguments are the tool's intended input
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-baseline" => opts.use_baseline = false,
            "--update-baseline" => opts.update_baseline = true,
            "--verbose" => opts.verbose = true,
            "--json" => opts.json = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    return Err("--explain needs a rule name (e.g. --explain D010)".to_string());
                };
                opts.explain = Some(rule);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.explain.is_none() {
        opts.root = match root {
            Some(r) => r,
            None => find_root()?,
        };
    }
    Ok(opts)
}

/// Walks up from the current directory to the workspace root, identified
/// by `lint-baseline.toml` or a `Cargo.toml` declaring `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("lint-baseline.toml").is_file() {
            return Ok(dir);
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_string());
        }
    }
}

/// Prints the rule card for `--explain RULE`.
fn explain(rule_name: &str) -> ExitCode {
    let Some(rule) = RuleId::parse(rule_name) else {
        let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
        eprintln!(
            "dynawave-lint: unknown rule {rule_name:?}; known rules: {}",
            known.join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{rule}: {}", rule.summary());
    println!();
    println!("why:  {}", rule.rationale());
    println!("fix:  {}", rule.fix_pattern());
    println!();
    println!(
        "suppress a single audited site with a trailing\n\
         `// dynalint:allow({rule}) -- reason` comment."
    );
    ExitCode::SUCCESS
}

/// Renders the baseline report as a dynawave-obs JSON-lines stream:
/// a `lint.run` marker, one `lint.finding` marker per new finding, one
/// counter per rule, and summary counters. Paths in marker details are
/// workspace-relative, so the stream is machine-independent.
fn render_obs_stream(report: &BaselineReport) -> String {
    let mut events: Vec<Event> = Vec::new();
    let mut push = |mut e: Event| {
        let seq = events.len() as u64;
        e.seq = seq;
        e.tick = seq;
        events.push(e);
    };

    let mut run = Event::new(0, 0, EventKind::Marker, "lint.run");
    run.detail = Some(format!(
        "{} new, {} baselined, {} stale baseline entries",
        report.new.len(),
        report.baselined,
        report.stale.len()
    ));
    push(run);

    for f in &report.new {
        let mut e = Event::new(0, 0, EventKind::Marker, "lint.finding");
        e.detail = Some(f.to_string());
        push(e);
    }

    for rule in RuleId::ALL {
        let n = report.new.iter().filter(|f| f.rule == rule).count() as u64;
        let mut e = Event::new(0, 0, EventKind::Counter, format!("lint.rule.{rule}"));
        e.count = Some(n);
        push(e);
    }
    for (name, value) in [
        ("lint.findings.new", report.new.len() as u64),
        ("lint.findings.baselined", report.baselined as u64),
        ("lint.baseline.stale", report.stale.len() as u64),
    ] {
        let mut e = Event::new(0, 0, EventKind::Counter, name);
        e.count = Some(value);
        push(e);
    }
    encode_lines(&events)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = &opts.explain {
        return explain(rule);
    }
    let findings = match walk::lint_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dynawave-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts.root.join("lint-baseline.toml");
    if opts.update_baseline {
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &rendered) {
            eprintln!(
                "dynawave-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} findings grandfathered)",
            baseline_path.display(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.use_baseline && baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dynawave-lint: cannot read baseline: {e}");
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dynawave-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let report = baseline.check(&findings);

    // In --json mode stdout carries the obs stream and the human report
    // moves to stderr, so piping into obs_validate stays clean.
    let say = |line: String| {
        if opts.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if opts.json {
        print!("{}", render_obs_stream(&report));
    }
    for f in &report.new {
        say(f.to_string());
    }
    for (key, allowed, found) in &report.stale {
        say(format!(
            "stale baseline entry {key}: allows {allowed}, found {found} — \
             ratchet down with --update-baseline"
        ));
    }
    if opts.verbose || !report.new.is_empty() {
        say(format!(
            "dynawave-lint: {} new, {} baselined, {} stale baseline entries",
            report.new.len(),
            report.baselined,
            report.stale.len()
        ));
    }
    if report.new.is_empty() {
        if opts.verbose {
            say("dynawave-lint: clean".to_string());
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
