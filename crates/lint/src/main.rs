//! CLI for `dynawave-lint`.
//!
//! ```text
//! dynawave-lint [ROOT] [--no-baseline] [--update-baseline] [--verbose]
//! ```
//!
//! Walks the workspace at `ROOT` (default: the nearest ancestor of the
//! current directory containing `lint-baseline.toml` or a workspace
//! `Cargo.toml`), lints every `.rs` and `Cargo.toml`, subtracts the
//! committed baseline and exits nonzero on any new finding. Findings are
//! printed as `file:line:col: RULE: message` so terminals make them
//! clickable.

use dynawave_lint::{walk, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    use_baseline: bool,
    update_baseline: bool,
    verbose: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::new(),
        use_baseline: true,
        update_baseline: false,
        verbose: false,
    };
    let mut root: Option<PathBuf> = None;
    // dynalint:allow(D004) -- CLI arguments are the tool's intended input
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-baseline" => opts.use_baseline = false,
            "--update-baseline" => opts.update_baseline = true,
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => {
                return Err(
                    "usage: dynawave-lint [ROOT] [--no-baseline] [--update-baseline] \
                            [--verbose]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    opts.root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    Ok(opts)
}

/// Walks up from the current directory to the workspace root, identified
/// by `lint-baseline.toml` or a `Cargo.toml` declaring `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("lint-baseline.toml").is_file() {
            return Ok(dir);
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_string());
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let findings = match walk::lint_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dynawave-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts.root.join("lint-baseline.toml");
    if opts.update_baseline {
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &rendered) {
            eprintln!(
                "dynawave-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} findings grandfathered)",
            baseline_path.display(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.use_baseline && baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dynawave-lint: cannot read baseline: {e}");
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dynawave-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let report = baseline.check(&findings);
    for f in &report.new {
        println!("{f}");
    }
    for (key, allowed, found) in &report.stale {
        println!(
            "stale baseline entry {key}: allows {allowed}, found {found} — \
             ratchet down with --update-baseline"
        );
    }
    if opts.verbose || !report.new.is_empty() {
        println!(
            "dynawave-lint: {} new, {} baselined, {} stale baseline entries",
            report.new.len(),
            report.baselined,
            report.stale.len()
        );
    }
    if report.new.is_empty() {
        if opts.verbose {
            println!("dynawave-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
