//! Deterministic workspace walker.
//!
//! Collects every `.rs` and `Cargo.toml` under the workspace root in a
//! stable (sorted) order, skipping build output, VCS metadata, lint test
//! fixtures (which deliberately contain violations) and generated
//! results. The walker itself uses no wall clock and no randomized data
//! structure, so two runs over the same tree visit identical sequences.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "results", ".claude"];

/// Errors from walking or reading the workspace.
#[derive(Debug)]
pub struct WalkError {
    /// Path the operation failed on.
    pub path: PathBuf,
    /// The underlying I/O error, stringified.
    pub error: String,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.error)
    }
}

impl std::error::Error for WalkError {}

/// Returns workspace-relative paths (with `/` separators) of every
/// lintable file under `root`, sorted lexicographically.
///
/// # Errors
///
/// Returns a [`WalkError`] naming the first unreadable directory.
pub fn lintable_files(root: &Path) -> Result<Vec<String>, WalkError> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), WalkError> {
    let entries = fs::read_dir(dir).map_err(|e| WalkError {
        path: dir.to_path_buf(),
        error: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| WalkError {
            path: dir.to_path_buf(),
            error: e.to_string(),
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<&str> = rel
                    .components()
                    .filter_map(|c| c.as_os_str().to_str())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

/// Reads and lints every lintable file under `root`. Rust sources are
/// parsed once into [`crate::rules::SourceFile`]s and linted as one set,
/// so the D010 call graph spans file and crate boundaries; manifests are
/// checked per-file. Findings are sorted by `(file, line, col, rule)`.
///
/// # Errors
///
/// Returns a [`WalkError`] for the first unreadable file or directory.
pub fn lint_workspace(root: &Path) -> Result<Vec<crate::rules::Finding>, WalkError> {
    let mut findings = Vec::new();
    let mut sources = Vec::new();
    for rel in lintable_files(root)? {
        let full = root.join(&rel);
        let src = fs::read_to_string(&full).map_err(|e| WalkError {
            path: full.clone(),
            error: e.to_string(),
        })?;
        if rel.ends_with("Cargo.toml") {
            findings.extend(crate::rules::lint_manifest(&rel, &src));
        } else {
            sources.push(crate::rules::SourceFile::parse(&rel, &src));
        }
    }
    findings.extend(crate::rules::lint_sources(&sources));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}
