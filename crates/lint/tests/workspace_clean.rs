//! The workspace itself must lint clean against the committed baseline.
//!
//! This is the same check `ci.sh` runs via the CLI; having it as a test
//! means `cargo test` alone catches a PR that introduces a panic site,
//! a nondeterminism source or an external dependency.

use dynawave_lint::{walk, Baseline};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
}

#[test]
fn workspace_lints_clean_against_baseline() {
    let root = workspace_root();
    let findings = walk::lint_workspace(root).expect("workspace is readable");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = baseline.check(&findings);
    assert!(
        report.new.is_empty(),
        "new lint findings (fix them or, for audited exceptions, add a \
         `// dynalint:allow(RULE) -- reason`):\n{}",
        report
            .new
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn obs_analysis_layer_is_panic_free_even_under_lib_rules() {
    // The analysis bins (`compare_bench`, `obs_report`, `obs_validate`)
    // lint as Bin files, where D001 (unwrap/expect) does not apply. Hold
    // them to the stricter Lib bar anyway by re-linting their source
    // under a synthetic lib path: CLI plumbing may `std::process::exit`,
    // but it must never panic, and the shared `analyze.rs` layer must
    // stay D001/D003/D004/D007-clean for real.
    use dynawave_lint::rules::lint_rust_source;
    let root = workspace_root();
    for file in [
        "crates/obs/src/analyze.rs",
        "crates/obs/src/bin/compare_bench.rs",
        "crates/obs/src/bin/obs_report.rs",
        "crates/obs/src/bin/obs_validate.rs",
    ] {
        let src = std::fs::read_to_string(root.join(file)).expect("source file is readable");
        let findings = lint_rust_source("crates/obs/src/strict_relint.rs", &src);
        assert!(
            findings.is_empty(),
            "{file} must stay clean under lib-strict lint rules:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = workspace_root();
    let findings = walk::lint_workspace(root).expect("workspace is readable");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = baseline.check(&findings);
    assert!(
        report.stale.is_empty(),
        "stale baseline entries — ratchet down with \
         `cargo run -p dynawave-lint -- --update-baseline`: {:?}",
        report.stale
    );
}

#[test]
fn baseline_is_empty() {
    // The seed tree had 26 D001/D002 findings; the baseline was burned
    // down to zero and only ever ratchets, so it must stay empty —
    // every new finding is fixed or carries an audited inline allow.
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    assert_eq!(
        baseline.total_allowance(),
        0,
        "the baseline was emptied and must stay empty; fix the finding or \
         add an audited `dynalint:allow` instead of regrowing it"
    );
}
