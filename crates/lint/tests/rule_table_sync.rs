//! The three places that enumerate rules — `RuleId::ALL`, the module-doc
//! table in `src/rules.rs` and the README rule table — must agree, so a
//! new rule cannot ship half-documented.

use dynawave_lint::RuleId;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts the rule IDs from the first column of a markdown table:
/// every line shaped `| D0xx |` (optionally backticked or behind a
/// doc-comment prefix).
fn table_rules(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim_start().trim_start_matches("//!").trim_start();
        let Some(rest) = line.strip_prefix('|') else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let cell = cell.trim().trim_matches('`');
        if cell.len() == 4 && cell.starts_with('D') && cell[1..].chars().all(|c| c.is_ascii_digit())
        {
            out.insert(cell.to_string());
        }
    }
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn all_rule_names() -> BTreeSet<String> {
    RuleId::ALL.iter().map(|r| r.name().to_string()).collect()
}

#[test]
fn module_doc_table_matches_rule_ids() {
    let text = read(&manifest_dir().join("src/rules.rs"));
    let mut expected = all_rule_names();
    // The doc table also documents the D000 meta-rule (not in ALL).
    expected.insert("D000".to_string());
    assert_eq!(
        table_rules(&text),
        expected,
        "src/rules.rs module-doc table is out of sync with RuleId"
    );
}

#[test]
fn readme_table_matches_rule_ids() {
    let text = read(&manifest_dir().join("../../README.md"));
    let table = table_rules(&text);
    assert_eq!(
        table,
        all_rule_names(),
        "README.md rule table is out of sync with RuleId::ALL"
    );
}

#[test]
fn every_rule_has_an_explain_card() {
    for rule in RuleId::ALL {
        assert!(
            !rule.summary().is_empty()
                && !rule.rationale().is_empty()
                && !rule.fix_pattern().is_empty(),
            "{rule} is missing --explain text"
        );
    }
}
