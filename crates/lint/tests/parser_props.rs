//! Seeded property tests for the structural front end: the lexer and
//! parser must never panic and must terminate on adversarial token soup,
//! and lexed spans must reproduce the source bytes they claim to cover.
//!
//! Failures print a replay seed (see `dynawave_testkit::Checker::replay`).

use dynawave_lint::lexer::{lex, TokenKind};
use dynawave_lint::lint_rust_source;
use dynawave_lint::parser::parse_file;
use dynawave_testkit::{check, gen, Rng};

/// Source fragments chosen to stress every lexer mode and parser
/// recovery path: keywords, nesting, half-finished literals, stray
/// closers, lifetimes vs chars, raw strings and non-ASCII text.
const FRAGMENTS: [&str; 40] = [
    "fn", "pub", "impl", "struct", "use", "let", "match", "unsafe", "mod", "f", "x1", "_y", "self",
    "Self", "Vec", "r", "b", "{", "}", "(", ")", "[", "]", "<", ">", ";", ",", "::", "->", "=>",
    "..", "#", "!", "&&", "|", "1.5e-3", "'a", "'x'", "\"s\"", "\u{3bb}",
];

/// Renders an index soup into source text with single-space joints so
/// fragment boundaries stay token boundaries (mostly).
fn render(indices: &[usize]) -> String {
    let mut out = String::new();
    for (n, &i) in indices.iter().enumerate() {
        if n % 7 != 0 {
            out.push(' ');
        }
        if n % 13 == 0 {
            out.push('\n');
        }
        out.push_str(FRAGMENTS[i % FRAGMENTS.len()]);
    }
    out
}

fn soup_gen() -> impl Fn(&mut Rng) -> Vec<usize> {
    gen::vec_of(gen::usize_in(0, FRAGMENTS.len() - 1), 0, 160)
}

/// Fully random character soup, including unterminated string/comment
/// openers and control characters the fragment list cannot produce.
fn char_soup(rng: &mut Rng) -> Vec<usize> {
    let len = rng.range_usize(0, 120);
    (0..len).map(|_| rng.range_usize(0, 0x2500)).collect()
}

fn render_chars(points: &[usize]) -> String {
    points
        .iter()
        .filter_map(|&p| char::from_u32(p as u32))
        .collect()
}

#[test]
fn lexer_and_parser_survive_fragment_soup() {
    check("lex+parse terminates on fragment soup")
        .cases(256)
        .run(soup_gen(), |indices| {
            let src = render(indices);
            let lexed = lex(&src);
            let tree = parse_file(&lexed);
            // Touch the derived views too: they walk the whole tree.
            let _ = tree.functions().len();
            let _ = tree.use_paths().len();
            Ok(())
        });
}

#[test]
fn lexer_and_parser_survive_char_soup() {
    check("lex+parse terminates on raw char soup")
        .cases(256)
        .run(char_soup, |points| {
            let src = render_chars(points);
            let lexed = lex(&src);
            let _ = parse_file(&lexed);
            Ok(())
        });
}

#[test]
fn full_lint_pipeline_survives_fragment_soup() {
    check("lint_rust_source terminates on fragment soup")
        .cases(128)
        .run(soup_gen(), |indices| {
            let src = render(indices);
            // Rules + suppressions + call graph on garbage input: findings
            // may be arbitrary, but the pipeline must return.
            let _ = lint_rust_source("crates/demo/src/lib.rs", &src);
            Ok(())
        });
}

#[test]
fn lexed_spans_reproduce_source_bytes() {
    check("token spans are faithful and ordered")
        .cases(256)
        .run(soup_gen(), |indices| {
            let src = render(indices);
            let lexed = lex(&src);
            let mut prev_end = 0usize;
            for t in &lexed.tokens {
                if t.start >= t.end || t.end > src.len() {
                    return Err(format!(
                        "bad span {}..{} (len {})",
                        t.start,
                        t.end,
                        src.len()
                    ));
                }
                if t.start < prev_end {
                    return Err(format!("span {}..{} overlaps previous", t.start, t.end));
                }
                prev_end = t.end;
                let slice = &src[t.start..t.end];
                if slice != t.text {
                    return Err(format!("span text {:?} != source slice {slice:?}", t.text));
                }
                if matches!(t.kind, TokenKind::Ident) && t.text.is_empty() {
                    return Err("empty ident token".to_string());
                }
            }
            Ok(())
        });
}

#[test]
fn between_tokens_only_whitespace_and_comments() {
    // The stronger coverage claim on sources without comments: every
    // byte outside token spans is whitespace.
    check("non-token bytes are whitespace in comment-free soup")
        .cases(256)
        .run(soup_gen(), |indices| {
            let src = render(indices);
            let lexed = lex(&src);
            if !lexed.comments.is_empty() {
                // `/` fragments can pair into comments; skip those cases.
                return Ok(());
            }
            let mut covered = vec![false; src.len()];
            for t in &lexed.tokens {
                for flag in covered.iter_mut().take(t.end).skip(t.start) {
                    *flag = true;
                }
            }
            for (i, b) in src.bytes().enumerate() {
                if !covered[i] && !b.is_ascii_whitespace() && b < 0x80 {
                    return Err(format!("byte {i} ({:?}) uncovered", b as char));
                }
            }
            Ok(())
        });
}
