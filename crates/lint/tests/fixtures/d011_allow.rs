//! D011 suppression fixture: audited allows silence both trigger shapes.

pub fn rank(xs: &mut Vec<f64>) {
    // dynalint:allow(D011) -- inputs are pre-filtered finite, None is unreachable
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn total(pairs: &[(u32, f64)]) -> f64 {
    let weights: std::collections::HashMap<u32, f64> = // dynalint:allow(D004) -- fixture exercises the reduction rule, not D004
        pairs.iter().copied().collect();
    weights.values().sum() // dynalint:allow(D011) -- sum feeds a tolerance check, not a golden file
}
