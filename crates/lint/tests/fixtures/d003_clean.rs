//! D003 negative fixture: integer equality, epsilon comparisons and
//! float equality inside tests must stay silent.

pub fn int_eq(x: usize) -> bool {
    x == 0
}

pub fn epsilon(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

pub fn range_not_float(i: usize) -> usize {
    (0..10).map(|k| k + i).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_float_checks_are_test_assertions() {
        assert!(super::epsilon(0.5, 0.5) == (0.5 == 0.5));
    }
}
