//! D004 negative fixture: deterministic containers, seeded state and
//! mentions of timers in strings/comments must stay silent.

use std::collections::BTreeMap;

pub fn ordered_iteration() -> usize {
    // BTreeMap iterates in key order; no Instant, no SystemTime needed.
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}

pub fn describe() -> &'static str {
    "strings may say std::time::Instant, HashMap, ThreadId and thread::available_parallelism freely"
}

pub fn seeded_state(n: usize) -> usize {
    // Deterministic derived state: no clock, no env, no hasher — a fixed
    // arithmetic mix of the input only.
    n.wrapping_mul(0x9e37_79b9).rotate_left(5)
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_containers_are_fine_in_tests() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u8);
        assert_eq!(s.len(), 1);
    }
}
