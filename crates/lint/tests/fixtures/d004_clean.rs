//! D004 negative fixture: deterministic containers, seeded state and
//! mentions of timers in strings/comments must stay silent.

use std::collections::BTreeMap;

pub fn ordered_iteration() -> usize {
    // BTreeMap iterates in key order; no Instant, no SystemTime needed.
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}

pub fn describe() -> &'static str {
    "strings may say std::time::Instant, HashMap, ThreadId and thread::available_parallelism freely"
}

pub fn scoped_workers(n: usize) -> usize {
    // Spawning threads is fine in itself — determinism comes from what
    // the code *reads*, and a fixed worker count reads nothing ambient.
    std::thread::scope(|_| n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_containers_are_fine_in_tests() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u8);
        assert_eq!(s.len(), 1);
    }
}
