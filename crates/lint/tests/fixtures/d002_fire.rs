//! D002 positive fixture: panic-family macros in library code must fire.

pub fn explode(flag: bool) {
    if flag {
        panic!("library code must not panic");
    }
    todo!()
}
