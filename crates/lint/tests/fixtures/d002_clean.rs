//! D002 negative fixture: panics in test modules, strings and asserts
//! (documented contract checks) must stay silent.

pub fn contract(x: usize) -> usize {
    assert!(x > 0, "caller contract");
    x - 1
}

pub fn message() -> &'static str {
    "this string says panic!(...) and todo!()"
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_are_test_machinery() {
        panic!("expected in tests");
    }
}
