//! D013 negative fixture, serve protocol: canonical serve kinds, a
//! placeholder kind (filled at runtime), and a non-serve schema whose
//! `kind` vocabulary D013 does not police.

pub fn ok_response(seq: u64) -> String {
    format!("{{\"schema\":\"dynawave-serve\",\"v\":1,\"seq\":{seq},\"kind\":\"ok\"}}")
}

pub fn request_template(kind: &str) -> String {
    format!("{{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"{kind}\"}}")
}

pub fn obs_kind_is_not_checked_here() -> &'static str {
    "{\"schema\":\"dynawave-obs\",\"v\":1,\"kind\":\"marker\"}"
}
