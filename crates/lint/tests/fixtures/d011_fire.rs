//! D011 positive fixture: a partial_cmp comparator and a float reduction
//! over unordered iteration.

pub fn rank(xs: &mut Vec<f64>) {
    // NaN makes partial_cmp return None and the comparator non-total.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn total(pairs: &[(u32, f64)]) -> f64 {
    let weights: std::collections::HashMap<u32, f64> = // dynalint:allow(D004) -- fixture exercises the reduction rule, not D004
        pairs.iter().copied().collect();
    // Hash iteration order varies per process; float addition is not
    // associative, so the sum is run-dependent.
    weights.values().sum()
}
