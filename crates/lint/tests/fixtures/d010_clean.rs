//! D010 negative fixture: fallible propagation and contractual indexing
//! stay silent.

pub fn api(v: &[f64]) -> Option<f64> {
    inner(v)
}

fn inner(v: &[f64]) -> Option<f64> {
    v.first().copied()
}

pub fn nth(xs: &[f64], i: usize) -> f64 {
    // A documented contract check discharges the parameter-index rule.
    assert!(i < xs.len(), "index out of contract");
    xs[i]
}

pub fn head_or_zero(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or(0.0)
}
