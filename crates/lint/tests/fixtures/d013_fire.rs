//! D013 positive fixture: every schema-drift shape — a typo'd tag
//! constant, an embedded journal tag, a bench unit and an instrument
//! name that all bypass the canonical vocabulary in `dynawave_obs::schema`.

pub const TAG: &str = "dynawave-observ";

pub fn journal_header() -> String {
    format!("{{\"schema\":\"dynawave-campaign v2\",\"run\":1}}")
}

pub fn report(elems: usize) -> String {
    dynawave_bench::bench_json_line_with_unit("bench.fixture", "furlongs", 10, 9, 12, 100, elems)
}

pub fn trace() {
    dynawave_obs::span("simulator.run");
}
