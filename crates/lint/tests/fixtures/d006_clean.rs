//! D006 negative fixture: the word unsafe in strings, comments and doc
//! text must stay silent.

/// Docs may discuss unsafe code without firing.
pub fn describe() -> &'static str {
    // a comment about unsafe { } blocks
    "this string contains unsafe { } but no actual unsafe block"
}
