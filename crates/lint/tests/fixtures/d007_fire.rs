//! D007 positive fixture: direct wall-clock reads. Unlike D004, these
//! fire even in test and example code — timing there belongs behind a
//! `dynawave_obs::Clock` too, so benchmark-ish tests stay deterministic.

pub fn timed() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
