//! D013 positive fixture, serve protocol: a `dynawave-serve` JSON
//! template whose embedded `"kind"` value is not in the canonical
//! request/response vocabulary.

pub fn bad_response_kind(seq: u64) -> String {
    format!("{{\"schema\":\"dynawave-serve\",\"v\":1,\"seq\":{seq},\"kind\":\"okk\"}}")
}
