//! D013 negative fixture: the same shapes speaking the canonical
//! vocabulary, plus near-miss strings that must not be mistaken for tags.

pub const TAG: &str = "dynawave-obs";

pub fn journal_header() -> String {
    format!("{{\"schema\":\"dynawave-campaign v1\",\"run\":1}}")
}

pub fn report(elems: usize) -> String {
    dynawave_bench::bench_json_line_with_unit("bench.fixture", "ratio_x1000", 10, 9, 12, 100, elems)
}

pub fn trace() {
    dynawave_obs::span("sim.fixture_run");
}

pub fn prose() -> &'static str {
    // No hyphenated base word: not a tag, just a sentence.
    "the dynawave toolchain emits schema-tagged lines"
}
