//! D006 positive fixture: unsafe fires anywhere, even inside tests.

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_may_not_use_unsafe() {
        let x = [1u8, 2];
        let first = unsafe { *x.as_ptr() };
        assert_eq!(first, 1);
    }
}
