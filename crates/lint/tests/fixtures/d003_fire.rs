//! D003 positive fixture: comparing floats with ==/!= must fire.

pub fn exact_zero(x: f64) -> bool {
    x == 0.0
}

pub fn not_one(x: f32) -> bool {
    1.0f32 != x
}
