//! D004 positive fixture: wall-clock, sleeping, environment reads and
//! randomized-hash containers must fire in non-harness code.

// Mentioning the Instant type is enough for D004; the `::now()` call
// site itself is D007's territory (see d007_fire.rs).
pub fn wall_clock(t: std::time::Instant) -> std::time::Instant {
    t
}

pub fn nap() {
    std::thread::sleep(core::time::Duration::from_millis(1));
}

pub fn env_read() -> Option<String> {
    std::env::var("SEED").ok()
}

pub fn randomized_iteration() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

pub fn machine_width() -> usize {
    // Capacity probes are machine-dependent: worker counts must come
    // through a documented, explicitly-allowed config entry point.
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub fn thread_identity() -> std::thread::ThreadId {
    std::thread::current().id()
}
