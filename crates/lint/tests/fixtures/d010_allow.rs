//! D010 suppression fixture: an audited allow discharges the panic site,
//! so reachability stops there; a parameter index can be allowed in place.

pub fn api(v: &[f64]) -> f64 {
    inner(v)
}

fn inner(v: &[f64]) -> f64 {
    *v.first().unwrap() // dynalint:allow(D001) -- every caller checks non-empty first
}

pub fn nth(xs: &[f64], i: usize) -> f64 {
    xs[i] // dynalint:allow(D010) -- i is produced by enumerate() over xs
}
