//! D001 positive fixture: unwrap/expect in plain library code must fire.

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn named(v: &[u8]) -> u8 {
    *v.last().expect("non-empty")
}
