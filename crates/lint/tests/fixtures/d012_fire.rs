//! D012 positive fixture: a deliberately misplaced worker pool. Threads,
//! locks and shared mutable state outside the approved modules.

use std::sync::Mutex;

pub static mut SCRATCH: u64 = 0;

pub fn fan_out(jobs: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64);
    let handle = std::thread::spawn(move || jobs.iter().sum::<u64>());
    let part = handle.join().unwrap_or(0);
    let mut guard = match total.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    *guard += part;
    *guard
}
