//! D013 positive fixture, serve instruments: a `serve.`-prefixed
//! instrument name passed to an obs emitter that is not in the closed
//! `SERVE_METRICS` vocabulary (stage prefix alone is not enough for the
//! serve stage).

pub fn record_renamed_counter() {
    dynawave_obs::counter_add("serve.responses.okay", 1);
}
