//! D001 negative fixture: unwrap in strings, comments, doc examples,
//! `#[cfg(test)]` modules and suppressed lines must stay silent.

/// Doc example mentioning `.unwrap()`:
///
/// ```
/// let x: Option<u8> = Some(1);
/// x.unwrap();
/// ```
pub fn in_string() -> &'static str {
    // a comment calling .unwrap() changes nothing
    "code in a string: v.unwrap() and v.expect(\"boom\")"
}

pub fn suppressed(v: &[u8]) -> u8 {
    *v.first().unwrap() // dynalint:allow(D001) -- fixture demonstrating an audited escape hatch
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
