//! D012 suppression fixture: an audited allow admits a one-off escape
//! hatch without widening the approved-module list.

pub fn fan_out(jobs: Vec<u64>) -> u64 {
    // dynalint:allow(D012) -- bounded one-shot helper thread, joined before return
    let handle = std::thread::spawn(move || jobs.iter().sum::<u64>());
    handle.join().unwrap_or(0)
}
