//! D013 suppression fixture: audited allows for deliberate off-schema
//! strings (e.g. fixtures that themselves test the validator).

pub const TAG: &str = "dynawave-observ"; // dynalint:allow(D013) -- negative-test input for obs_validate

pub fn report(elems: usize) -> String {
    // dynalint:allow(D013) -- exercises obs_validate's unknown-unit rejection path
    dynawave_bench::bench_json_line_with_unit("bench.fixture", "furlongs", 10, 9, 12, 100, elems)
}
