//! D011 negative fixture: total_cmp comparators and ordered iteration
//! keep float work deterministic.

use std::collections::BTreeMap;

pub fn rank(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn total(weights: &BTreeMap<u32, f64>) -> f64 {
    // BTreeMap iterates in key order: the reduction is reproducible.
    weights.values().sum()
}

pub fn count_words(names: &[&str]) -> usize {
    // Integer reductions over slices are order-stable anyway.
    names.iter().map(|n| n.len()).sum()
}
