//! D012 negative fixture: the single-threaded shape of the same work.
//! Sequential folds need no containment exemption.

pub fn fan_out(jobs: Vec<u64>) -> u64 {
    jobs.iter().sum()
}

pub fn fold_chunks(jobs: &[u64], chunk: usize) -> u64 {
    jobs.chunks(chunk.max(1)).map(|c| c.iter().sum::<u64>()).sum()
}
