//! D007 negative fixture: timing through the sanctioned clock trait.
//! `TickClock` is deterministic; a wall-clock impl (`WallClock`) lives in
//! the harness crate, behind the same trait.

pub fn ticks() -> u64 {
    let mut clock = dynawave_obs::TickClock::default();
    dynawave_obs::Clock::now(&mut clock)
}

pub fn describe() -> &'static str {
    "strings and comments may say Instant::now() and SystemTime freely"
}
