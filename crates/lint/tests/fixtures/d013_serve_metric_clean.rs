//! D013 negative fixture, serve instruments: catalogued serve metric
//! names, the `stats` request/response kind in a serve template, and a
//! non-emitter call whose serve-shaped literal D013 does not police.

pub fn record_catalogued_instruments(ticks: u64) {
    dynawave_obs::counter_add("serve.responses.ok", 1);
    dynawave_obs::gauge_set("serve.load", 0.5);
    dynawave_obs::marker_with_detail("serve.flight_recorder", "reason=shutdown");
    dynawave_obs::histogram_observe("serve.latency.predict", &[1.0, 4.0], ticks as f64);
}

pub fn stats_request_template(seq: u64) -> String {
    format!("{{\"schema\":\"dynawave-serve\",\"v\":1,\"seq\":{seq},\"kind\":\"stats\"}}")
}

pub fn not_an_emitter(lookup: &dyn Fn(&str) -> u64) -> u64 {
    lookup("serve.responses.renamed_elsewhere")
}
