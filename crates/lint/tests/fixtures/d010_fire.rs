//! D010 positive fixture: a public fn reaching a panic only transitively,
//! plus a public fn indexing its own parameter without a contract.

pub fn api(v: &[f64]) -> f64 {
    inner(v)
}

fn inner(v: &[f64]) -> f64 {
    // Depth-1 from `api`: D001 fires here, D010 fires at `api` with the
    // witness path `api -> inner`.
    *v.first().unwrap()
}

pub fn nth(xs: &[f64], i: usize) -> f64 {
    // No assert contract: out-of-range caller input aborts.
    xs[i]
}
