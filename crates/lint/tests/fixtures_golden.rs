//! Golden-fixture tests: every rule must fire on its positive fixture
//! and stay silent on its negative fixture.

use dynawave_lint::{lint_manifest, lint_rust_source, RuleId};
use std::path::Path;

/// Virtual path that classifies fixtures as plain library code.
const LIB_PATH: &str = "crates/demo/src/lib.rs";

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn rust_rules(name: &str) -> Vec<RuleId> {
    lint_rust_source(LIB_PATH, &fixture(name))
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

fn assert_fires(fired: &[RuleId], rule: RuleId, fixture_name: &str) {
    assert!(
        fired.contains(&rule),
        "{fixture_name}: expected {rule} to fire, got {fired:?}"
    );
    assert!(
        fired.iter().all(|&r| r == rule),
        "{fixture_name}: only {rule} may fire, got {fired:?}"
    );
}

#[test]
fn d001_fires_and_clean() {
    let fired = rust_rules("d001_fire.rs");
    assert_fires(&fired, RuleId::D001, "d001_fire.rs");
    assert_eq!(fired.len(), 2, "one finding per unwrap/expect site");
    assert_eq!(
        rust_rules("d001_clean.rs"),
        [],
        "d001_clean.rs must be silent"
    );
}

#[test]
fn d002_fires_and_clean() {
    let fired = rust_rules("d002_fire.rs");
    assert_fires(&fired, RuleId::D002, "d002_fire.rs");
    assert_eq!(fired.len(), 2, "panic! and todo! each fire");
    assert_eq!(
        rust_rules("d002_clean.rs"),
        [],
        "d002_clean.rs must be silent"
    );
}

#[test]
fn d003_fires_and_clean() {
    let fired = rust_rules("d003_fire.rs");
    assert_fires(&fired, RuleId::D003, "d003_fire.rs");
    assert_eq!(fired.len(), 2, "== and != against float literals");
    assert_eq!(
        rust_rules("d003_clean.rs"),
        [],
        "d003_clean.rs must be silent"
    );
}

#[test]
fn d004_fires_and_clean() {
    let fired = rust_rules("d004_fire.rs");
    assert_fires(&fired, RuleId::D004, "d004_fire.rs");
    assert!(fired.len() >= 4, "clock, sleep, env and HashMap all fire");
    assert_eq!(
        rust_rules("d004_clean.rs"),
        [],
        "d004_clean.rs must be silent"
    );
}

#[test]
fn d004_exempts_harness_crates() {
    let src = fixture("d004_fire.rs");
    assert!(lint_rust_source("crates/bench/src/lib.rs", &src).is_empty());
    assert!(lint_rust_source("crates/testkit/src/gen.rs", &src).is_empty());
}

#[test]
fn d005_fires_and_clean() {
    let fired: Vec<RuleId> = lint_manifest("crates/demo/Cargo.toml", &fixture("d005_fire.toml"))
        .into_iter()
        .map(|f| f.rule)
        .collect();
    assert_fires(&fired, RuleId::D005, "d005_fire.toml");
    assert!(fired.len() >= 3, "serde, rand and the git dep all fire");
    assert!(
        lint_manifest("crates/demo/Cargo.toml", &fixture("d005_clean.toml")).is_empty(),
        "d005_clean.toml must be silent"
    );
}

#[test]
fn d006_fires_and_clean() {
    let fired = rust_rules("d006_fire.rs");
    assert_fires(&fired, RuleId::D006, "d006_fire.rs");
    assert_eq!(
        rust_rules("d006_clean.rs"),
        [],
        "d006_clean.rs must be silent"
    );
}

#[test]
fn d007_fires_and_clean() {
    // D007 applies even where D004 is silent — lint the fixtures under a
    // tests path so the only rule that can fire is the one under test.
    const TEST_PATH: &str = "crates/demo/tests/it.rs";
    let fired: Vec<RuleId> = lint_rust_source(TEST_PATH, &fixture("d007_fire.rs"))
        .into_iter()
        .map(|f| f.rule)
        .collect();
    assert_fires(&fired, RuleId::D007, "d007_fire.rs");
    assert_eq!(
        fired.len(),
        3,
        "one Instant::now call plus two SystemTime mentions"
    );
    assert_eq!(
        lint_rust_source(TEST_PATH, &fixture("d007_clean.rs")),
        [],
        "d007_clean.rs must be silent"
    );
}

#[test]
fn d007_exempts_harness_crates_and_obs_clocks() {
    let src = fixture("d007_fire.rs");
    assert!(lint_rust_source("crates/bench/benches/microbench.rs", &src).is_empty());
    assert!(lint_rust_source("crates/testkit/src/gen.rs", &src).is_empty());
    // The obs clock module is where wall-clock impls are allowed to live;
    // D004 still governs it (it classifies as Lib), but D007 stays quiet.
    assert!(lint_rust_source("crates/obs/src/clock.rs", &src)
        .iter()
        .all(|f| f.rule != RuleId::D007));
}

fn findings_for(name: &str) -> Vec<dynawave_lint::Finding> {
    lint_rust_source(LIB_PATH, &fixture(name))
}

#[test]
fn d010_fires_clean_and_allow() {
    let findings = findings_for("d010_fire.rs");
    let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    // `inner`'s own unwrap is D001; `api` reaching it transitively and
    // `nth` indexing its parameter are each D010.
    assert_eq!(
        rules.iter().filter(|&&r| r == RuleId::D001).count(),
        1,
        "{findings:?}"
    );
    assert_eq!(
        rules.iter().filter(|&&r| r == RuleId::D010).count(),
        2,
        "{findings:?}"
    );
    let witness = findings
        .iter()
        .find(|f| f.message.contains("can reach a panic"))
        .expect("reachability finding present");
    assert!(
        witness.message.contains("api -> inner"),
        "witness path names the chain: {}",
        witness.message
    );
    assert_eq!(rust_rules("d010_clean.rs"), [], "d010_clean.rs");
    assert_eq!(rust_rules("d010_allow.rs"), [], "d010_allow.rs");
}

#[test]
fn d011_fires_clean_and_allow() {
    let fired = rust_rules("d011_fire.rs");
    assert_fires(&fired, RuleId::D011, "d011_fire.rs");
    assert_eq!(fired.len(), 2, "comparator and reduction each fire");
    assert_eq!(rust_rules("d011_clean.rs"), [], "d011_clean.rs");
    assert_eq!(rust_rules("d011_allow.rs"), [], "d011_allow.rs");
}

#[test]
fn d012_fires_clean_and_allow() {
    let fired = rust_rules("d012_fire.rs");
    assert_fires(&fired, RuleId::D012, "d012_fire.rs");
    assert!(
        fired.len() >= 3,
        "the use, the static mut and the spawn each fire: {fired:?}"
    );
    let findings = findings_for("d012_fire.rs");
    assert!(
        findings.iter().any(|f| f.message.contains("thread")),
        "the misplaced spawn is called out: {findings:?}"
    );
    assert_eq!(rust_rules("d012_clean.rs"), [], "d012_clean.rs");
    assert_eq!(rust_rules("d012_allow.rs"), [], "d012_allow.rs");
}

#[test]
fn d012_accepts_containment_modules_verbatim() {
    // The exact source that fires at a library path is accepted inside
    // the approved concurrency modules.
    let src = fixture("d012_fire.rs");
    for approved in [
        "crates/core/src/campaign.rs",
        "crates/testkit/src/stress.rs",
        "crates/obs/src/lib.rs",
    ] {
        assert!(
            lint_rust_source(approved, &src)
                .iter()
                .all(|f| f.rule != RuleId::D012),
            "{approved} is inside the containment boundary"
        );
    }
}

#[test]
fn d013_fires_clean_and_allow() {
    let fired = rust_rules("d013_fire.rs");
    assert_fires(&fired, RuleId::D013, "d013_fire.rs");
    assert_eq!(
        fired.len(),
        4,
        "tag constant, embedded tag, bench unit and instrument name each fire"
    );
    assert_eq!(rust_rules("d013_clean.rs"), [], "d013_clean.rs");
    assert_eq!(rust_rules("d013_allow.rs"), [], "d013_allow.rs");
}

#[test]
fn d013_serve_kind_fires_and_clean() {
    let fired = rust_rules("d013_serve_fire.rs");
    assert_fires(&fired, RuleId::D013, "d013_serve_fire.rs");
    assert_eq!(fired.len(), 1, "only the off-vocabulary kind fires");
    assert_eq!(rust_rules("d013_serve_clean.rs"), [], "d013_serve_clean.rs");
}

#[test]
fn d013_serve_metric_fires_and_clean() {
    let fired = rust_rules("d013_serve_metric_fire.rs");
    assert_fires(&fired, RuleId::D013, "d013_serve_metric_fire.rs");
    assert_eq!(
        fired.len(),
        1,
        "only the uncatalogued serve instrument fires"
    );
    let findings = lint_rust_source(LIB_PATH, &fixture("d013_serve_metric_fire.rs"));
    assert!(
        findings[0].message.contains("SERVE_METRICS"),
        "{}",
        findings[0].message
    );
    assert_eq!(
        rust_rules("d013_serve_metric_clean.rs"),
        [],
        "d013_serve_metric_clean.rs"
    );
}

#[test]
fn findings_carry_clickable_spans() {
    let findings = lint_rust_source(LIB_PATH, &fixture("d001_fire.rs"));
    let first = &findings[0];
    let rendered = first.to_string();
    assert!(
        rendered.starts_with(&format!("{}:{}:{}: D001:", LIB_PATH, first.line, first.col)),
        "expected file:line:col prefix, got {rendered}"
    );
    assert!(first.line > 1, "line numbers are 1-based and past the docs");
}
