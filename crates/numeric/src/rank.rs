//! Rank statistics: ranking with tie handling, Spearman correlation and
//! histograms.
//!
//! Used by the Figure 7 analysis (stability of magnitude-based coefficient
//! rankings across configurations) and by diagnostic tooling.

use crate::NumericError;

/// Assigns fractional ranks (average rank for ties), 1-based, to `data`.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::rank::ranks;
/// assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
/// // Ties share the average of their positions.
/// assert_eq!(ranks(&[1.0, 2.0, 2.0]), vec![1.0, 2.5, 2.5]);
/// ```
pub fn ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| data[a].total_cmp(&data[b])); // dynalint:allow(D010) -- `order` holds 0..n, always in range
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie run [i, j).
        let mut j = i + 1;
        // dynalint:allow(D010) -- `order` holds 0..n, always in range
        while j < n && data[order[j]] == data[order[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1 ..= j
        for &idx in &order[i..j] {
            out[idx] = avg_rank;
        }
        i = j;
    }
    out
}

/// Spearman rank correlation coefficient between two samples.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] when lengths differ and
/// [`NumericError::Empty`] for empty inputs.
pub fn spearman(a: &[f64], b: &[f64]) -> Result<f64, NumericError> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    if a.is_empty() {
        return Err(NumericError::Empty);
    }
    Ok(crate::stats::pearson(&ranks(a), &ranks(b)))
}

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs bins");
        assert!(lo < hi, "invalid histogram range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let bins = self.counts.len();
            let idx = (((v - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
            self.counts[idx.min(bins - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[]), Vec::<f64>::new());
        assert_eq!(ranks(&[3.0]), vec![1.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0]; // nonlinear but monotone
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_errors() {
        assert!(matches!(
            spearman(&[1.0], &[1.0, 2.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
        assert!(matches!(spearman(&[], &[]), Err(NumericError::Empty)));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.5, 9.9, 10.0, -1.0, 11.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 2); // 0.5, 1.5
        assert_eq!(h.counts()[4], 2); // 9.9 and the boundary 10.0
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs bins")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
