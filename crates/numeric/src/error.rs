use std::error::Error;
use std::fmt;

/// Errors produced by numeric routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumericError {
    /// Two operands had incompatible dimensions.
    ///
    /// Carries `(left, right)` shape descriptions for diagnostics.
    DimensionMismatch {
        /// Shape of the left-hand operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right-hand operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// A factorization or solve met a (numerically) singular matrix.
    Singular,
    /// A matrix that must be square was not.
    NotSquare {
        /// Observed shape, `(rows, cols)`.
        shape: (usize, usize),
    },
    /// An input collection was empty where at least one element is required.
    Empty,
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NumericError::Singular => write!(f, "matrix is singular or nearly singular"),
            NumericError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            NumericError::Empty => write!(f, "input collection was empty"),
        }
    }
}

impl Error for NumericError {}
