//! Linear solvers built on the factorizations in [`Matrix`].
//!
//! Every solver consults the deterministic fault-injection hook
//! ([`crate::fault`]) on entry. The hook is inert in production — only the
//! chaos test harness installs a [`crate::fault::FaultPlan`] — but it lets
//! tests force `Singular`, non-finite and early-termination failures at
//! exactly these sites to exercise the recovery ladder above.

use crate::fault::{self, FaultKind, FaultSite};
use crate::{Matrix, NumericError};

/// Resolves an injected fault at a solver site into the solver's
/// failure behavior: `Singular`/`EarlyStop` become errors, `NonFinite`
/// silently yields a NaN solution of length `n` (the caller must
/// sanitize — that is the point of injecting it).
fn injected_outcome(kind: FaultKind, n: usize) -> Result<Vec<f64>, NumericError> {
    match kind {
        FaultKind::Singular => Err(NumericError::Singular),
        FaultKind::EarlyStop => Err(NumericError::Empty),
        FaultKind::NonFinite => Ok(vec![f64::NAN; n]),
    }
}

/// Solves `A x = b` via LU factorization with partial pivoting.
///
/// # Errors
///
/// Propagates [`NumericError::NotSquare`] / [`NumericError::Singular`] from
/// the factorization, and [`NumericError::DimensionMismatch`] if `b` has the
/// wrong length.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::{Matrix, solve};
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = solve::lu_solve(&a, &[3.0, 5.0]).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericError> {
    if let Some(kind) = fault::inject(FaultSite::LuSolve) {
        return injected_outcome(kind, b.len());
    }
    if a.rows() != b.len() {
        return Err(NumericError::DimensionMismatch {
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let (lu, perm) = a.lu()?;
    let n = b.len();
    // Apply permutation, then forward substitution (L has implicit unit diagonal).
    let mut y: Vec<f64> = perm.iter().map(|&p| b[p]).collect(); // dynalint:allow(D010) -- `perm` permutes 0..n and n == b.len()
    for i in 0..n {
        for k in 0..i {
            y[i] -= lu[(i, k)] * y[k];
        }
    }
    // Backward substitution with U.
    let mut x = y;
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            x[i] -= lu[(i, k)] * x[k];
        }
        x[i] /= lu[(i, i)];
    }
    Ok(x)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Propagates factorization errors; [`NumericError::DimensionMismatch`] if
/// `b` has the wrong length.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericError> {
    if let Some(kind) = fault::inject(FaultSite::CholeskySolve) {
        return injected_outcome(kind, b.len());
    }
    if a.rows() != b.len() {
        return Err(NumericError::DimensionMismatch {
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let l = a.cholesky()?;
    let n = b.len();
    // Forward: L y = b.
    let mut y = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            y[i] -= l[(i, k)] * y[k];
        }
        y[i] /= l[(i, i)];
    }
    // Backward: Lᵀ x = y.
    let mut x = y;
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            x[i] -= l[(k, i)] * x[k];
        }
        x[i] /= l[(i, i)];
    }
    Ok(x)
}

/// Ridge (Tikhonov-regularized) least squares:
/// `w = (XᵀX + λI)⁻¹ Xᵀ y`.
///
/// This is the output-weight fit used by the RBF networks: `x` is the
/// `n_samples x n_features` design matrix, `y` the targets and `lambda >= 0`
/// the regularization strength. With `lambda == 0` this degenerates to
/// ordinary least squares and may fail on rank-deficient designs.
///
/// # Errors
///
/// [`NumericError::DimensionMismatch`] if `y.len() != x.rows()`;
/// [`NumericError::Singular`] if the regularized normal matrix is not
/// positive definite; [`NumericError::Empty`] for an empty design.
pub fn ridge_regression(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, NumericError> {
    if let Some(kind) = fault::inject(FaultSite::RidgeSolve) {
        return injected_outcome(kind, x.cols());
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(NumericError::Empty);
    }
    if x.rows() != y.len() {
        return Err(NumericError::DimensionMismatch {
            left: x.shape(),
            right: (y.len(), 1),
        });
    }
    let mut gram = x.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let xty = x.transpose().matvec(y)?;
    // Cholesky is the fast path; fall back to LU when lambda == 0 leaves the
    // normal matrix only semi-definite.
    match cholesky_solve(&gram, &xty) {
        Ok(w) => Ok(w),
        Err(NumericError::Singular) => lu_solve(&gram, &xty),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn lu_solve_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lu_solve(&a, &b).unwrap();
        assert_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn lu_solve_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 5.0]).unwrap();
        assert_close(&x, &[5.0, 2.0], 1e-12);
    }

    #[test]
    fn cholesky_solve_spd() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = [0.5, -1.5];
        let b = a.matvec(&x_true).unwrap();
        let x = cholesky_solve(&a, &b).unwrap();
        assert_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [2.0, 4.0, 6.0];
        let w0 = ridge_regression(&x, &y, 0.0).unwrap();
        let w_big = ridge_regression(&x, &y, 100.0).unwrap();
        assert!((w0[0] - 2.0).abs() < 1e-9);
        assert!(w_big[0] < w0[0]);
        assert!(w_big[0] > 0.0);
    }

    #[test]
    fn ridge_handles_rank_deficiency_with_lambda() {
        // Duplicate column: XtX is singular, but lambda fixes it.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        let w = ridge_regression(&x, &y, 1e-6).unwrap();
        // Symmetry: both columns carry equal weight.
        assert!((w[0] - w[1]).abs() < 1e-6);
        assert!((w[0] + w[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn mismatched_target_length_errors() {
        let x = Matrix::zeros(3, 2);
        assert!(matches!(
            ridge_regression(&x, &[1.0, 2.0], 0.1),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_design_errors() {
        let x = Matrix::zeros(0, 0);
        assert!(matches!(
            ridge_regression(&x, &[], 0.1),
            Err(NumericError::Empty)
        ));
    }

    #[test]
    fn injected_cholesky_fault_falls_back_to_lu_inside_ridge() {
        use crate::fault::{with_plan, FaultKind, FaultPlan, FaultSite};
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [2.0, 4.0, 6.0];
        // Faulting only the Cholesky path exercises ridge's existing
        // Singular → LU fallback: the overall solve still succeeds.
        let plan = FaultPlan::new(11)
            .rate(1.0)
            .targeting(&[FaultSite::CholeskySolve])
            .kinds(&[FaultKind::Singular]);
        let (w, report) = with_plan(plan, || ridge_regression(&x, &y, 1e-9).unwrap());
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert_eq!(report.fired, 1);
    }

    #[test]
    fn injected_ridge_faults_cover_all_kinds() {
        use crate::fault::{with_plan, FaultKind, FaultPlan, FaultSite};
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let y = [1.0, 2.0];
        for (kind, check) in [
            (
                FaultKind::Singular,
                Box::new(|r: Result<Vec<f64>, NumericError>| {
                    matches!(r, Err(NumericError::Singular))
                }) as Box<dyn Fn(Result<Vec<f64>, NumericError>) -> bool>,
            ),
            (
                FaultKind::EarlyStop,
                Box::new(|r| matches!(r, Err(NumericError::Empty))),
            ),
            (
                FaultKind::NonFinite,
                Box::new(|r| matches!(r, Ok(w) if w.iter().all(|v| v.is_nan()))),
            ),
        ] {
            let plan = FaultPlan::new(13)
                .rate(1.0)
                .targeting(&[FaultSite::RidgeSolve])
                .kinds(&[kind]);
            let (r, report) = with_plan(plan, || ridge_regression(&x, &y, 1e-6));
            assert!(check(r), "unexpected outcome for {}", kind.name());
            assert_eq!(report.fired, 1);
        }
    }
}
