//! Dense linear algebra, descriptive statistics and deterministic RNG
//! helpers shared across the `dynawave` workspace.
//!
//! This crate provides the small amount of numerical machinery the
//! wavelet-neural-network models of [Cho, Zhang & Li, MICRO 2007] need:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the usual
//!   arithmetic, plus [`Matrix::cholesky`] and [`Matrix::lu`]
//!   factorizations used for ridge-regularized least squares
//!   ([`solve::ridge_regression`]).
//! * [`stats`] — quantiles, five-number boxplot summaries
//!   ([`stats::BoxplotSummary`]), normalized mean-square error and other
//!   error metrics reported in the paper's evaluation.
//! * [`rng`] — seed-derivation utilities so every component of the
//!   workspace is reproducible from a single experiment seed.
//! * [`fault`] — deterministic fault injection: a seeded [`fault::FaultPlan`]
//!   forces `Singular`/`NaN`/early-termination failures at chosen solver
//!   sites so recovery paths are exercised by tests instead of trusted on
//!   faith. Inert unless a plan is explicitly installed.
//!
//! # Examples
//!
//! ```
//! use dynawave_numeric::{Matrix, solve};
//!
//! // Fit y = 2 x with a tiny ridge penalty.
//! let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
//! let y = [2.0, 4.0, 6.0];
//! let w = solve::ridge_regression(&x, &y, 1e-9).expect("well-conditioned");
//! assert!((w[0] - 2.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fault;
mod matrix;
pub mod rank;
pub mod rng;
pub mod solve;
pub mod stats;

pub use error::NumericError;
pub use matrix::Matrix;
