//! Descriptive statistics and the error metrics used in the paper's
//! evaluation (normalized MSE, directional symmetry inputs, boxplot
//! summaries).

use crate::NumericError;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance; `0.0` for slices shorter than two elements.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` is clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for an empty slice.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, NumericError> {
    if data.is_empty() {
        return Err(NumericError::Empty);
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). See [`quantile`].
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn quantile_sorted(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (data.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        data[lo]
    } else {
        let frac = pos - lo as f64;
        data[lo] * (1.0 - frac) + data[hi] * frac
    }
}

/// Median shorthand for [`quantile`] at `q = 0.5`.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for an empty slice.
pub fn median(data: &[f64]) -> Result<f64, NumericError> {
    quantile(data, 0.5)
}

/// Five-number summary plus outliers, matching the boxplot convention the
/// paper uses for Figure 8: hinges at the quartiles, whiskers at the most
/// extreme data point within `1.5 * IQR` of the hinge, everything beyond
/// marked as an outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// Lower whisker end.
    pub whisker_low: f64,
    /// First quartile (lower hinge).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (upper hinge).
    pub q3: f64,
    /// Upper whisker end.
    pub whisker_high: f64,
    /// Arithmetic mean (the diamond-marker series in Figure 8).
    pub mean: f64,
    /// Points beyond the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxplotSummary {
    /// Computes the summary of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Empty`] for an empty slice.
    pub fn from_data(data: &[f64]) -> Result<Self, NumericError> {
        if data.is_empty() {
            return Err(NumericError::Empty);
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&v| v >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1]);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&v| v < lo_fence || v > hi_fence)
            .collect();
        Ok(BoxplotSummary {
            whisker_low,
            q1,
            median: med,
            q3,
            whisker_high,
            mean: mean(data),
            outliers,
        })
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Plain mean-square error `mean((a - b)^2)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mse length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64
}

/// Normalized mean-square error in percent:
/// `100 * mean((a-p)^2) / mean(a^2)`.
///
/// This is the "MSE (%)" scale the paper reports (single-digit medians,
/// ~30 % worst cases). Returns `0.0` when the actual signal is identically
/// zero and the prediction matches, `100.0` when the actual signal is zero
/// but the prediction is not.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nmse_percent(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "nmse length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let err = mse(actual, predicted);
    let power = actual.iter().map(|a| a * a).sum::<f64>() / actual.len() as f64;
    if power <= f64::EPSILON {
        if err <= f64::EPSILON {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * err / power
    }
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mae length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm). Useful for per-interval statistics where storing every
/// sample is wasteful.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::stats::Welford;
/// let mut w = Welford::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     w.push(v);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns [`NumericError::Empty`] for an empty slice.
pub fn min_max(data: &[f64]) -> Result<(f64, f64), NumericError> {
    if data.is_empty() {
        return Err(NumericError::Empty);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Ok((lo, hi))
}

/// Pearson correlation coefficient; `0.0` if either side has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&d), 2.5);
        assert!((variance(&d) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&d, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&d, 0.5).unwrap(), 2.5);
        assert!((quantile(&d, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_is_error() {
        assert!(matches!(quantile(&[], 0.5), Err(NumericError::Empty)));
    }

    #[test]
    fn boxplot_marks_outliers() {
        let mut data = vec![10.0; 20];
        data.extend_from_slice(&[10.5, 9.5, 50.0]); // 50.0 is far outside
        let s = BoxplotSummary::from_data(&data).unwrap();
        // IQR is zero here, so everything off 10.0 is fenced out.
        assert_eq!(s.outliers, vec![9.5, 10.5, 50.0]);
        assert_eq!(s.whisker_high, 10.0);
        assert_eq!(s.median, 10.0);
    }

    #[test]
    fn boxplot_single_point() {
        let s = BoxplotSummary::from_data(&[3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 3.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn mse_and_nmse() {
        let a = [2.0, 2.0];
        let p = [1.0, 3.0];
        assert_eq!(mse(&a, &p), 1.0);
        assert!((nmse_percent(&a, &p) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn nmse_zero_signal() {
        assert_eq!(nmse_percent(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(nmse_percent(&[0.0, 0.0], &[1.0, 1.0]), 100.0);
    }

    #[test]
    fn perfect_prediction_zero_error() {
        let a = [0.4, 0.8, 1.2];
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(nmse_percent(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn welford_matches_batch_stats() {
        let data = [3.1, -2.0, 5.5, 0.0, 8.25, -1.5];
        let mut w = Welford::new();
        w.extend(data.iter().copied());
        assert!((w.mean() - mean(&data)).abs() < 1e-12);
        assert!((w.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(w.min(), Some(-2.0));
        assert_eq!(w.max(), Some(8.25));
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_merge_equals_concat() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut wa = Welford::new();
        wa.extend(a.iter().copied());
        let mut wb = Welford::new();
        wb.extend(b.iter().copied());
        wa.merge(&wb);
        let all = [1.0, 2.0, 3.0, 10.0, 20.0];
        assert!((wa.mean() - mean(&all)).abs() < 1e-12);
        assert!((wa.variance() - variance(&all)).abs() < 1e-12);
        // Merging into empty copies the other side.
        let mut we = Welford::new();
        we.merge(&wa);
        assert_eq!(we.count(), 5);
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
        assert!(min_max(&[]).is_err());
    }
}
