//! Deterministic random-number generation and seed derivation.
//!
//! Every stochastic component in the workspace (workload generation, Latin
//! hypercube sampling, network initialization) derives its RNG seed from an
//! experiment-level seed plus a domain label, so a whole experiment is
//! reproducible from a single `u64` while distinct components remain
//! decorrelated.
//!
//! [`Rng`] is the workspace's only generator: a xoshiro256++ core seeded by
//! SplitMix64 expansion, with the handful of distribution helpers the
//! workspace needs (uniform ints/floats, exponential and geometric draws,
//! Fisher–Yates shuffling). It is self-contained — no external crates — so
//! the whole workspace builds and tests offline, and its stream is stable
//! across platforms and releases.

/// Derives a sub-seed from `(seed, label)` using the SplitMix64 finalizer
/// over an FNV-1a hash of the label.
///
/// The derivation is stable across platforms and releases: it never depends
/// on `std::hash` internals.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::rng::derive_seed;
/// let a = derive_seed(42, "workload/gcc");
/// let b = derive_seed(42, "workload/mcf");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "workload/gcc"));
/// ```
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
    }
    splitmix64(seed ^ h)
}

/// One step of the SplitMix64 generator/finalizer.
///
/// Useful directly for cheap stateless hashing of counters into
/// well-distributed 64-bit values.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `u64` to a uniform `f64` in `[0, 1)`.
pub fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0,1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// The 256-bit state is expanded from a `u64` seed with SplitMix64, per the
/// reference implementation's recommendation, so nearby seeds still yield
/// decorrelated streams. Statistical quality is ample for the workspace's
/// synthetic-workload and sampling needs; the generator is **not**
/// cryptographically secure.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::rng::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        // Canonical SplitMix64 stream: state += gamma, output = finalizer.
        // [`splitmix64`] performs both, so only the state bump is explicit.
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(state);
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Creates a generator seeded by [`derive_seed`]`(seed, label)`.
    ///
    /// This is the idiomatic way to give each workspace component its own
    /// decorrelated stream under a single experiment seed.
    pub fn from_label(seed: u64, label: &str) -> Self {
        Rng::new(derive_seed(seed, label))
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit; xoshiro256++'s low bits are its weakest.
        self.next_u64() >> 63 == 1
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool_with(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[lo, hi)` (half-open, like `rand::gen_range`).
    ///
    /// Uses Lemire-style rejection so the draw is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty integer range {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling on the top bits: draw until the value falls in
        // the largest multiple of `span` below 2^64.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "non-finite range bound");
        assert!(lo < hi, "empty float range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Exponential draw with the given `mean` (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Guard the log: next_f64 can return exactly 0.
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Geometric draw: number of Bernoulli(`p`) trials up to and including
    /// the first success (support `1, 2, 3, ...`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
        if p >= 1.0 {
            return 1;
        }
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        1 + (u.ln() / (1.0 - p).ln()) as u64
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws an index in `[0, cdf.len())` from a cumulative weight vector
    /// (non-decreasing, last element = total weight).
    ///
    /// # Panics
    ///
    /// Panics if `cdf` is empty.
    pub fn index_from_cdf(&mut self, cdf: &[f64]) -> usize {
        assert!(!cdf.is_empty(), "empty CDF");
        let total = cdf[cdf.len() - 1];
        let r = self.next_f64() * total;
        match cdf.binary_search_by(|w| w.total_cmp(&r)) {
            Ok(i) | Err(i) => i.min(cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(7, "a"), derive_seed(7, "a"));
        assert_ne!(derive_seed(7, "a"), derive_seed(7, "b"));
        assert_ne!(derive_seed(7, "a"), derive_seed(8, "a"));
    }

    #[test]
    fn splitmix_changes_value() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let v = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_f64_covers_span() {
        let vals: Vec<f64> = (0..1000u64).map(|i| unit_f64(splitmix64(i))).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(0.0, f64::max);
        assert!(lo < 0.05);
        assert!(hi > 0.95);
    }

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(9);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(9);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(10);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_mean_and_variance_in_tolerance() {
        // U(0,1): mean 1/2, variance 1/12. With n = 100k draws the sample
        // mean has sigma ~ 0.0009, so +-0.01 is a >10-sigma band.
        let mut rng = Rng::new(123);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn range_u64_is_in_bounds_and_covers_all_values() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range_u64(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let v = rng.range_f64(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // And it actually permutes: 100 elements staying put has
        // probability 1/100!.
        assert_ne!(data, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_moves_mass_roughly_uniformly() {
        // Position 0 should receive each element about equally often.
        let mut counts = [0u32; 8];
        for seed in 0..4000u64 {
            let mut rng = Rng::new(seed);
            let mut data: Vec<usize> = (0..8).collect();
            rng.shuffle(&mut data);
            counts[data[0]] += 1;
        }
        for &c in &counts {
            // Expected 500 per bin; binomial sigma ~ 21.
            assert!((350..650).contains(&c), "biased shuffle: {counts:?}");
        }
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        // Streams derived from the same experiment seed under different
        // labels must not be shifted copies of each other; check that the
        // fraction of equal leading draws is nil and that pairwise
        // correlation of uniforms is small.
        let mut a = Rng::from_label(42, "workload/gcc");
        let mut b = Rng::from_label(42, "workload/mcf");
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..n).map(|_| b.next_f64()).collect();
        assert!(xs.iter().zip(&ys).filter(|(x, y)| x == y).count() == 0);
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n as f64;
        let corr = cov / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "correlated streams: r = {corr}");
    }

    #[test]
    fn exponential_mean_tracks_parameter() {
        let mut rng = Rng::new(3);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "exponential mean {mean}");
    }

    #[test]
    fn geometric_mean_tracks_parameter() {
        let mut rng = Rng::new(3);
        let p = 0.25;
        let n = 50_000;
        let mean = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.1, "geometric mean {mean}");
        assert_eq!(rng.geometric(1.0), 1);
    }

    #[test]
    fn next_bool_is_roughly_fair() {
        let mut rng = Rng::new(17);
        let heads = (0..10_000).filter(|_| rng.next_bool()).count();
        assert!((4700..5300).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn index_from_cdf_respects_weights() {
        let mut rng = Rng::new(29);
        // Weights 1, 3 -> CDF [1, 4]; index 1 should win ~75%.
        let hits = (0..10_000)
            .filter(|_| rng.index_from_cdf(&[1.0, 4.0]) == 1)
            .count();
        assert!((7200..7800).contains(&hits), "weighted draw off: {hits}");
    }

    #[test]
    fn xoshiro_reference_vectors() {
        // xoshiro256++ outputs under SplitMix64 seeding, matching the
        // Blackman & Vigna reference implementation (and rand_xoshiro's
        // seed_from_u64). Pins the stream bit-for-bit so every seeded
        // trace in the workspace survives refactors unchanged.
        let mut rng = Rng::new(0);
        assert_eq!(
            [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64()
            ],
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
        let mut rng = Rng::new(42);
        assert_eq!(
            [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64()
            ],
            [
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
            ]
        );
    }
}
