//! Deterministic seed derivation.
//!
//! Every stochastic component in the workspace (workload generation, Latin
//! hypercube sampling, network initialization) derives its RNG seed from an
//! experiment-level seed plus a domain label, so a whole experiment is
//! reproducible from a single `u64` while distinct components remain
//! decorrelated.

/// Derives a sub-seed from `(seed, label)` using the SplitMix64 finalizer
/// over an FNV-1a hash of the label.
///
/// The derivation is stable across platforms and releases: it never depends
/// on `std::hash` internals.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::rng::derive_seed;
/// let a = derive_seed(42, "workload/gcc");
/// let b = derive_seed(42, "workload/mcf");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "workload/gcc"));
/// ```
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
    }
    splitmix64(seed ^ h)
}

/// One step of the SplitMix64 generator/finalizer.
///
/// Useful directly for cheap stateless hashing of counters into
/// well-distributed 64-bit values.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `u64` to a uniform `f64` in `[0, 1)`.
pub fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0,1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(7, "a"), derive_seed(7, "a"));
        assert_ne!(derive_seed(7, "a"), derive_seed(7, "b"));
        assert_ne!(derive_seed(7, "a"), derive_seed(8, "a"));
    }

    #[test]
    fn splitmix_changes_value() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let v = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_f64_covers_span() {
        let vals: Vec<f64> = (0..1000u64).map(|i| unit_f64(splitmix64(i))).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(0.0, f64::max);
        assert!(lo < 0.05);
        assert!(hi > 0.95);
    }
}
