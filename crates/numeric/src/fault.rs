//! Deterministic fault injection for robustness testing.
//!
//! Long DSE campaigns must survive singular Gram matrices, non-finite
//! solver output and early termination instead of discarding hours of
//! simulation. The recovery machinery that guarantees this (escalating
//! ridge retries, model fallbacks, checkpoint/resume in
//! `dynawave-core`) is only trustworthy if tests can *force* those
//! faults on demand. This module is that forcing function: a seeded
//! [`FaultPlan`] installed for the duration of a closure makes chosen
//! fault sites in `dynawave_numeric::solve` and `dynawave-neural` fail
//! deterministically.
//!
//! The hook is **inert by default**: production code never installs a
//! plan, [`inject`] returns `None` on its fast path, and every draw is
//! driven by the in-tree xoshiro RNG, so a chaos run is exactly as
//! reproducible as a healthy one (workspace rule D004).
//!
//! # Examples
//!
//! ```
//! use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
//! use dynawave_numeric::{solve, Matrix, NumericError};
//!
//! let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
//! let plan = FaultPlan::new(7)
//!     .rate(1.0)
//!     .targeting(&[FaultSite::RidgeSolve])
//!     .kinds(&[FaultKind::Singular]);
//! let (result, report) = fault::with_plan(plan, || {
//!     solve::ridge_regression(&x, &[2.0, 4.0, 6.0], 1e-9)
//! });
//! assert_eq!(result, Err(NumericError::Singular));
//! assert_eq!(report.fired, 1);
//! // Outside `with_plan` the same call succeeds: the hook is inert.
//! assert!(solve::ridge_regression(&x, &[2.0, 4.0, 6.0], 1e-9).is_ok());
//! ```

use crate::rng::Rng;
use std::cell::RefCell;

/// What kind of failure an armed site produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The routine reports a (numerically) singular system.
    Singular,
    /// The routine silently returns non-finite (`NaN`) output — the
    /// nastiest real-world failure mode, exercising downstream
    /// sanitization rather than error propagation.
    NonFinite,
    /// The routine terminates early without producing a solution.
    EarlyStop,
}

impl FaultKind {
    /// Every kind, in stable order.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::Singular,
        FaultKind::NonFinite,
        FaultKind::EarlyStop,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Singular => "singular",
            FaultKind::NonFinite => "non-finite",
            FaultKind::EarlyStop => "early-stop",
        }
    }
}

/// Where in the numeric/model stack a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// [`crate::solve::cholesky_solve`] — exercises the existing
    /// Cholesky→LU fallback inside ridge regression.
    CholeskySolve,
    /// [`crate::solve::lu_solve`].
    LuSolve,
    /// [`crate::solve::ridge_regression`] as a whole.
    RidgeSolve,
    /// The RBF output-weight fit in `dynawave-neural`.
    RbfWeightFit,
    /// A single RBF network prediction in `dynawave-neural`.
    RbfPredict,
    /// An append to the serve response journal in `dynawave-core` —
    /// exercises the daemon's degraded-durability path (keep serving,
    /// stop journaling) rather than a numeric fallback.
    JournalAppend,
}

impl FaultSite {
    /// Every site, in stable order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::CholeskySolve,
        FaultSite::LuSolve,
        FaultSite::RidgeSolve,
        FaultSite::RbfWeightFit,
        FaultSite::RbfPredict,
        FaultSite::JournalAppend,
    ];

    /// Every site that can fail a numeric model fit (the solver stack),
    /// excluding I/O sites. Chaos runs that must stay byte-comparable
    /// between live serving and journal replay scope their plans to this
    /// list so the fault-RNG consultation sequence is mode-independent.
    pub const SOLVER_SITES: [FaultSite; 5] = [
        FaultSite::CholeskySolve,
        FaultSite::LuSolve,
        FaultSite::RidgeSolve,
        FaultSite::RbfWeightFit,
        FaultSite::RbfPredict,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CholeskySolve => "cholesky-solve",
            FaultSite::LuSolve => "lu-solve",
            FaultSite::RidgeSolve => "ridge-solve",
            FaultSite::RbfWeightFit => "rbf-weight-fit",
            FaultSite::RbfPredict => "rbf-predict",
            FaultSite::JournalAppend => "journal-append",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::CholeskySolve => 0,
            FaultSite::LuSolve => 1,
            FaultSite::RidgeSolve => 2,
            FaultSite::RbfWeightFit => 3,
            FaultSite::RbfPredict => 4,
            FaultSite::JournalAppend => 5,
        }
    }
}

const SITE_COUNT: usize = FaultSite::ALL.len();

/// A seeded, deterministic schedule of injected faults.
///
/// Build with [`FaultPlan::new`] and the builder methods, then install
/// it with [`with_plan`]. Each consultation of an enabled site draws
/// from the plan's xoshiro stream; identical plans over identical
/// workloads fire identically.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: Rng,
    rate: f64,
    kinds: Vec<FaultKind>,
    sites: [bool; SITE_COUNT],
    budget: Option<u64>,
    armed: [u64; SITE_COUNT],
    fired: [u64; SITE_COUNT],
}

impl FaultPlan {
    /// A plan that never fires (rate 0) targeting every site with every
    /// fault kind. Chain [`FaultPlan::rate`] to arm it.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: Rng::from_label(seed, "fault-plan"),
            rate: 0.0,
            kinds: FaultKind::ALL.to_vec(),
            sites: [true; SITE_COUNT],
            budget: None,
            armed: [0; SITE_COUNT],
            fired: [0; SITE_COUNT],
        }
    }

    /// Sets the per-consultation firing probability, clamped to `[0, 1]`.
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Restricts injection to the given sites (empty leaves all enabled).
    pub fn targeting(mut self, sites: &[FaultSite]) -> Self {
        if !sites.is_empty() {
            self.sites = [false; SITE_COUNT];
            for s in sites {
                self.sites[s.index()] = true;
            }
        }
        self
    }

    /// Restricts the kinds of faults produced (empty keeps all kinds).
    pub fn kinds(mut self, kinds: &[FaultKind]) -> Self {
        if !kinds.is_empty() {
            self.kinds = kinds.to_vec();
        }
        self
    }

    /// Caps the total number of faults the plan will ever fire.
    pub fn budget(mut self, max_faults: u64) -> Self {
        self.budget = Some(max_faults);
        self
    }

    /// Consults the plan at `site`; `Some(kind)` means "fail here, now".
    fn draw(&mut self, site: FaultSite) -> Option<FaultKind> {
        if !self.sites[site.index()] {
            return None;
        }
        self.armed[site.index()] += 1;
        if let Some(max) = self.budget {
            if self.fired.iter().sum::<u64>() >= max {
                return None;
            }
        }
        // Draw unconditionally so the stream position depends only on how
        // often enabled sites are consulted, not on earlier outcomes.
        let roll = self.rng.next_f64();
        let pick = self.rng.range_usize(0, self.kinds.len());
        if roll < self.rate {
            self.fired[site.index()] += 1;
            Some(self.kinds[pick])
        } else {
            None
        }
    }

    /// Snapshot of how often each site was consulted and fired.
    pub fn report(&self) -> FaultReport {
        let mut per_site = [(FaultSite::CholeskySolve, 0u64, 0u64); SITE_COUNT];
        for (slot, site) in per_site.iter_mut().zip(FaultSite::ALL) {
            *slot = (site, self.armed[site.index()], self.fired[site.index()]);
        }
        FaultReport {
            armed: self.armed.iter().sum(),
            fired: self.fired.iter().sum(),
            per_site,
        }
    }
}

/// Tally of a fault plan's activity, returned by [`with_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Total consultations of enabled sites.
    pub armed: u64,
    /// Total faults actually injected.
    pub fired: u64,
    /// Per-site `(site, armed, fired)` tallies in [`FaultSite::ALL`] order.
    pub per_site: [(FaultSite, u64, u64); SITE_COUNT],
}

impl Default for FaultSite {
    fn default() -> Self {
        FaultSite::CholeskySolve
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

/// Consults the thread's installed plan at `site`.
///
/// Returns `None` (no fault) when no plan is installed — the
/// always-compiled production path. Library code calls this at each
/// fault site; only the test/bench harness ever installs a plan.
pub fn inject(site: FaultSite) -> Option<FaultKind> {
    ACTIVE.with(|active| active.borrow_mut().as_mut().and_then(|p| p.draw(site)))
}

/// `true` while a plan is installed on this thread.
pub fn active() -> bool {
    ACTIVE.with(|active| active.borrow().is_some())
}

/// Installs `plan` for the duration of `f` on the current thread,
/// returning `f`'s result and the plan's final [`FaultReport`].
///
/// The plan is uninstalled when `f` returns **or panics**, so a failing
/// chaos test cannot leak faults into subsequent tests on the same
/// thread. Nested installation replaces the outer plan for the inner
/// scope and restores it afterwards.
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> (R, FaultReport) {
    struct Restore(Option<FaultPlan>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|active| *active.borrow_mut() = self.0.take());
        }
    }
    let previous = ACTIVE.with(|active| active.borrow_mut().replace(plan));
    let restore = Restore(previous);
    let out = f();
    let report = ACTIVE.with(|active| {
        active
            .borrow()
            .as_ref()
            .map(FaultPlan::report)
            .unwrap_or_default()
    });
    drop(restore);
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_plan() {
        assert!(!active());
        assert_eq!(inject(FaultSite::RidgeSolve), None);
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let always = FaultPlan::new(1).rate(1.0);
        let ((), report) = with_plan(always, || {
            for _ in 0..10 {
                assert!(inject(FaultSite::LuSolve).is_some());
            }
        });
        assert_eq!(report.fired, 10);
        assert_eq!(report.armed, 10);

        let never = FaultPlan::new(1); // default rate 0
        let ((), report) = with_plan(never, || {
            for _ in 0..10 {
                assert!(inject(FaultSite::LuSolve).is_none());
            }
        });
        assert_eq!(report.fired, 0);
        assert_eq!(report.armed, 10);
    }

    #[test]
    fn identical_plans_fire_identically() {
        let run = || {
            with_plan(FaultPlan::new(99).rate(0.5), || {
                FaultSite::ALL
                    .iter()
                    .cycle()
                    .take(64)
                    .map(|&s| inject(s))
                    .collect::<Vec<_>>()
            })
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b, "seeded plans must be deterministic");
        assert_eq!(ra, rb);
        assert!(ra.fired > 0, "rate 0.5 over 64 draws should fire");
        assert!(ra.fired < ra.armed);
    }

    #[test]
    fn targeting_limits_sites() {
        let plan = FaultPlan::new(3)
            .rate(1.0)
            .targeting(&[FaultSite::RbfPredict]);
        let ((), report) = with_plan(plan, || {
            assert_eq!(inject(FaultSite::RidgeSolve), None);
            assert!(inject(FaultSite::RbfPredict).is_some());
        });
        assert_eq!(report.fired, 1);
        // Untargeted consultations are not even counted as armed.
        assert_eq!(report.armed, 1);
    }

    #[test]
    fn kinds_are_respected() {
        let plan = FaultPlan::new(5).rate(1.0).kinds(&[FaultKind::NonFinite]);
        let ((), _) = with_plan(plan, || {
            for _ in 0..8 {
                assert_eq!(inject(FaultSite::RbfWeightFit), Some(FaultKind::NonFinite));
            }
        });
    }

    #[test]
    fn budget_caps_total_faults() {
        let plan = FaultPlan::new(8).rate(1.0).budget(3);
        let ((), report) = with_plan(plan, || {
            let fired = (0..10)
                .filter(|_| inject(FaultSite::CholeskySolve).is_some())
                .count();
            assert_eq!(fired, 3);
        });
        assert_eq!(report.fired, 3);
        assert_eq!(report.armed, 10);
    }

    #[test]
    fn plan_is_uninstalled_after_scope_even_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_plan(FaultPlan::new(1).rate(1.0), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!active(), "panic must not leak the installed plan");
        assert_eq!(inject(FaultSite::RidgeSolve), None);
    }

    #[test]
    fn nested_plans_restore_the_outer_one() {
        let ((), _) = with_plan(FaultPlan::new(1).rate(1.0), || {
            assert!(inject(FaultSite::LuSolve).is_some());
            let ((), inner) = with_plan(FaultPlan::new(2), || {
                assert_eq!(inject(FaultSite::LuSolve), None);
            });
            assert_eq!(inner.fired, 0);
            // Outer plan is back.
            assert!(inject(FaultSite::LuSolve).is_some());
        });
        assert!(!active());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultSite::RbfWeightFit.name(), "rbf-weight-fit");
        assert_eq!(FaultSite::JournalAppend.name(), "journal-append");
        assert_eq!(FaultKind::EarlyStop.name(), "early-stop");
        assert_eq!(FaultSite::ALL.len(), SITE_COUNT);
        assert!(!FaultSite::SOLVER_SITES.contains(&FaultSite::JournalAppend));
        assert_eq!(FaultSite::SOLVER_SITES.len() + 1, SITE_COUNT);
    }
}
