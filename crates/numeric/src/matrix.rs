use crate::NumericError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is deliberately small: it supports exactly the operations the
/// regression machinery in `dynawave-neural` needs (products, transposes,
/// Cholesky and LU factorization) with validated dimensions.
///
/// # Examples
///
/// ```
/// use dynawave_numeric::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            // dynalint:allow(D001) -- documented panic: overflowing usize is unrecoverable
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericError> {
        if data.len() != rows * cols {
            return Err(NumericError::DimensionMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {} out of bounds ({})", c, self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the flat row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, NumericError> {
        if self.cols != rhs.rows {
            return Err(NumericError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // dynalint:allow(D003) -- exact-zero skip: only bit-zero entries may be elided
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] unless
    /// `self.cols() == v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, NumericError> {
        if self.cols != v.len() {
            return Err(NumericError::DimensionMismatch {
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Gram matrix `selfᵀ * self`, computed without forming the transpose.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                // dynalint:allow(D003) -- exact-zero skip: only bit-zero entries may be elided
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// Returns lower-triangular `L` with `L * Lᵀ == self`.
    ///
    /// # Errors
    ///
    /// [`NumericError::NotSquare`] if the matrix is not square and
    /// [`NumericError::Singular`] if it is not (numerically) positive
    /// definite.
    pub fn cholesky(&self) -> Result<Matrix, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NumericError::Singular);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// LU factorization with partial pivoting.
    ///
    /// Returns `(lu, perm)` where `lu` packs both factors and `perm` is the
    /// row permutation. Intended to be consumed by
    /// [`solve::lu_solve`](crate::solve::lu_solve).
    ///
    /// # Errors
    ///
    /// [`NumericError::NotSquare`] or [`NumericError::Singular`].
    pub fn lu(&self) -> Result<(Matrix, Vec<usize>), NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Pivot selection.
            let mut pivot = col;
            let mut max = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > max {
                    max = v;
                    pivot = r;
                }
            }
            if max < 1e-300 || !max.is_finite() {
                return Err(NumericError::Singular);
            }
            if pivot != col {
                perm.swap(pivot, col);
                for c in 0..n {
                    let a = lu[(pivot, c)];
                    let b = lu[(col, c)];
                    lu[(pivot, c)] = b;
                    lu[(col, c)] = a;
                }
            }
            let d = lu[(col, col)];
            for r in (col + 1)..n {
                let f = lu[(r, col)] / d;
                lu[(r, col)] = f;
                for c in (col + 1)..n {
                    let upd = lu[(col, c)] * f;
                    lu[(r, c)] -= upd;
                }
            }
        }
        Ok((lu, perm))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = [3.0, 4.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![-1.0, 8.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let explicit = a.transpose().matmul(&a).unwrap();
        let gram = a.gram();
        assert!((&explicit - &gram).frobenius_norm() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!((&a - &back).frobenius_norm() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(a.cholesky().unwrap_err(), NumericError::Singular);
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.cholesky(), Err(NumericError::NotSquare { .. })));
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.lu().unwrap_err(), NumericError::Singular);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
