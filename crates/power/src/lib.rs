//! Wattch-style structure-level processor power model.
//!
//! The paper's power numbers come from a Wattch-based model layered on
//! SimpleScalar \[18\]. This crate reproduces that structure: every
//! microarchitectural block has a **per-access dynamic energy** that scales
//! with its configured size, idle blocks burn a fraction of their active
//! power (Wattch's *cc3* conditional-clocking style), and a leakage term
//! scales with total capacity. Per-interval activity counters from
//! `dynawave-sim` turn directly into watts.
//!
//! Energy scaling uses `E(size) = E_ref * (size / ref_size)^0.7` — the
//! sub-linear growth of array access energy with capacity (bitlines grow,
//! but decoders amortize), adequate for design-space *trends*, which is
//! all the predictive models consume.
//!
//! # Examples
//!
//! ```
//! use dynawave_power::PowerModel;
//! use dynawave_sim::{MachineConfig, SimOptions, Simulator};
//! use dynawave_workloads::Benchmark;
//!
//! let config = MachineConfig::baseline();
//! let run = Simulator::new(config.clone()).run(
//!     Benchmark::Crafty,
//!     &SimOptions { samples: 4, interval_instructions: 2000, seed: 7 },
//! );
//! let model = PowerModel::new(&config);
//! let watts = model.power_trace(&run);
//! assert_eq!(watts.len(), 4);
//! assert!(watts.iter().all(|&w| w > 1.0 && w < 500.0));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use dynawave_sim::{IntervalStats, MachineConfig, RunResult};

/// Clock frequency assumed when converting energy to power (Hz).
pub const CLOCK_HZ: f64 = 3.0e9;

/// Fraction of active power an idle, conditionally-clocked structure still
/// burns (Wattch cc3).
pub const IDLE_FACTOR: f64 = 0.10;

/// Per-structure dynamic power breakdown for one interval, in watts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Fetch engine: I-cache, ITLB, branch predictor, BTB.
    pub fetch: f64,
    /// Decode/rename path.
    pub rename: f64,
    /// Issue queue (wakeup + select).
    pub issue_queue: f64,
    /// Reorder buffer.
    pub rob: f64,
    /// Load/store queue.
    pub lsq: f64,
    /// Register files.
    pub regfile: f64,
    /// Integer and FP functional units.
    pub alu: f64,
    /// L1 data cache and DTLB.
    pub dcache: f64,
    /// Unified L2.
    pub l2: f64,
    /// Global clock tree (scales with machine width).
    pub clock: f64,
    /// Static leakage (scales with total capacity).
    pub leakage: f64,
}

impl PowerBreakdown {
    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.fetch
            + self.rename
            + self.issue_queue
            + self.rob
            + self.lsq
            + self.regfile
            + self.alu
            + self.dcache
            + self.l2
            + self.clock
            + self.leakage
    }
}

/// Reference per-access energies (nJ) at the baseline structure sizes.
/// Tuned so the Table 1 baseline lands in the paper's 20–140 W band.
#[derive(Debug, Clone, PartialEq)]
struct UnitEnergies {
    fetch: f64,
    rename: f64,
    iq: f64,
    rob: f64,
    lsq: f64,
    regfile: f64,
    int_alu: f64,
    int_mul: f64,
    fp_alu: f64,
    fp_mul: f64,
    dl1: f64,
    dl1_miss: f64,
    l2: f64,
    l2_miss: f64,
    clock_per_width: f64,
}

impl Default for UnitEnergies {
    fn default() -> Self {
        UnitEnergies {
            fetch: 1.8,
            rename: 1.2,
            iq: 2.4,
            rob: 1.6,
            lsq: 1.1,
            regfile: 1.4,
            int_alu: 0.9,
            int_mul: 2.6,
            fp_alu: 2.2,
            fp_mul: 3.4,
            dl1: 2.0,
            dl1_miss: 6.0,
            l2: 7.0,
            l2_miss: 24.0,
            clock_per_width: 1.1,
        }
    }
}

/// Sub-linear array-energy scaling.
fn scale(size: f64, reference: f64) -> f64 {
    (size / reference).powf(0.7)
}

/// A Wattch-style power model bound to one machine configuration.
#[derive(Debug, Clone)]
pub struct PowerModel {
    config: MachineConfig,
    e: UnitEnergies,
    leakage_watts: f64,
}

impl PowerModel {
    /// Builds the model for `config`, scaling unit energies from the
    /// baseline reference sizes.
    pub fn new(config: &MachineConfig) -> Self {
        let base = MachineConfig::baseline();
        let mut e = UnitEnergies::default();
        e.fetch *= scale(f64::from(config.il1_kb), f64::from(base.il1_kb))
            * scale(f64::from(config.fetch_width), f64::from(base.fetch_width)).max(0.5);
        e.rename *= scale(f64::from(config.fetch_width), f64::from(base.fetch_width));
        e.iq *= scale(f64::from(config.iq_size), f64::from(base.iq_size));
        e.rob *= scale(f64::from(config.rob_size), f64::from(base.rob_size));
        e.lsq *= scale(f64::from(config.lsq_size), f64::from(base.lsq_size));
        e.dl1 *= scale(f64::from(config.dl1_kb), f64::from(base.dl1_kb));
        e.l2 *= scale(f64::from(config.l2_kb), f64::from(base.l2_kb));
        // Leakage: proportional to total on-chip SRAM capacity.
        let capacity_kb = f64::from(config.il1_kb)
            + f64::from(config.dl1_kb)
            + f64::from(config.l2_kb)
            + f64::from(config.iq_size + config.rob_size + config.lsq_size) / 8.0;
        let base_capacity = f64::from(base.il1_kb)
            + f64::from(base.dl1_kb)
            + f64::from(base.l2_kb)
            + f64::from(base.iq_size + base.rob_size + base.lsq_size) / 8.0;
        let leakage_watts = 9.0 * capacity_kb / base_capacity;
        PowerModel {
            config: config.clone(),
            e,
            leakage_watts,
        }
    }

    /// The bound configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Computes the per-structure power breakdown for one interval.
    ///
    /// Returns all-zero power for an empty interval (`cycles == 0`).
    pub fn interval_power(&self, s: &IntervalStats) -> PowerBreakdown {
        if s.cycles == 0 {
            return PowerBreakdown::default();
        }
        let cycles = s.cycles as f64;
        let seconds = cycles / CLOCK_HZ;
        let e = &self.e;
        let w = f64::from(self.config.fetch_width);
        // Watts for `count` activations of energy `energy_nj`, with
        // `slots` per-cycle opportunities idling at IDLE_FACTOR.
        let watts = |count: f64, energy_nj: f64, slots: f64| -> f64 {
            let active = count * energy_nj;
            let idle = (slots * cycles - count).max(0.0) * energy_nj * IDLE_FACTOR;
            (active + idle) * 1e-9 / seconds
        };
        let instr = s.instructions as f64;
        let fetch = watts(s.il1_accesses as f64 + s.branches as f64, e.fetch, w * 0.5);
        let rename = watts(instr, e.rename, w);
        let issue_queue = watts(s.issues as f64 + s.iq_occupancy / cycles, e.iq, w);
        let rob = watts(instr * 2.0, e.rob, w * 2.0); // insert + commit
        let lsq = watts(s.dl1_accesses as f64, e.lsq, w * 0.5);
        let regfile = watts(instr * 2.5, e.regfile, w * 3.0); // 2 reads + write
        let alu = watts(
            s.int_alu_ops as f64,
            e.int_alu,
            f64::from(self.config.int_alu_units),
        ) + watts(
            s.int_mul_ops as f64,
            e.int_mul,
            f64::from(self.config.int_mul_units),
        ) + watts(
            s.fp_alu_ops as f64,
            e.fp_alu,
            f64::from(self.config.fp_alu_units),
        ) + watts(
            s.fp_mul_ops as f64,
            e.fp_mul,
            f64::from(self.config.fp_mul_units),
        );
        let dcache = watts(
            s.dl1_accesses as f64,
            e.dl1,
            f64::from(self.config.dl1_ports),
        ) + watts(s.dl1_misses as f64, e.dl1_miss, 1.0);
        let l2 = watts(s.l2_accesses as f64, e.l2, 1.0) + watts(s.l2_misses as f64, e.l2_miss, 0.5);
        // The clock tree burns every cycle, scaled by machine width.
        let clock = e.clock_per_width * w * cycles * 1e-9 / seconds;
        PowerBreakdown {
            fetch,
            rename,
            issue_queue,
            rob,
            lsq,
            regfile,
            alu,
            dcache,
            l2,
            clock,
            leakage: self.leakage_watts,
        }
    }

    /// Total-watts trace: one value per interval of `run`.
    pub fn power_trace(&self, run: &RunResult) -> Vec<f64> {
        run.intervals
            .iter()
            .map(|i| self.interval_power(i).total())
            .collect()
    }

    /// Cycle-weighted average power over the whole run, in watts.
    pub fn average_power(&self, run: &RunResult) -> f64 {
        let total_cycles: u64 = run.intervals.iter().map(|i| i.cycles).sum();
        if total_cycles == 0 {
            return 0.0;
        }
        run.intervals
            .iter()
            .map(|i| self.interval_power(i).total() * i.cycles as f64)
            .sum::<f64>()
            / total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynawave_sim::{SimOptions, Simulator};
    use dynawave_workloads::Benchmark;

    fn run(cfg: &MachineConfig, b: Benchmark) -> RunResult {
        Simulator::new(cfg.clone()).run(
            b,
            &SimOptions {
                samples: 8,
                interval_instructions: 2000,
                seed: 3,
            },
        )
    }

    #[test]
    fn baseline_power_in_paper_band() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        for b in [Benchmark::Crafty, Benchmark::Mcf, Benchmark::Swim] {
            let avg = model.average_power(&run(&cfg, b));
            assert!(avg > 10.0 && avg < 200.0, "{b}: {avg} W");
        }
    }

    #[test]
    fn wider_machine_burns_more() {
        let mut narrow = MachineConfig::baseline();
        narrow.fetch_width = 2;
        let wide = MachineConfig::baseline();
        let p_narrow = PowerModel::new(&narrow).average_power(&run(&narrow, Benchmark::Eon));
        let p_wide = PowerModel::new(&wide).average_power(&run(&wide, Benchmark::Eon));
        assert!(p_wide > p_narrow, "{p_wide} <= {p_narrow}");
    }

    #[test]
    fn bigger_l2_leaks_more() {
        let mut small = MachineConfig::baseline();
        small.l2_kb = 256;
        let m_small = PowerModel::new(&small);
        let m_big = PowerModel::new(&MachineConfig::baseline());
        assert!(m_big.leakage_watts > m_small.leakage_watts);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let r = run(&cfg, Benchmark::Gcc);
        let b = model.interval_power(&r.intervals[0]);
        let manual = b.fetch
            + b.rename
            + b.issue_queue
            + b.rob
            + b.lsq
            + b.regfile
            + b.alu
            + b.dcache
            + b.l2
            + b.clock
            + b.leakage;
        assert!((b.total() - manual).abs() < 1e-12);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn empty_interval_is_zero() {
        let model = PowerModel::new(&MachineConfig::baseline());
        let b = model.interval_power(&IntervalStats::default());
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn busier_interval_burns_more_power() {
        let model = PowerModel::new(&MachineConfig::baseline());
        let mut idle = IntervalStats {
            instructions: 100,
            cycles: 1000,
            ..IntervalStats::default()
        };
        let mut busy = IntervalStats {
            instructions: 4000,
            issues: 4000,
            int_alu_ops: 3000,
            dl1_accesses: 1000,
            cycles: 1000,
            ..IntervalStats::default()
        };
        idle.issues = 100;
        busy.il1_accesses = 500;
        let p_idle = model.interval_power(&idle).total();
        let p_busy = model.interval_power(&busy).total();
        assert!(p_busy > p_idle, "{p_busy} <= {p_idle}");
    }

    #[test]
    fn leakage_is_time_independent() {
        let model = PowerModel::new(&MachineConfig::baseline());
        let mk = |cycles| IntervalStats {
            instructions: 10,
            cycles,
            ..IntervalStats::default()
        };
        let short = model.interval_power(&mk(100));
        let long = model.interval_power(&mk(100_000));
        assert!((short.leakage - long.leakage).abs() < 1e-12);
    }

    #[test]
    fn misses_cost_energy() {
        let model = PowerModel::new(&MachineConfig::baseline());
        let base = IntervalStats {
            instructions: 1000,
            cycles: 1000,
            dl1_accesses: 300,
            ..IntervalStats::default()
        };
        let mut missy = base.clone();
        missy.dl1_misses = 200;
        missy.l2_accesses = 200;
        missy.l2_misses = 100;
        assert!(model.interval_power(&missy).total() > model.interval_power(&base).total());
    }

    #[test]
    fn average_power_weighs_by_cycles() {
        let model = PowerModel::new(&MachineConfig::baseline());
        let hot = IntervalStats {
            instructions: 8000,
            issues: 8000,
            int_alu_ops: 6000,
            cycles: 1000,
            ..IntervalStats::default()
        };
        let cold = IntervalStats {
            instructions: 100,
            cycles: 9000,
            ..IntervalStats::default()
        };
        let run = RunResult {
            config: MachineConfig::baseline(),
            intervals: vec![hot.clone(), cold.clone()],
        };
        let avg = model.average_power(&run);
        let p_hot = model.interval_power(&hot).total();
        let p_cold = model.interval_power(&cold).total();
        // Cold dominates by cycle weight.
        assert!(avg < (p_hot + p_cold) / 2.0);
        assert!(avg > p_cold);
    }

    #[test]
    fn power_varies_over_intervals() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let watts = model.power_trace(&run(&cfg, Benchmark::Crafty));
        let lo = watts.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = watts.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi > lo * 1.02, "flat power trace {lo}..{hi}");
    }
}
