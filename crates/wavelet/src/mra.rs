//! Multiresolution analysis: per-scale views and time-domain components.
//!
//! The flat coefficient layout of a [`Decomposition`] is
//! `[approximation, detail level L-1 (coarsest), ..., detail level 0
//! (finest)]`. This module names those bands ([`Band`]), exposes their
//! index ranges, and synthesizes the classic MRA picture: one time-domain
//! component per band whose sum reconstructs the original signal — the
//! "coordinated scales of time and frequency" the paper leans on (§2.3).

use crate::coeffs::Decomposition;
use crate::transform::waverec;
use crate::WaveletError;

/// One frequency band of a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// The single overall-approximation coefficient (signal mean for
    /// Haar).
    Approximation,
    /// Detail band `d`, where `d = 0` is the **coarsest** detail (one
    /// coefficient) and each next band doubles in resolution and size.
    Detail(usize),
}

impl Band {
    /// All bands of a decomposition with `levels` levels, coarse to fine.
    pub fn all(levels: usize) -> Vec<Band> {
        let mut bands = vec![Band::Approximation];
        bands.extend((0..levels).map(Band::Detail));
        bands
    }

    /// The index range this band occupies in the flat coefficient vector
    /// of a decomposition with `levels` levels.
    ///
    /// # Panics
    ///
    /// Panics if the band does not exist at this depth.
    pub fn range(self, levels: usize) -> std::ops::Range<usize> {
        match self {
            Band::Approximation => 0..1,
            Band::Detail(d) => {
                assert!(
                    d < levels,
                    "detail band {d} does not exist at {levels} levels"
                );
                let start = 1usize << d;
                start..start * 2
            }
        }
    }

    /// Number of coefficients in the band.
    pub fn len(self, levels: usize) -> usize {
        self.range(levels).len()
    }

    /// `true` when the band holds no coefficients (never, in practice).
    pub fn is_empty(self, levels: usize) -> bool {
        self.range(levels).is_empty()
    }
}

/// Borrow of one band's coefficients.
///
/// # Panics
///
/// Panics if the band does not exist in `dec`.
pub fn band_coeffs(dec: &Decomposition, band: Band) -> &[f64] {
    &dec.as_slice()[band.range(dec.levels())] // dynalint:allow(D010) -- documented panic: the band must exist in `dec`
}

/// Synthesizes the time-domain component carried by one band: the inverse
/// transform of the decomposition with every *other* coefficient zeroed.
///
/// # Errors
///
/// Propagates reconstruction errors.
pub fn band_component(dec: &Decomposition, band: Band) -> Result<Vec<f64>, WaveletError> {
    let keep: Vec<usize> = band.range(dec.levels()).collect();
    waverec(&dec.retain_indices(&keep))
}

/// The full multiresolution analysis: one component per band, coarse to
/// fine. The element-wise sum of all components equals the original
/// signal (to rounding).
///
/// # Errors
///
/// Propagates reconstruction errors.
pub fn mra(dec: &Decomposition) -> Result<Vec<Vec<f64>>, WaveletError> {
    Band::all(dec.levels())
        .into_iter()
        .map(|b| band_component(dec, b))
        .collect()
}

/// Per-band energy fractions, coarse to fine; sums to 1 for a non-zero
/// signal.
pub fn band_energy_fractions(dec: &Decomposition) -> Vec<f64> {
    let total = dec.energy();
    Band::all(dec.levels())
        .into_iter()
        .map(|b| {
            let e: f64 = band_coeffs(dec, b).iter().map(|c| c * c).sum();
            if total > 0.0 {
                e / total
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wavedec, Wavelet};

    fn sample_signal() -> Vec<f64> {
        (0..32)
            .map(|i| {
                let t = i as f64 / 32.0;
                2.0 + (std::f64::consts::TAU * 2.0 * t).sin()
                    + 0.2 * (std::f64::consts::TAU * 8.0 * t).sin()
            })
            .collect()
    }

    #[test]
    fn band_ranges_tile_the_vector() {
        let levels = 5; // 32 coefficients
        let mut covered = vec![false; 32];
        for band in Band::all(levels) {
            for i in band.range(levels) {
                assert!(!covered[i], "index {i} covered twice");
                covered[i] = true;
            }
            assert!(!band.is_empty(levels));
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn components_sum_to_signal() {
        let x = sample_signal();
        for wavelet in [Wavelet::Haar, Wavelet::Daubechies4] {
            let dec = wavedec(&x, wavelet).unwrap();
            let parts = mra(&dec).unwrap();
            assert_eq!(parts.len(), dec.levels() + 1);
            for (i, &v) in x.iter().enumerate() {
                let sum: f64 = parts.iter().map(|p| p[i]).sum();
                assert!((sum - v).abs() < 1e-9, "at {i}: {sum} vs {v}");
            }
        }
    }

    #[test]
    fn approximation_component_is_constant_for_haar() {
        let x = sample_signal();
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let approx = band_component(&dec, Band::Approximation).unwrap();
        let first = approx[0];
        assert!(approx.iter().all(|&v| (v - first).abs() < 1e-12));
    }

    #[test]
    fn energy_fractions_sum_to_one() {
        let x = sample_signal();
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let fracs = band_energy_fractions(&dec);
        let total: f64 = fracs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(fracs.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn slow_sine_lives_in_coarse_bands() {
        // A 2-cycle sine over 32 samples concentrates in the coarse
        // details, not the finest band.
        let x: Vec<f64> = (0..32)
            .map(|i| (std::f64::consts::TAU * 2.0 * i as f64 / 32.0).sin())
            .collect();
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let fracs = band_energy_fractions(&dec);
        // Period-16 oscillation lives at scales >= 4 samples: the
        // approximation plus the first five bands (up to 16 coefficients).
        let coarse: f64 = fracs[..5].iter().sum();
        let finest = fracs[fracs.len() - 1];
        assert!(coarse > 0.8, "coarse fraction {coarse}");
        assert!(finest < 0.2, "finest fraction {finest}");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn out_of_range_band_panics() {
        let _ = Band::Detail(9).range(3);
    }
}
