//! Coefficient-selection schemes and rank analysis.
//!
//! The paper keeps only a small set of *important* wavelet coefficients and
//! approximates the rest with zero (§3). Two schemes are compared:
//!
//! * **magnitude-based** — keep the `k` coefficients with the largest
//!   absolute value ([`top_k_by_magnitude`]); the paper's choice because it
//!   always outperforms
//! * **order-based** — keep the first `k` coefficients in the natural
//!   coarse-to-fine layout ([`first_k`]).
//!
//! Magnitude selection is only usable for *prediction* if the identity of
//! the important coefficients is stable across the design space. Figure 7
//! visualizes this via per-configuration rank maps; [`magnitude_ranks`] and
//! [`rank_stability`] reproduce that analysis.

/// Indices of the `k` largest-magnitude coefficients, in decreasing
/// magnitude order. Ties break toward the lower index, which keeps the
/// selection deterministic.
///
/// `k` is clamped to `coeffs.len()`.
///
/// # Examples
///
/// ```
/// use dynawave_wavelet::select::top_k_by_magnitude;
/// let idx = top_k_by_magnitude(&[0.1, -9.0, 3.0, 0.0], 2);
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k_by_magnitude(coeffs: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<(usize, f64)> = coeffs.iter().map(|c| c.abs()).enumerate().collect();
    order.sort_by(|(ai, am), (bi, bm)| bm.total_cmp(am).then(ai.cmp(bi)));
    order.truncate(k.min(coeffs.len()));
    order.into_iter().map(|(i, _)| i).collect()
}

/// Indices `0..k` — the order-based scheme (approximation plus the
/// coarsest details first).
///
/// `k` is clamped to `len`.
pub fn first_k(len: usize, k: usize) -> Vec<usize> {
    (0..k.min(len)).collect()
}

/// Magnitude rank of every coefficient: `ranks[i] == 0` means coefficient
/// `i` has the largest absolute value.
///
/// This is one row of the paper's Figure 7 color map.
pub fn magnitude_ranks(coeffs: &[f64]) -> Vec<usize> {
    let order = top_k_by_magnitude(coeffs, coeffs.len());
    let mut ranks = vec![0usize; coeffs.len()];
    for (rank, &idx) in order.iter().enumerate() {
        ranks[idx] = rank;
    }
    ranks
}

/// Average Jaccard overlap of the top-`k` index sets across configurations.
///
/// Returns a value in `[0, 1]`; `1.0` means the same `k` coefficients are
/// the most significant at every configuration (the property Figure 7
/// demonstrates for gcc). Returns `0.0` when fewer than two rank maps are
/// supplied.
///
/// # Panics
///
/// Panics if the coefficient vectors have differing lengths.
pub fn rank_stability(coeff_sets: &[Vec<f64>], k: usize) -> f64 {
    if coeff_sets.len() < 2 {
        return 0.0;
    }
    let len = coeff_sets[0].len();
    let tops: Vec<Vec<usize>> = coeff_sets
        .iter()
        .map(|c| {
            assert_eq!(c.len(), len, "coefficient vectors differ in length");
            let mut t = top_k_by_magnitude(c, k);
            t.sort_unstable();
            t
        })
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..tops.len() {
        for j in (i + 1)..tops.len() {
            total += jaccard(&tops[i], &tops[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Jaccard similarity of two sorted index sets.
fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Fraction of total signal energy captured by the given coefficient
/// subset. `1.0` when the subset reproduces the signal exactly.
///
/// Returns `1.0` for a zero-energy signal (nothing to capture).
pub fn energy_captured(coeffs: &[f64], keep: &[usize]) -> f64 {
    let total: f64 = coeffs.iter().map(|c| c * c).sum();
    if total <= f64::EPSILON {
        return 1.0;
    }
    let kept: f64 = keep
        .iter()
        .filter_map(|&i| coeffs.get(i))
        .map(|c| c * c)
        .sum();
    kept / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_magnitude() {
        let c = [1.0, -5.0, 3.0, -2.0];
        assert_eq!(top_k_by_magnitude(&c, 3), vec![1, 2, 3]);
        assert_eq!(top_k_by_magnitude(&c, 10), vec![1, 2, 3, 0]);
        assert!(top_k_by_magnitude(&c, 0).is_empty());
    }

    #[test]
    fn top_k_tie_breaks_low_index() {
        let c = [2.0, -2.0, 2.0];
        assert_eq!(top_k_by_magnitude(&c, 2), vec![0, 1]);
    }

    #[test]
    fn first_k_clamps() {
        assert_eq!(first_k(4, 2), vec![0, 1]);
        assert_eq!(first_k(2, 5), vec![0, 1]);
    }

    #[test]
    fn ranks_invert_order() {
        let c = [0.5, 4.0, -2.0];
        let r = magnitude_ranks(&c);
        assert_eq!(r, vec![2, 0, 1]);
    }

    #[test]
    fn stability_of_identical_sets_is_one() {
        let sets = vec![vec![5.0, 1.0, 0.1, 0.0], vec![4.0, 2.0, 0.2, 0.05]];
        assert!((rank_stability(&sets, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stability_of_disjoint_sets_is_zero() {
        let sets = vec![vec![5.0, 4.0, 0.0, 0.0], vec![0.0, 0.0, 5.0, 4.0]];
        assert_eq!(rank_stability(&sets, 2), 0.0);
    }

    #[test]
    fn stability_single_set_is_zero() {
        assert_eq!(rank_stability(&[vec![1.0]], 1), 0.0);
    }

    #[test]
    fn energy_capture_bounds() {
        let c = [3.0, 4.0]; // energies 9, 16
        assert!((energy_captured(&c, &[1]) - 16.0 / 25.0).abs() < 1e-12);
        assert_eq!(energy_captured(&c, &[0, 1]), 1.0);
        assert_eq!(energy_captured(&[0.0, 0.0], &[]), 1.0);
    }
}
