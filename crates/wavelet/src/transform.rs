//! Single- and multi-level discrete wavelet transforms.

use crate::coeffs::Decomposition;
use crate::WaveletError;

/// A mother wavelet (analysis/synthesis filter pair).
///
/// * [`Wavelet::Haar`] uses the paper's average/half-difference convention
///   from §2.1: approximations are pairwise *averages* and details are half
///   the pairwise *differences*, so the level-0 approximation is the overall
///   mean of the trace. This matches the worked example of Figure 2
///   literally.
/// * [`Wavelet::Daubechies4`] is the orthonormal 4-tap Daubechies filter
///   with periodic boundary extension, provided for the mother-wavelet
///   ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Wavelet {
    /// Haar wavelet, average/half-difference convention (paper default).
    #[default]
    Haar,
    /// Daubechies 4-tap orthonormal wavelet, periodic extension.
    Daubechies4,
}

impl Wavelet {
    /// Shortest input a single analysis step accepts.
    pub fn min_len(self) -> usize {
        2
    }

    /// Stable lowercase name (`"haar"` / `"db4"`).
    pub fn name(self) -> &'static str {
        match self {
            Wavelet::Haar => "haar",
            Wavelet::Daubechies4 => "db4",
        }
    }
}

impl std::fmt::Display for Wavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const SQRT3: f64 = 1.732_050_807_568_877_2;

/// Daubechies-4 scaling (low-pass) filter taps.
fn db4_lo() -> [f64; 4] {
    let d = 4.0 * std::f64::consts::SQRT_2;
    [
        (1.0 + SQRT3) / d,
        (3.0 + SQRT3) / d,
        (3.0 - SQRT3) / d,
        (1.0 - SQRT3) / d,
    ]
}

/// One level of the forward transform.
///
/// Returns `(approximation, detail)`, each half the input length.
///
/// # Errors
///
/// [`WaveletError::BadLength`] if the input length is zero or odd.
///
/// # Examples
///
/// ```
/// use dynawave_wavelet::{dwt, Wavelet};
/// let (a, d) = dwt(&[3.0, 4.0, 20.0, 25.0], Wavelet::Haar).unwrap();
/// assert_eq!(a, vec![3.5, 22.5]);
/// assert_eq!(d, vec![-0.5, -2.5]);
/// ```
pub fn dwt(data: &[f64], wavelet: Wavelet) -> Result<(Vec<f64>, Vec<f64>), WaveletError> {
    if data.is_empty() || data.len() % 2 != 0 {
        return Err(WaveletError::BadLength {
            len: data.len(),
            requirement: "single-level DWT needs an even, non-zero length",
        });
    }
    let half = data.len() / 2;
    let mut approx = Vec::with_capacity(half);
    let mut detail = Vec::with_capacity(half);
    match wavelet {
        Wavelet::Haar => {
            for pair in data.chunks_exact(2) {
                let (a, b) = (pair[0], pair[1]);
                approx.push((a + b) / 2.0);
                detail.push((a - b) / 2.0);
            }
        }
        Wavelet::Daubechies4 => {
            let lo = db4_lo();
            // Quadrature mirror: hi[i] = (-1)^i * lo[3 - i].
            let hi = [lo[3], -lo[2], lo[1], -lo[0]];
            let n = data.len();
            for k in 0..half {
                let mut s = 0.0;
                let mut d = 0.0;
                for (i, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
                    let x = data[(2 * k + i) % n]; // dynalint:allow(D010) -- % n keeps the periodic extension in range
                    s += l * x;
                    d += h * x;
                }
                approx.push(s);
                detail.push(d);
            }
        }
    }
    Ok((approx, detail))
}

/// One level of the inverse transform.
///
/// # Errors
///
/// [`WaveletError::CoefficientMismatch`] if the approximation and detail
/// vectors differ in length, [`WaveletError::BadLength`] if they are empty.
pub fn idwt(approx: &[f64], detail: &[f64], wavelet: Wavelet) -> Result<Vec<f64>, WaveletError> {
    if approx.len() != detail.len() {
        return Err(WaveletError::CoefficientMismatch {
            expected: approx.len(),
            got: detail.len(),
        });
    }
    if approx.is_empty() {
        return Err(WaveletError::BadLength {
            len: 0,
            requirement: "inverse DWT needs at least one coefficient per band",
        });
    }
    let n = approx.len() * 2;
    let mut out = vec![0.0; n];
    match wavelet {
        Wavelet::Haar => {
            for (k, (&a, &d)) in approx.iter().zip(detail).enumerate() {
                out[2 * k] = a + d;
                out[2 * k + 1] = a - d;
            }
        }
        Wavelet::Daubechies4 => {
            let lo = db4_lo();
            let hi = [lo[3], -lo[2], lo[1], -lo[0]];
            for (k, (&a, &d)) in approx.iter().zip(detail).enumerate() {
                for i in 0..4 {
                    let pos = (2 * k + i) % n;
                    out[pos] += lo[i] * a + hi[i] * d;
                }
            }
        }
    }
    Ok(out)
}

/// Full multi-level decomposition down to a single approximation
/// coefficient (Haar) or the shortest even length (db4).
///
/// The resulting [`Decomposition`] stores coefficients as
/// `[approximation, coarsest detail, ..., finest detail]` — overall average
/// first, then details in order of increasing resolution (paper Figure 2).
///
/// # Errors
///
/// [`WaveletError::BadLength`] unless the input length is a power of two
/// (and at least 2).
///
/// # Examples
///
/// ```
/// use dynawave_wavelet::{wavedec, waverec, Wavelet};
/// let x = [3.0, 4.0, 20.0, 25.0, 15.0, 5.0, 20.0, 3.0];
/// let dec = wavedec(&x, Wavelet::Haar).unwrap();
/// let back = waverec(&dec).unwrap();
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
pub fn wavedec(data: &[f64], wavelet: Wavelet) -> Result<Decomposition, WaveletError> {
    let _span = dynawave_obs::span("wavelet.wavedec");
    let n = data.len();
    if n < 2 || !n.is_power_of_two() {
        return Err(WaveletError::BadLength {
            len: n,
            requirement: "full decomposition needs a power-of-two length >= 2",
        });
    }
    let mut details: Vec<Vec<f64>> = Vec::new();
    let mut approx = data.to_vec();
    while approx.len() >= 2 {
        let (a, d) = dwt(&approx, wavelet)?;
        details.push(d);
        approx = a;
    }
    // coefficients: [A, D_coarsest..D_finest]
    let mut coeffs = approx; // final approximation (length 1)
    for d in details.iter().rev() {
        coeffs.extend_from_slice(d);
    }
    debug_assert_eq!(coeffs.len(), n);
    Ok(Decomposition::new(coeffs, n, wavelet))
}

/// Inverse of [`wavedec`]: reconstructs the time-domain signal.
///
/// # Errors
///
/// [`WaveletError::CoefficientMismatch`] if the decomposition's coefficient
/// count does not match its recorded signal length (possible after manual
/// editing via [`Decomposition::coeffs_mut`] only if the vector was
/// resized).
pub fn waverec(dec: &Decomposition) -> Result<Vec<f64>, WaveletError> {
    let _span = dynawave_obs::span("wavelet.waverec");
    let n = dec.len();
    let coeffs = dec.as_slice();
    if coeffs.len() != n {
        return Err(WaveletError::CoefficientMismatch {
            expected: n,
            got: coeffs.len(),
        });
    }
    // Rebuild from [A | D_coarsest | ... | D_finest].
    let mut approx = vec![coeffs[0]];
    let mut offset = 1;
    while approx.len() < n {
        let dlen = approx.len();
        let d = &coeffs[offset..offset + dlen];
        approx = idwt(&approx, d, dec.wavelet())?;
        offset += dlen;
    }
    Ok(approx)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: [f64; 8] = [3.0, 4.0, 20.0, 25.0, 15.0, 5.0, 20.0, 3.0];

    #[test]
    fn haar_single_level_matches_paper() {
        let (a, d) = dwt(&FIG2, Wavelet::Haar).unwrap();
        assert_eq!(a, vec![3.5, 22.5, 10.0, 11.5]);
        assert_eq!(d, vec![-0.5, -2.5, 5.0, 8.5]);
    }

    #[test]
    fn haar_full_decomposition_matches_figure2() {
        let dec = wavedec(&FIG2, Wavelet::Haar).unwrap();
        let c = dec.as_slice();
        let expected = [11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5.0, 8.5];
        for (g, e) in c.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn haar_roundtrip() {
        let dec = wavedec(&FIG2, Wavelet::Haar).unwrap();
        let back = waverec(&dec).unwrap();
        for (a, b) in FIG2.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn db4_single_level_roundtrip() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let (a, d) = dwt(&x, Wavelet::Daubechies4).unwrap();
        let back = idwt(&a, &d, Wavelet::Daubechies4).unwrap();
        for (u, v) in x.iter().zip(&back) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn db4_full_roundtrip() {
        let x: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.3).cos() * (i as f64 * 0.05).exp())
            .collect();
        let dec = wavedec(&x, Wavelet::Daubechies4).unwrap();
        let back = waverec(&dec).unwrap();
        for (u, v) in x.iter().zip(&back) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn dwt_rejects_odd_length() {
        assert!(matches!(
            dwt(&[1.0, 2.0, 3.0], Wavelet::Haar),
            Err(WaveletError::BadLength { .. })
        ));
        assert!(matches!(
            dwt(&[], Wavelet::Haar),
            Err(WaveletError::BadLength { .. })
        ));
    }

    #[test]
    fn wavedec_rejects_non_power_of_two() {
        let x = vec![0.0; 12];
        assert!(matches!(
            wavedec(&x, Wavelet::Haar),
            Err(WaveletError::BadLength { .. })
        ));
    }

    #[test]
    fn idwt_rejects_mismatched_bands() {
        assert!(matches!(
            idwt(&[1.0, 2.0], &[1.0], Wavelet::Haar),
            Err(WaveletError::CoefficientMismatch { .. })
        ));
    }

    #[test]
    fn first_coefficient_is_signal_mean_for_haar() {
        let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        assert!((dec.as_slice()[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn wavelet_display_names() {
        assert_eq!(Wavelet::Haar.to_string(), "haar");
        assert_eq!(Wavelet::Daubechies4.to_string(), "db4");
    }
}
