use std::error::Error;
use std::fmt;

/// Errors produced by wavelet routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaveletError {
    /// The input length is not supported by the requested transform.
    ///
    /// Single-level transforms need an even, non-zero length; full
    /// decompositions need a power of two.
    BadLength {
        /// Observed input length.
        len: usize,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// A coefficient vector does not match the decomposition it claims to
    /// come from.
    CoefficientMismatch {
        /// Expected number of coefficients.
        expected: usize,
        /// Observed number of coefficients.
        got: usize,
    },
}

impl fmt::Display for WaveletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveletError::BadLength { len, requirement } => {
                write!(f, "unsupported input length {len}: {requirement}")
            }
            WaveletError::CoefficientMismatch { expected, got } => {
                write!(
                    f,
                    "coefficient count mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl Error for WaveletError {}
