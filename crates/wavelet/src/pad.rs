//! Padding helpers for non-power-of-two signals.
//!
//! [`wavedec`](crate::wavedec) requires power-of-two lengths. Real trace
//! collection sometimes produces odd lengths (aborted runs, trimmed
//! warm-up); these helpers extend a signal to the next power of two,
//! decompose it, and recover the original span after reconstruction.

use crate::coeffs::Decomposition;
use crate::transform::{wavedec, Wavelet};
use crate::WaveletError;

/// How padded samples are synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PadMode {
    /// Repeat the final sample (good default for plateau-like dynamics).
    #[default]
    Edge,
    /// Mirror the tail of the signal.
    Reflect,
    /// Fill with the signal mean.
    Mean,
}

/// Pads `signal` to the next power of two (at least 2).
///
/// Returns the padded copy; the caller keeps the original length for
/// [`unpad`].
///
/// # Panics
///
/// Panics if `signal` is empty.
pub fn pad_to_pow2(signal: &[f64], mode: PadMode) -> Vec<f64> {
    assert!(!signal.is_empty(), "cannot pad an empty signal");
    let n = signal.len();
    let target = n.next_power_of_two().max(2);
    let mut out = signal.to_vec();
    let mean = signal.iter().sum::<f64>() / n as f64;
    for i in n..target {
        let v = match mode {
            PadMode::Edge => signal[n - 1],
            PadMode::Reflect => {
                // Mirror around the final sample: ..., s[n-2], s[n-3], ...
                let back = (i - n + 1).min(n - 1);
                signal[n - 1 - back]
            }
            PadMode::Mean => mean,
        };
        out.push(v);
    }
    out
}

/// Truncates a reconstructed signal back to the original length.
pub fn unpad(mut signal: Vec<f64>, original_len: usize) -> Vec<f64> {
    signal.truncate(original_len);
    signal
}

/// Pads and decomposes in one call; returns the decomposition and the
/// original length (for [`unpad`] after reconstruction).
///
/// # Errors
///
/// Propagates decomposition errors (cannot occur for non-empty input).
///
/// # Panics
///
/// Panics if `signal` is empty.
pub fn wavedec_padded(
    signal: &[f64],
    wavelet: Wavelet,
    mode: PadMode,
) -> Result<(Decomposition, usize), WaveletError> {
    let padded = pad_to_pow2(signal, mode);
    Ok((wavedec(&padded, wavelet)?, signal.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waverec;

    #[test]
    fn pads_to_next_power_of_two() {
        assert_eq!(pad_to_pow2(&[1.0], PadMode::Edge).len(), 2);
        assert_eq!(pad_to_pow2(&[1.0, 2.0, 3.0], PadMode::Edge).len(), 4);
        assert_eq!(pad_to_pow2(&[0.0; 8], PadMode::Edge).len(), 8);
        assert_eq!(pad_to_pow2(&[0.0; 9], PadMode::Edge).len(), 16);
    }

    #[test]
    fn edge_mode_repeats_last() {
        let p = pad_to_pow2(&[1.0, 2.0, 5.0], PadMode::Edge);
        assert_eq!(p, vec![1.0, 2.0, 5.0, 5.0]);
    }

    #[test]
    fn reflect_mode_mirrors() {
        let p = pad_to_pow2(&[1.0, 2.0, 3.0, 4.0, 5.0], PadMode::Reflect);
        assert_eq!(p, vec![1.0, 2.0, 3.0, 4.0, 5.0, 4.0, 3.0, 2.0]);
    }

    #[test]
    fn mean_mode_fills_mean() {
        let p = pad_to_pow2(&[2.0, 4.0, 6.0], PadMode::Mean);
        assert_eq!(p[3], 4.0);
    }

    #[test]
    fn padded_roundtrip_recovers_original_span() {
        let signal: Vec<f64> = (0..23).map(|i| (i as f64 * 0.4).sin() + 2.0).collect();
        for mode in [PadMode::Edge, PadMode::Reflect, PadMode::Mean] {
            let (dec, len) = wavedec_padded(&signal, Wavelet::Haar, mode).unwrap();
            let back = unpad(waverec(&dec).unwrap(), len);
            assert_eq!(back.len(), 23);
            for (a, b) in signal.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_signal_panics() {
        let _ = pad_to_pow2(&[], PadMode::Edge);
    }
}
