//! Discrete wavelet transforms and multiresolution analysis for workload
//! dynamics.
//!
//! The MICRO 2007 paper decomposes a sampled workload-dynamics trace (CPI,
//! power or AVF over time) into wavelet coefficients, predicts a small set
//! of *important* coefficients with neural networks, and reconstructs the
//! predicted trace with the inverse transform. This crate provides exactly
//! that machinery:
//!
//! * [`Wavelet`] — the mother-wavelet filter pairs (Haar as in the paper's
//!   §2.1 primer, plus Daubechies-4 for ablation studies).
//! * [`dwt`] / [`idwt`] — single-level analysis/synthesis.
//! * [`wavedec`] / [`waverec`] — full multi-level decomposition to a flat
//!   coefficient vector ordered `[approximation, detail L, detail L-1, ...,
//!   detail 1]`, i.e. overall average first, then details in order of
//!   increasing resolution, matching Figure 2 of the paper.
//! * [`select`] — magnitude- and order-based coefficient selection
//!   (the paper's two schemes) and rank maps (Figure 7).
//! * [`mra`] — per-band views and time-domain components of the
//!   multiresolution analysis.
//! * [`threshold`] — hard/soft coefficient thresholding and
//!   universal-threshold denoising.
//!
//! # Examples
//!
//! Reproducing the paper's Figure 2 Haar example:
//!
//! ```
//! use dynawave_wavelet::{wavedec, Wavelet};
//!
//! let data = [3.0, 4.0, 20.0, 25.0, 15.0, 5.0, 20.0, 3.0];
//! let coeffs = wavedec(&data, Wavelet::Haar).unwrap();
//! // Overall approximation 11.875, then details at coarse-to-fine scales.
//! assert!((coeffs.as_slice()[0] - 11.875).abs() < 1e-12);
//! assert!((coeffs.as_slice()[1] - 1.125).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod coeffs;
mod error;
pub mod mra;
pub mod pad;
pub mod select;
pub mod threshold;
mod transform;

pub use coeffs::Decomposition;
pub use error::WaveletError;
pub use transform::{dwt, idwt, wavedec, waverec, Wavelet};
