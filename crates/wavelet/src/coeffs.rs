use crate::transform::Wavelet;

/// The result of a full multi-level wavelet decomposition.
///
/// Coefficients are stored flat as `[approximation, coarsest detail, ...,
/// finest detail]` — the paper's Figure 2 layout: the single overall
/// average first, then detail coefficients in order of increasing
/// resolution.
///
/// A `Decomposition` can be edited in place (e.g. zeroing unimportant
/// coefficients, or substituting predicted values) and then passed to
/// [`waverec`](crate::waverec) to synthesize a time-domain trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    coeffs: Vec<f64>,
    len: usize,
    wavelet: Wavelet,
}

impl Decomposition {
    pub(crate) fn new(coeffs: Vec<f64>, len: usize, wavelet: Wavelet) -> Self {
        Decomposition {
            coeffs,
            len,
            wavelet,
        }
    }

    /// Builds a decomposition directly from a coefficient vector, as when
    /// coefficients come out of a predictive model instead of
    /// [`wavedec`](crate::wavedec).
    ///
    /// # Panics
    ///
    /// Panics unless `coeffs.len()` is a power of two and at least 2 — the
    /// shape produced by [`wavedec`](crate::wavedec).
    pub fn from_coeffs(coeffs: Vec<f64>, wavelet: Wavelet) -> Self {
        assert!(
            coeffs.len() >= 2 && coeffs.len().is_power_of_two(),
            "coefficient vector length {} is not a power of two >= 2",
            coeffs.len()
        );
        let len = coeffs.len();
        Decomposition {
            coeffs,
            len,
            wavelet,
        }
    }

    /// The original signal length (== the number of coefficients).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the decomposition holds no coefficients.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mother wavelet used for analysis.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// The flat coefficient vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.coeffs
    }

    /// Mutable access for coefficient editing (selection / substitution).
    ///
    /// Do not change the vector's *length*; [`waverec`](crate::waverec)
    /// reports [`CoefficientMismatch`](crate::WaveletError) if the count no
    /// longer matches the recorded signal length.
    pub fn coeffs_mut(&mut self) -> &mut [f64] {
        &mut self.coeffs
    }

    /// Consumes the decomposition and returns the coefficient vector.
    pub fn into_coeffs(self) -> Vec<f64> {
        self.coeffs
    }

    /// The number of decomposition levels (log2 of the length).
    pub fn levels(&self) -> usize {
        self.len.trailing_zeros() as usize
    }

    /// Total signal energy held in the coefficients (sum of squares).
    pub fn energy(&self) -> f64 {
        self.coeffs.iter().map(|c| c * c).sum()
    }

    /// Returns a copy with every coefficient outside `keep` zeroed.
    ///
    /// Indices outside range are ignored.
    pub fn retain_indices(&self, keep: &[usize]) -> Decomposition {
        let mut out = self.clone();
        let mut mask = vec![false; self.coeffs.len()];
        for &i in keep {
            if i < mask.len() {
                mask[i] = true;
            }
        }
        for (c, keep) in out.coeffs.iter_mut().zip(&mask) {
            if !keep {
                *c = 0.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wavedec, waverec};

    #[test]
    fn retain_zeroes_others() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let kept = dec.retain_indices(&[0]);
        assert_eq!(kept.as_slice()[0], dec.as_slice()[0]);
        assert!(kept.as_slice()[1..].iter().all(|&c| c == 0.0));
        // Reconstruction from only the approximation is the constant mean.
        let back = waverec(&kept).unwrap();
        assert!(back.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn retain_ignores_out_of_range() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let kept = dec.retain_indices(&[0, 999]);
        assert_eq!(kept.as_slice()[0], dec.as_slice()[0]);
    }

    #[test]
    fn levels_and_energy() {
        let x = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        assert_eq!(dec.levels(), 3);
        assert!(dec.energy() > 0.0);
        assert_eq!(dec.len(), 8);
        assert!(!dec.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_coeffs_rejects_bad_length() {
        let _ = Decomposition::from_coeffs(vec![0.0; 3], Wavelet::Haar);
    }
}
