//! Coefficient thresholding and wavelet denoising.
//!
//! Prediction pipelines sometimes prefer *thresholding* over fixed-`k`
//! selection: zero every coefficient whose magnitude falls below a
//! data-driven threshold. This module provides hard/soft thresholding and
//! the Donoho–Johnstone universal threshold, giving the library a
//! denoising capability (useful for cleaning simulator sampling noise out
//! of dynamics traces before model fitting).

use crate::coeffs::Decomposition;

/// Thresholding rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Keep coefficients above the threshold unchanged, zero the rest.
    Hard,
    /// Shrink surviving coefficients toward zero by the threshold.
    Soft,
}

/// Applies the rule to a single coefficient.
pub fn apply(value: f64, threshold: f64, rule: Rule) -> f64 {
    match rule {
        Rule::Hard => {
            if value.abs() > threshold {
                value
            } else {
                0.0
            }
        }
        Rule::Soft => {
            if value.abs() > threshold {
                value.signum() * (value.abs() - threshold)
            } else {
                0.0
            }
        }
    }
}

/// Thresholds all **detail** coefficients of a decomposition (the
/// approximation is always kept), returning the edited copy.
pub fn threshold(dec: &Decomposition, value: f64, rule: Rule) -> Decomposition {
    let mut out = dec.clone();
    for c in out.coeffs_mut().iter_mut().skip(1) {
        *c = apply(*c, value, rule);
    }
    out
}

/// Robust noise-scale estimate from the finest detail band: the median
/// absolute coefficient divided by 0.6745 (the MAD-to-sigma factor for
/// Gaussian noise).
pub fn noise_sigma(dec: &Decomposition) -> f64 {
    let n = dec.len();
    if n < 2 {
        return 0.0;
    }
    // The finest detail band is the last half of the coefficient vector.
    let finest = &dec.as_slice()[n / 2..]; // dynalint:allow(D010) -- n/2 <= len, the range is always valid
    let mut mags: Vec<f64> = finest.iter().map(|c| c.abs()).collect();
    mags.sort_by(|a, b| a.total_cmp(b));
    let median = mags[mags.len() / 2];
    median / 0.6745
}

/// The Donoho–Johnstone universal threshold
/// `sigma * sqrt(2 ln n)`, with `sigma` estimated by [`noise_sigma`].
pub fn universal_threshold(dec: &Decomposition) -> f64 {
    noise_sigma(dec) * (2.0 * (dec.len() as f64).ln()).sqrt()
}

/// One-call denoiser: universal threshold + the chosen rule on the detail
/// coefficients, computed in the **orthonormalized** coefficient domain.
///
/// The crate's Haar transform uses the paper's average/half-difference
/// convention, which is not orthonormal: a detail coefficient in the band
/// of `m` coefficients corresponds to a time-domain atom of norm
/// `sqrt(n / m)`. Thresholding therefore rescales each coefficient into
/// orthonormal units (`c' = c * sqrt(n / m)`), where white noise is flat,
/// applies the universal threshold there, and maps back. The orthonormal
/// Daubechies-4 transform is thresholded directly.
pub fn denoise(dec: &Decomposition, rule: Rule) -> Decomposition {
    let _span = dynawave_obs::span("wavelet.denoise");
    let out = denoise_inner(dec, rule);
    if dynawave_obs::is_enabled() {
        let energy = |d: &Decomposition| d.as_slice().iter().map(|c| c * c).sum::<f64>();
        let before = energy(dec);
        if before > 0.0 {
            dynawave_obs::gauge_set("wavelet.coeff_energy_retained", energy(&out) / before);
        }
    }
    out
}

fn denoise_inner(dec: &Decomposition, rule: Rule) -> Decomposition {
    match dec.wavelet() {
        crate::Wavelet::Daubechies4 => threshold(dec, universal_threshold(dec), rule),
        crate::Wavelet::Haar => {
            let n = dec.len();
            // Orthonormal-domain noise scale: raw fine-band sigma is
            // sigma/sqrt(2); the fine-band atom norm is sqrt(2).
            let sigma_ortho = noise_sigma(dec) * std::f64::consts::SQRT_2;
            let t = sigma_ortho * (2.0 * (n as f64).ln()).sqrt();
            let mut out = dec.clone();
            let coeffs = out.coeffs_mut();
            // Bands: [1..2), [2..4), ... [n/2..n); band size m.
            let mut start = 1usize;
            while start < n {
                let m = start;
                let norm = (n as f64 / m as f64).sqrt();
                for c in &mut coeffs[start..start + m] {
                    *c = apply(*c * norm, t, rule) / norm;
                }
                start *= 2;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wavedec, waverec, Wavelet};
    use dynawave_numeric::rng::Rng;

    #[test]
    fn hard_keeps_or_kills() {
        assert_eq!(apply(5.0, 2.0, Rule::Hard), 5.0);
        assert_eq!(apply(-5.0, 2.0, Rule::Hard), -5.0);
        assert_eq!(apply(1.0, 2.0, Rule::Hard), 0.0);
    }

    #[test]
    fn soft_shrinks() {
        assert_eq!(apply(5.0, 2.0, Rule::Soft), 3.0);
        assert_eq!(apply(-5.0, 2.0, Rule::Soft), -3.0);
        assert_eq!(apply(1.5, 2.0, Rule::Soft), 0.0);
    }

    #[test]
    fn approximation_survives_thresholding() {
        let x = [10.0, 10.1, 9.9, 10.0];
        let dec = wavedec(&x, Wavelet::Haar).unwrap();
        let t = threshold(&dec, 1e6, Rule::Hard);
        assert_eq!(t.as_slice()[0], dec.as_slice()[0]);
        assert!(t.as_slice()[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn denoising_recovers_piecewise_constant_signal() {
        // Plateau-structured signals (like phase-driven workload
        // dynamics) have sparse Haar representations - the setting where
        // wavelet denoising shines.
        let mut rng = Rng::new(7);
        let n = 128;
        let clean: Vec<f64> = (0..n)
            .map(|i| if (i / 16) % 2 == 0 { 6.0 } else { 2.0 })
            .collect();
        let noisy: Vec<f64> = clean.iter().map(|v| v + rng.range_f64(-0.5, 0.5)).collect();
        let dec = wavedec(&noisy, Wavelet::Haar).unwrap();
        // Hard thresholding: the universal threshold's soft variant is
        // known to over-smooth at moderate SNR.
        let den = waverec(&denoise(&dec, Rule::Hard)).unwrap();
        let err = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>()
        };
        assert!(
            err(&clean, &den) < err(&clean, &noisy),
            "denoising increased error: {} vs {}",
            err(&clean, &den),
            err(&clean, &noisy)
        );
    }

    #[test]
    fn noise_sigma_tracks_injected_noise() {
        let mut rng = Rng::new(3);
        let n = 256;
        let sigma_true = 0.3;
        // Gaussian-ish noise via CLT of uniforms.
        let noise: Vec<f64> = (0..n)
            .map(|_| {
                let s: f64 = (0..12).map(|_| rng.next_f64()).sum();
                (s - 6.0) * sigma_true
            })
            .collect();
        let dec = wavedec(&noise, Wavelet::Haar).unwrap();
        let est = noise_sigma(&dec);
        // Haar half-difference details of white noise have sigma/sqrt(2).
        let expected = sigma_true / std::f64::consts::SQRT_2;
        assert!(
            (est - expected).abs() < expected * 0.5,
            "estimated {est}, expected ~{expected}"
        );
    }

    #[test]
    fn zero_signal_threshold_is_zero() {
        let dec = wavedec(&[0.0; 16], Wavelet::Haar).unwrap();
        assert_eq!(universal_threshold(&dec), 0.0);
    }
}
