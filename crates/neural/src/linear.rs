//! Ridge-regularized linear regression baseline.

use crate::normalize::Normalizer;
use crate::ModelError;
use dynawave_numeric::{solve, Matrix};

/// A linear model `y = w · x + b` fit by ridge regression on normalized
/// inputs.
///
/// The paper argues linear models "are usually inadequate for modeling the
/// non-linear dynamics of real-world workloads"; this baseline exists so
/// the `ablation_model` bench can quantify that claim against the RBF
/// networks.
///
/// # Examples
///
/// ```
/// use dynawave_neural::LinearModel;
/// use dynawave_numeric::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let m = LinearModel::fit(&x, &y, 1e-9).unwrap();
/// assert!((m.predict(&[1.5]) - 4.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct LinearModel {
    normalizer: Normalizer,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearModel {
    /// Fits the model on `x` (`n x d`) and targets `y` with ridge strength
    /// `lambda`.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyTrainingSet`], [`ModelError::SampleCountMismatch`]
    /// or a wrapped numeric failure.
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Self, ModelError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(ModelError::SampleCountMismatch {
                features: x.rows(),
                targets: y.len(),
            });
        }
        let normalizer = Normalizer::fit(x);
        let xn = normalizer.transform_matrix(x);
        // Augment with a bias column.
        let n = xn.rows();
        let d = xn.cols();
        let mut data = Vec::with_capacity(n * (d + 1));
        for r in 0..n {
            data.extend_from_slice(xn.row(r));
            data.push(1.0);
        }
        let design = Matrix::from_vec(n, d + 1, data)?;
        let mut w = solve::ridge_regression(&design, y, lambda)?;
        let bias = w
            .pop()
            .ok_or(ModelError::Internal("ridge fit returned no weights"))?;
        Ok(LinearModel {
            normalizer,
            weights: w,
            bias,
        })
    }

    /// Predicts the target for one raw input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let xn = self.normalizer.transform(x);
        self.bias
            + xn.iter()
                .zip(&self.weights)
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }

    /// Predicts targets for every row of `x`.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }

    /// Normalized-space coefficients (one per input dimension).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept (normalized space).
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The input normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// `true` when every fitted parameter (weights and bias) is finite.
    ///
    /// A model that fails this check predicts NaN everywhere; recovery
    /// policies treat it as a failed fit and escalate.
    pub fn parameters_are_finite(&self) -> bool {
        self.bias.is_finite() && self.weights.iter().all(|w| w.is_finite())
    }

    /// Rebuilds a model from its parts (see [`LinearModel::weights`],
    /// [`LinearModel::bias`] and [`LinearModel::normalizer`]).
    ///
    /// # Errors
    ///
    /// [`ModelError::DimensionMismatch`] if `weights.len()` differs from
    /// the normalizer's dimensionality.
    pub fn from_parts(
        normalizer: Normalizer,
        weights: Vec<f64>,
        bias: f64,
    ) -> Result<Self, ModelError> {
        if weights.len() != normalizer.dims() {
            return Err(ModelError::DimensionMismatch {
                expected: normalizer.dims(),
                got: weights.len(),
            });
        }
        Ok(LinearModel {
            normalizer,
            weights,
            bias,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_plane() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                rows.extend([i as f64, j as f64]);
                y.push(3.0 * i as f64 - 2.0 * j as f64 + 1.0);
            }
        }
        let x = Matrix::from_vec(16, 2, rows).unwrap();
        let m = LinearModel::fit(&x, &y, 1e-10).unwrap();
        assert!((m.predict(&[2.0, 2.0]) - 3.0).abs() < 1e-6);
        assert!((m.predict(&[0.0, 3.0]) + 5.0).abs() < 1e-6);
    }

    #[test]
    fn underfits_quadratic() {
        let x = Matrix::from_rows(&[&[-2.0], &[-1.0], &[0.0], &[1.0], &[2.0]]);
        let y = [4.0, 1.0, 0.0, 1.0, 4.0];
        let m = LinearModel::fit(&x, &y, 1e-10).unwrap();
        // A line through an even function is flat: everything predicts ~mean.
        assert!((m.predict(&[0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn parts_roundtrip() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = [1.0, 2.0, 3.0];
        let m = LinearModel::fit(&x, &y, 1e-9).unwrap();
        let rebuilt =
            LinearModel::from_parts(m.normalizer().clone(), m.weights().to_vec(), m.bias())
                .unwrap();
        assert_eq!(m.predict(&[1.5]), rebuilt.predict(&[1.5]));
        assert!(LinearModel::from_parts(m.normalizer().clone(), vec![], 0.0).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        let x = Matrix::zeros(2, 1);
        assert!(matches!(
            LinearModel::fit(&x, &[1.0], 0.1),
            Err(ModelError::SampleCountMismatch { .. })
        ));
    }
}
