//! RBF neural networks with regression-tree center selection.
//!
//! The predictive models in the MICRO 2007 paper are radial-basis-function
//! (RBF) networks whose centers and radii come from a CART-style regression
//! tree, following Orr et al., *"Combining Regression Trees and Radial
//! Basis Function Networks"* (paper reference \[16\]):
//!
//! 1. [`RegressionTree`] recursively partitions the training inputs with
//!    variance-reducing axis-aligned splits. Each tree node — root,
//!    internal and terminal alike — contributes one Gaussian unit whose
//!    center is the node's sample mean and whose radius is the node's
//!    per-dimension extent.
//! 2. [`RbfNetwork`] places those units, then fits the output weights with
//!    ridge-regularized least squares.
//!
//! The tree also exposes the *split order* and *split frequency*
//! introspection used for the paper's Figure 11 star plots
//! ([`RegressionTree::split_order_scores`] /
//! [`RegressionTree::split_frequencies`]).
//!
//! A [`LinearModel`] baseline and random-center RBF construction
//! ([`RbfNetwork::fit_with_random_centers`]) are included for the ablation
//! studies in `dynawave-bench`.
//!
//! # Examples
//!
//! ```
//! use dynawave_neural::{RbfNetwork, RbfParams};
//! use dynawave_numeric::Matrix;
//!
//! // Learn y = x0 + x1 on a tiny grid.
//! let mut rows = Vec::new();
//! let mut y = Vec::new();
//! for i in 0..5 {
//!     for j in 0..5 {
//!         rows.push(vec![i as f64 / 4.0, j as f64 / 4.0]);
//!         y.push((i + j) as f64 / 4.0);
//!     }
//! }
//! let x = Matrix::from_vec(25, 2, rows.concat()).unwrap();
//! let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
//! let pred = net.predict(&[0.5, 0.5]);
//! assert!((pred - 1.0).abs() < 0.25);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod linear;
mod normalize;
mod rbf;
mod tree;
pub mod validate;

pub use error::ModelError;
pub use linear::LinearModel;
pub use normalize::Normalizer;
pub use rbf::{RbfNetwork, RbfNetworkData, RbfParams};
pub use tree::{RegressionTree, SplitInfo, TreeParams};
