use dynawave_numeric::Matrix;

/// Min–max feature normalizer mapping each input dimension to `[0, 1]`.
///
/// RBF networks are sensitive to feature scaling; the microarchitecture
/// design space mixes parameters with ranges like `2..=16` (fetch width)
/// and `256..=4096` (L2 KB), so the networks normalize inputs before
/// computing distances. Dimensions that are constant in the training set
/// map to `0.5`.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    spans: Vec<f64>,
}

impl Normalizer {
    /// Learns per-dimension minima and spans from a training matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a normalizer on zero samples");
        let d = x.cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for r in 0..x.rows() {
            for (c, &v) in x.row(r).iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        let spans = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let s = hi - lo;
                if s > 0.0 {
                    s
                } else {
                    0.0
                }
            })
            .collect();
        Normalizer { mins, spans }
    }

    /// Rebuilds a normalizer from raw per-dimension minima and spans
    /// (spans of `0.0` mark constant dimensions).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any span is negative.
    pub fn from_parts(mins: Vec<f64>, spans: Vec<f64>) -> Self {
        assert_eq!(mins.len(), spans.len(), "mins/spans length mismatch");
        assert!(spans.iter().all(|&s| s >= 0.0), "negative span");
        Normalizer { mins, spans }
    }

    /// Per-dimension minima learned from the training set.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-dimension spans (`max - min`); `0.0` for constant dimensions.
    pub fn spans(&self) -> &[f64] {
        &self.spans
    }

    /// Number of input dimensions.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Normalizes one input vector into `[0, 1]` per dimension.
    ///
    /// Values outside the training range extrapolate linearly (may leave
    /// `[0, 1]`), which is the desired behaviour when the test design space
    /// brackets the training one.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dims()`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dims(), "normalizer dimension mismatch");
        x.iter()
            .zip(self.mins.iter().zip(&self.spans))
            .map(
                |(&v, (&lo, &span))| {
                    if span > 0.0 {
                        (v - lo) / span
                    } else {
                        0.5
                    }
                },
            )
            .collect()
    }

    /// Normalizes a whole matrix row-by-row.
    pub fn transform_matrix(&self, x: &Matrix) -> Matrix {
        let mut data = Vec::with_capacity(x.rows() * x.cols());
        for r in 0..x.rows() {
            data.extend(self.transform(x.row(r)));
        }
        // dynalint:allow(D001) -- transform() preserves row length, so the shape always matches
        Matrix::from_vec(x.rows(), x.cols(), data).expect("shape preserved")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_range_to_unit() {
        let x = Matrix::from_rows(&[&[2.0, 100.0], &[4.0, 300.0], &[6.0, 200.0]]);
        let n = Normalizer::fit(&x);
        assert_eq!(n.transform(&[2.0, 100.0]), vec![0.0, 0.0]);
        assert_eq!(n.transform(&[6.0, 300.0]), vec![1.0, 1.0]);
        assert_eq!(n.transform(&[4.0, 200.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn constant_dimension_maps_to_half() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0]]);
        let n = Normalizer::fit(&x);
        assert_eq!(n.transform(&[7.0]), vec![0.5]);
        assert_eq!(n.transform(&[9.0]), vec![0.5]);
    }

    #[test]
    fn extrapolates_outside_range() {
        let x = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let n = Normalizer::fit(&x);
        assert_eq!(n.transform(&[20.0]), vec![2.0]);
        assert_eq!(n.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn from_parts_roundtrip() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 9.0]]);
        let n = Normalizer::fit(&x);
        let rebuilt = Normalizer::from_parts(n.mins().to_vec(), n.spans().to_vec());
        assert_eq!(n, rebuilt);
    }

    #[test]
    fn transform_matrix_round() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[10.0, 3.0]]);
        let n = Normalizer::fit(&x);
        let t = n.transform_matrix(&x);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 1.0]);
    }
}
