//! Gaussian RBF networks with tree-derived or random centers.

use crate::normalize::Normalizer;
use crate::tree::{RegressionTree, TreeParams};
use crate::ModelError;
use dynawave_numeric::fault::{self, FaultKind, FaultSite};
use dynawave_numeric::{solve, Matrix, NumericError};

/// Hyper-parameters for [`RbfNetwork::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct RbfParams {
    /// Regression-tree parameters used for center/radius selection.
    pub tree: TreeParams,
    /// Multiplier applied to each node's half-extent to obtain the Gaussian
    /// radius. Larger values give smoother interpolation.
    pub radius_scale: f64,
    /// Floor for any radius component, in normalized input units, so that
    /// point-like nodes still have usable receptive fields.
    pub min_radius: f64,
    /// Ridge regularization for the output-weight fit.
    pub ridge_lambda: f64,
    /// Include a bias (constant) unit alongside the Gaussians.
    pub bias: bool,
    /// Optional cap on the number of Gaussian units. When set, units are
    /// chosen by greedy **forward selection** (Orr et al.): starting from
    /// the bias alone, repeatedly add the candidate unit that most
    /// reduces the ridge-regularized training error. `None` keeps every
    /// tree node as a unit (the paper-faithful default).
    pub max_units: Option<usize>,
}

impl Default for RbfParams {
    fn default() -> Self {
        RbfParams {
            tree: TreeParams::default(),
            radius_scale: 6.0,
            min_radius: 0.7,
            ridge_lambda: 3e-4,
            bias: true,
            max_units: None,
        }
    }
}

/// One Gaussian unit: `phi(x) = exp(-sum_j ((x_j - mu_j) / theta_j)^2)`.
///
/// This is the paper's basis function with center vector `mu` and radius
/// vector `theta` (§2.2), evaluated on normalized inputs.
#[derive(Debug, Clone, PartialEq)]
struct RbfUnit {
    center: Vec<f64>,
    radius: Vec<f64>,
}

impl RbfUnit {
    fn response(&self, x: &[f64]) -> f64 {
        let mut s = 0.0;
        for ((&xi, &mu), &th) in x.iter().zip(&self.center).zip(&self.radius) {
            let z = (xi - mu) / th;
            s += z * z;
        }
        (-s).exp()
    }
}

/// Portable snapshot of a trained [`RbfNetwork`]: everything needed to
/// reproduce its predictions (the regression tree used for center
/// placement is *not* included — introspection is lost on a round-trip).
#[derive(Debug, Clone, PartialEq)]
pub struct RbfNetworkData {
    /// Per-dimension normalizer minima.
    pub mins: Vec<f64>,
    /// Per-dimension normalizer spans.
    pub spans: Vec<f64>,
    /// Unit centers (normalized coordinates), one row per unit.
    pub centers: Vec<Vec<f64>>,
    /// Unit radius vectors, parallel to `centers`.
    pub radii: Vec<Vec<f64>>,
    /// Output weights, parallel to `centers`.
    pub weights: Vec<f64>,
    /// Bias weight, if the network was trained with one.
    pub bias: Option<f64>,
}

/// A trained radial-basis-function network: normalizer, Gaussian units and
/// ridge-fitted output weights.
///
/// Construct with [`RbfNetwork::fit`] (regression-tree centers, the paper's
/// method) or [`RbfNetwork::fit_with_random_centers`] (ablation baseline).
#[derive(Debug, Clone)]
pub struct RbfNetwork {
    normalizer: Normalizer,
    units: Vec<RbfUnit>,
    weights: Vec<f64>,
    bias_weight: Option<f64>,
    tree: Option<RegressionTree>,
}

impl RbfNetwork {
    /// Trains a network on `x` (`n x d`) and targets `y` using
    /// regression-tree center selection.
    ///
    /// Every tree node (root, internal, leaf) contributes one Gaussian unit
    /// centered at the node's sample mean with radius proportional to the
    /// node's per-dimension extent, then output weights solve the
    /// ridge-regularized least-squares problem.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyTrainingSet`], [`ModelError::SampleCountMismatch`]
    /// or a wrapped [`ModelError::Numeric`] if the weight solve fails.
    pub fn fit(x: &Matrix, y: &[f64], params: &RbfParams) -> Result<Self, ModelError> {
        let _span = dynawave_obs::span("neural.rbf_fit");
        if x.rows() == 0 || x.cols() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(ModelError::SampleCountMismatch {
                features: x.rows(),
                targets: y.len(),
            });
        }
        let normalizer = Normalizer::fit(x);
        let xn = normalizer.transform_matrix(x);
        let tree = RegressionTree::fit(&xn, y, &params.tree)?;
        let units: Vec<RbfUnit> = tree
            .nodes()
            .iter()
            .map(|node| RbfUnit {
                center: node.center.clone(),
                radius: node
                    .extent
                    .iter()
                    .map(|&e| (e * params.radius_scale).max(params.min_radius))
                    .collect(),
            })
            .collect();
        let units = match params.max_units {
            Some(k) => forward_select(&xn, y, units, k, params)?,
            None => units,
        };
        let (weights, bias_weight) = fit_weights(&xn, y, &units, params)?;
        Ok(RbfNetwork {
            normalizer,
            units,
            weights,
            bias_weight,
            tree: Some(tree),
        })
    }

    /// Trains a network whose centers are `n_centers` training points
    /// chosen deterministically from `seed`, with a shared isotropic radius.
    ///
    /// This is the "plain RBF" ablation baseline: identical output-weight
    /// fitting, but no tree-informed placement.
    ///
    /// # Errors
    ///
    /// As for [`RbfNetwork::fit`].
    pub fn fit_with_random_centers(
        x: &Matrix,
        y: &[f64],
        n_centers: usize,
        params: &RbfParams,
        seed: u64,
    ) -> Result<Self, ModelError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(ModelError::SampleCountMismatch {
                features: x.rows(),
                targets: y.len(),
            });
        }
        let normalizer = Normalizer::fit(x);
        let xn = normalizer.transform_matrix(x);
        let n = xn.rows();
        let k = n_centers.clamp(1, n);
        // Deterministic stride-based subsample driven by the seed.
        let offset = (dynawave_numeric::rng::splitmix64(seed) as usize) % n;
        let radius = (1.0 / (k as f64).powf(1.0 / xn.cols() as f64)).max(params.min_radius)
            * params.radius_scale;
        let units: Vec<RbfUnit> = (0..k)
            .map(|i| {
                let row = (offset + i * n / k) % n;
                RbfUnit {
                    center: xn.row(row).to_vec(),
                    radius: vec![radius; xn.cols()],
                }
            })
            .collect();
        let (weights, bias_weight) = fit_weights(&xn, y, &units, params)?;
        Ok(RbfNetwork {
            normalizer,
            units,
            weights,
            bias_weight,
            tree: None,
        })
    }

    /// Number of Gaussian units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The regression tree used for center selection, if any.
    ///
    /// `None` for networks built with random centers. The tree carries the
    /// split-order / split-frequency introspection used by the Figure 11
    /// star plots.
    pub fn tree(&self) -> Option<&RegressionTree> {
        self.tree.as_ref()
    }

    /// Predicts the target for one raw (unnormalized) input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        // Chaos-test hook: an injected fault here simulates a network that
        // silently emits NaN, exercising the caller's sanitization.
        if fault::inject(FaultSite::RbfPredict).is_some() {
            return f64::NAN;
        }
        let xn = self.normalizer.transform(x);
        let mut out = self.bias_weight.unwrap_or(0.0);
        for (unit, &w) in self.units.iter().zip(&self.weights) {
            out += w * unit.response(&xn);
        }
        out
    }

    /// `true` when every fitted parameter (weights and bias) is finite.
    ///
    /// A network that fails this check predicts NaN everywhere; recovery
    /// policies treat it as a failed fit and escalate.
    pub fn parameters_are_finite(&self) -> bool {
        self.weights.iter().all(|w| w.is_finite()) && self.bias_weight.is_none_or(f64::is_finite)
    }

    /// Predicts targets for every row of `x`.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }

    /// Snapshots the network into a portable [`RbfNetworkData`].
    pub fn to_data(&self) -> RbfNetworkData {
        RbfNetworkData {
            mins: self.normalizer.mins().to_vec(),
            spans: self.normalizer.spans().to_vec(),
            centers: self.units.iter().map(|u| u.center.clone()).collect(),
            radii: self.units.iter().map(|u| u.radius.clone()).collect(),
            weights: self.weights.clone(),
            bias: self.bias_weight,
        }
    }

    /// Rebuilds a network from a snapshot. The reconstructed network
    /// predicts identically but carries no regression tree
    /// ([`RbfNetwork::tree`] returns `None`).
    ///
    /// # Errors
    ///
    /// [`ModelError::DimensionMismatch`] if the snapshot's vectors are
    /// inconsistent; [`ModelError::EmptyTrainingSet`] for a unit-less
    /// snapshot.
    pub fn from_data(data: RbfNetworkData) -> Result<Self, ModelError> {
        if data.centers.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        let dims = data.mins.len();
        if data.spans.len() != dims {
            return Err(ModelError::DimensionMismatch {
                expected: dims,
                got: data.spans.len(),
            });
        }
        if data.radii.len() != data.centers.len() || data.weights.len() != data.centers.len() {
            return Err(ModelError::DimensionMismatch {
                expected: data.centers.len(),
                got: data.radii.len().min(data.weights.len()),
            });
        }
        for (c, r) in data.centers.iter().zip(&data.radii) {
            if c.len() != dims || r.len() != dims || r.iter().any(|&v| v <= 0.0) {
                return Err(ModelError::DimensionMismatch {
                    expected: dims,
                    got: c.len().min(r.len()),
                });
            }
        }
        let units = data
            .centers
            .into_iter()
            .zip(data.radii)
            .map(|(center, radius)| RbfUnit { center, radius })
            .collect();
        Ok(RbfNetwork {
            normalizer: Normalizer::from_parts(data.mins, data.spans),
            units,
            weights: data.weights,
            bias_weight: data.bias,
            tree: None,
        })
    }
}

/// Greedy forward selection of at most `k` units: each round adds the
/// candidate whose inclusion minimizes the ridge-fit training SSE.
fn forward_select(
    xn: &Matrix,
    y: &[f64],
    candidates: Vec<RbfUnit>,
    k: usize,
    params: &RbfParams,
) -> Result<Vec<RbfUnit>, ModelError> {
    let k = k.max(1);
    if candidates.len() <= k {
        return Ok(candidates);
    }
    // Precompute every candidate's response column once.
    let n = xn.rows();
    let columns: Vec<Vec<f64>> = candidates
        .iter()
        .map(|u| (0..n).map(|r| u.response(xn.row(r))).collect())
        .collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &cand) in remaining.iter().enumerate() {
            let mut trial = chosen.clone();
            trial.push(cand);
            let sse = ridge_sse(&columns, &trial, y, params)?;
            if best.is_none_or(|(_, s)| sse < s) {
                best = Some((pos, sse));
            }
        }
        let (pos, _) = best.ok_or(ModelError::Internal("candidate pool exhausted early"))?;
        chosen.push(remaining.swap_remove(pos));
    }
    Ok(chosen.into_iter().map(|i| candidates[i].clone()).collect())
}

/// Training SSE of a ridge fit over the selected candidate columns.
fn ridge_sse(
    columns: &[Vec<f64>],
    selected: &[usize],
    y: &[f64],
    params: &RbfParams,
) -> Result<f64, ModelError> {
    let n = y.len();
    let cols = selected.len() + usize::from(params.bias);
    let mut data = Vec::with_capacity(n * cols);
    for r in 0..n {
        for &c in selected {
            data.push(columns[c][r]);
        }
        if params.bias {
            data.push(1.0);
        }
    }
    let phi = Matrix::from_vec(n, cols, data)?;
    let w = solve::ridge_regression(&phi, y, params.ridge_lambda)?;
    let pred = phi.matvec(&w)?;
    Ok(y.iter().zip(&pred).map(|(a, p)| (a - p) * (a - p)).sum())
}

fn fit_weights(
    xn: &Matrix,
    y: &[f64],
    units: &[RbfUnit],
    params: &RbfParams,
) -> Result<(Vec<f64>, Option<f64>), ModelError> {
    // Chaos-test hook: force the output-weight fit to fail (or to return
    // silently poisoned weights) so recovery ladders can be exercised.
    if let Some(kind) = fault::inject(FaultSite::RbfWeightFit) {
        return match kind {
            FaultKind::Singular => Err(ModelError::Numeric(NumericError::Singular)),
            FaultKind::EarlyStop => Err(ModelError::Internal(
                "injected early termination of the weight fit",
            )),
            FaultKind::NonFinite => {
                Ok((vec![f64::NAN; units.len()], params.bias.then_some(f64::NAN)))
            }
        };
    }
    let n = xn.rows();
    let cols = units.len() + usize::from(params.bias);
    let mut design = Vec::with_capacity(n * cols);
    for r in 0..n {
        let row = xn.row(r);
        for unit in units {
            design.push(unit.response(row));
        }
        if params.bias {
            design.push(1.0);
        }
    }
    let phi = Matrix::from_vec(n, cols, design)?;
    let mut w = solve::ridge_regression(&phi, y, params.ridge_lambda)?;
    let bias_weight = if params.bias { w.pop() } else { None };
    Ok((w, bias_weight))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d<F: Fn(f64, f64) -> f64>(n: usize, f: F) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (i as f64 / (n - 1) as f64, j as f64 / (n - 1) as f64);
                rows.extend([a, b]);
                y.push(f(a, b));
            }
        }
        (Matrix::from_vec(n * n, 2, rows).unwrap(), y)
    }

    #[test]
    fn fits_linear_surface() {
        let (x, y) = grid_2d(7, |a, b| 2.0 * a + b);
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        for (probe, want) in [([0.3, 0.3], 0.9), ([0.7, 0.2], 1.6)] {
            let got = net.predict(&probe);
            assert!((got - want).abs() < 0.15, "{got} vs {want}");
        }
    }

    #[test]
    fn fits_nonlinear_surface_better_than_mean() {
        let (x, y) = grid_2d(8, |a, b| (3.0 * a).sin() * (2.0 * b).cos());
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        let preds = net.predict_batch(&x);
        let nmse = dynawave_numeric::stats::nmse_percent(&y, &preds);
        assert!(nmse < 10.0, "training NMSE was {nmse}%");
    }

    #[test]
    fn random_center_network_trains() {
        let (x, y) = grid_2d(6, |a, b| a * b);
        let net =
            RbfNetwork::fit_with_random_centers(&x, &y, 12, &RbfParams::default(), 42).unwrap();
        assert_eq!(net.unit_count(), 12);
        assert!(net.tree().is_none());
        let preds = net.predict_batch(&x);
        let nmse = dynawave_numeric::stats::nmse_percent(&y, &preds);
        assert!(nmse < 50.0, "training NMSE was {nmse}%");
    }

    #[test]
    fn tree_is_exposed() {
        let (x, y) = grid_2d(5, |a, _| a);
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        assert!(net.tree().is_some());
        assert_eq!(net.unit_count(), net.tree().unwrap().node_count());
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::zeros(0, 0);
        assert!(matches!(
            RbfNetwork::fit(&x, &[], &RbfParams::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        let x = Matrix::zeros(4, 2);
        assert!(matches!(
            RbfNetwork::fit(&x, &[0.0; 3], &RbfParams::default()),
            Err(ModelError::SampleCountMismatch { .. })
        ));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let (x, y_) = grid_2d(5, |_, _| 0.0);
        let y: Vec<f64> = y_.iter().map(|_| 7.5).collect();
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        // Ridge shrinkage leaves a tiny bias; just require near-constant.
        assert!((net.predict(&[0.5, 0.5]) - 7.5).abs() < 0.05);
        assert!((net.predict(&[0.1, 0.9]) - 7.5).abs() < 0.05);
    }

    #[test]
    fn snapshot_roundtrip_predicts_identically() {
        let (x, y) = grid_2d(6, |a, b| a + 2.0 * b);
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        let rebuilt = RbfNetwork::from_data(net.to_data()).unwrap();
        assert!(rebuilt.tree().is_none());
        for probe in [[0.1, 0.9], [0.5, 0.5], [0.77, 0.31]] {
            assert_eq!(net.predict(&probe), rebuilt.predict(&probe));
        }
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let (x, y) = grid_2d(5, |a, _| a);
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        let mut data = net.to_data();
        data.weights.pop();
        assert!(RbfNetwork::from_data(data).is_err());
        let mut data = net.to_data();
        data.radii[0][0] = -1.0;
        assert!(RbfNetwork::from_data(data).is_err());
        let mut data = net.to_data();
        data.centers.clear();
        data.radii.clear();
        data.weights.clear();
        assert!(RbfNetwork::from_data(data).is_err());
    }

    #[test]
    fn forward_selection_caps_units_without_wrecking_fit() {
        let (x, y) = grid_2d(7, |a, b| (2.0 * a).sin() + b);
        let full = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        let capped = RbfNetwork::fit(
            &x,
            &y,
            &RbfParams {
                max_units: Some(8),
                ..RbfParams::default()
            },
        )
        .unwrap();
        assert!(capped.unit_count() <= 8);
        assert!(full.unit_count() > capped.unit_count());
        // The capped model still fits the surface decently.
        let err = |net: &RbfNetwork| {
            let preds = net.predict_batch(&x);
            dynawave_numeric::stats::nmse_percent(&y, &preds)
        };
        assert!(err(&capped) < 10.0, "capped NMSE {}", err(&capped));
    }

    #[test]
    fn forward_selection_with_large_cap_is_identity() {
        let (x, y) = grid_2d(5, |a, _| a);
        let full = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        let capped = RbfNetwork::fit(
            &x,
            &y,
            &RbfParams {
                max_units: Some(10_000),
                ..RbfParams::default()
            },
        )
        .unwrap();
        assert_eq!(full.unit_count(), capped.unit_count());
    }

    #[test]
    fn injected_weight_fit_faults_surface_as_errors_or_nan_weights() {
        use dynawave_numeric::fault::{with_plan, FaultPlan};
        let (x, y) = grid_2d(5, |a, b| a + b);
        for kind in [FaultKind::Singular, FaultKind::EarlyStop] {
            let plan = FaultPlan::new(21)
                .rate(1.0)
                .targeting(&[FaultSite::RbfWeightFit])
                .kinds(&[kind]);
            let (r, report) = with_plan(plan, || RbfNetwork::fit(&x, &y, &RbfParams::default()));
            assert!(r.is_err(), "{} should fail the fit", kind.name());
            assert!(report.fired >= 1);
        }
        // NonFinite silently poisons the weights; the finite check catches it.
        let plan = FaultPlan::new(22)
            .rate(1.0)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[FaultKind::NonFinite]);
        let (r, _) = with_plan(plan, || RbfNetwork::fit(&x, &y, &RbfParams::default()));
        let net = r.unwrap();
        assert!(!net.parameters_are_finite());
        let healthy = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        assert!(healthy.parameters_are_finite());
    }

    #[test]
    fn injected_predict_fault_returns_nan() {
        use dynawave_numeric::fault::{with_plan, FaultPlan};
        let (x, y) = grid_2d(5, |a, _| a);
        let net = RbfNetwork::fit(&x, &y, &RbfParams::default()).unwrap();
        let plan = FaultPlan::new(23)
            .rate(1.0)
            .targeting(&[FaultSite::RbfPredict]);
        let (v, report) = with_plan(plan, || net.predict(&[0.5, 0.5]));
        assert!(v.is_nan());
        assert_eq!(report.fired, 1);
        assert!(
            net.predict(&[0.5, 0.5]).is_finite(),
            "hook must be inert again"
        );
    }

    #[test]
    fn unit_response_peaks_at_center() {
        let u = RbfUnit {
            center: vec![0.5, 0.5],
            radius: vec![0.2, 0.2],
        };
        let at_center = u.response(&[0.5, 0.5]);
        assert!((at_center - 1.0).abs() < 1e-12);
        assert!(u.response(&[0.9, 0.5]) < at_center);
        assert!(u.response(&[0.9, 0.9]) < u.response(&[0.9, 0.5]));
    }
}
