use dynawave_numeric::NumericError;
use std::error::Error;
use std::fmt;

/// Errors produced while fitting or evaluating predictive models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The training set was empty or had zero feature dimensions.
    EmptyTrainingSet,
    /// Feature matrix and target vector have different sample counts.
    SampleCountMismatch {
        /// Rows in the feature matrix.
        features: usize,
        /// Targets supplied.
        targets: usize,
    },
    /// A prediction input has the wrong dimensionality.
    DimensionMismatch {
        /// Dimensionality the model was trained with.
        expected: usize,
        /// Dimensionality supplied.
        got: usize,
    },
    /// An underlying linear-algebra routine failed.
    Numeric(NumericError),
    /// A fit produced non-finite (NaN/inf) parameters.
    ///
    /// Raised instead of silently keeping a poisoned model: a single
    /// non-finite weight would turn every downstream prediction into
    /// NaN. Recovery policies treat this exactly like a solve failure.
    NonFinite {
        /// Which fit produced the non-finite parameters.
        context: &'static str,
    },
    /// An internal invariant was violated.
    ///
    /// Reaching this is a bug in the library, not a caller error; it
    /// exists so library code can propagate broken invariants instead of
    /// panicking (workspace rule D001/D002).
    Internal(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyTrainingSet => write!(f, "training set is empty"),
            ModelError::SampleCountMismatch { features, targets } => write!(
                f,
                "sample count mismatch: {features} feature rows vs {targets} targets"
            ),
            ModelError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "input dimension mismatch: expected {expected}, got {got}"
                )
            }
            ModelError::Numeric(e) => write!(f, "numeric failure: {e}"),
            ModelError::NonFinite { context } => {
                write!(f, "fit produced non-finite parameters: {context}")
            }
            ModelError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for ModelError {
    fn from(e: NumericError) -> Self {
        ModelError::Numeric(e)
    }
}
