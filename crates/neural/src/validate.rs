//! Model selection: k-fold cross-validation and hyper-parameter grid
//! search for RBF networks.
//!
//! The paper fixes its network hyper-parameters offline; this module
//! packages that tuning step so downstream users can re-derive good
//! settings for their own simulators and design spaces.

use crate::rbf::{RbfNetwork, RbfParams};
use crate::ModelError;
use dynawave_numeric::Matrix;

/// Mean-squared k-fold cross-validation error of an RBF configuration.
///
/// Folds are contiguous row blocks (callers should shuffle beforehand if
/// rows are ordered); `k` is clamped to the sample count.
///
/// # Errors
///
/// Propagates training failures; [`ModelError::EmptyTrainingSet`] when
/// `x` is empty or `k < 2` after clamping.
pub fn cross_validate(
    x: &Matrix,
    y: &[f64],
    params: &RbfParams,
    k: usize,
) -> Result<f64, ModelError> {
    let n = x.rows();
    if n == 0 || x.cols() == 0 {
        return Err(ModelError::EmptyTrainingSet);
    }
    if n != y.len() {
        return Err(ModelError::SampleCountMismatch {
            features: n,
            targets: y.len(),
        });
    }
    let k = k.min(n);
    if k < 2 {
        return Err(ModelError::EmptyTrainingSet);
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        if lo == hi {
            continue;
        }
        // Assemble the training split.
        let mut xt = Vec::with_capacity((n - (hi - lo)) * x.cols());
        let mut yt = Vec::with_capacity(n - (hi - lo));
        for r in 0..n {
            if r < lo || r >= hi {
                xt.extend_from_slice(x.row(r));
                yt.push(y[r]); // dynalint:allow(D010) -- r < n and n == y.len() is checked above
            }
        }
        let xt = Matrix::from_vec(yt.len(), x.cols(), xt)?;
        let model = RbfNetwork::fit(&xt, &yt, params)?;
        for r in lo..hi {
            let err = model.predict(x.row(r)) - y[r]; // dynalint:allow(D010) -- r < hi <= n and n == y.len() is checked above
            total += err * err;
            count += 1;
        }
    }
    Ok(total / count.max(1) as f64)
}

/// Result of a [`grid_search`]: the winning parameters and their CV error.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The best hyper-parameters found.
    pub params: RbfParams,
    /// Their k-fold cross-validation MSE.
    pub cv_mse: f64,
    /// CV MSE of every candidate, in input order.
    pub all_scores: Vec<f64>,
}

/// Exhaustive search over candidate parameter sets by k-fold CV.
///
/// # Errors
///
/// [`ModelError::EmptyTrainingSet`] when `candidates` is empty;
/// otherwise propagates CV failures.
pub fn grid_search(
    x: &Matrix,
    y: &[f64],
    candidates: &[RbfParams],
    k: usize,
) -> Result<GridSearchResult, ModelError> {
    if candidates.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    let mut all_scores = Vec::with_capacity(candidates.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, params) in candidates.iter().enumerate() {
        let score = cross_validate(x, y, params, k)?;
        all_scores.push(score);
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((i, score));
        }
    }
    let (idx, cv_mse) = best.ok_or(ModelError::Internal("no grid-search candidate scored"))?;
    Ok(GridSearchResult {
        params: candidates[idx].clone(), // dynalint:allow(D010) -- idx comes from enumerate() over candidates
        cv_mse,
        all_scores,
    })
}

/// A small default candidate grid around the library defaults: radius
/// scales {3, 4.5, 6}, ridge strengths {1e-4, 3e-4, 1e-3}.
pub fn default_grid() -> Vec<RbfParams> {
    let mut grid = Vec::new();
    for &radius_scale in &[3.0, 4.5, 6.0] {
        for &ridge_lambda in &[1e-4, 3e-4, 1e-3] {
            grid.push(RbfParams {
                radius_scale,
                min_radius: radius_scale / 8.0,
                ridge_lambda,
                ..RbfParams::default()
            });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize) -> (Matrix, Vec<f64>) {
        // Interleave the folds so contiguous splits stay representative.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 7) as f64 / 6.0;
            let b = (i % 5) as f64 / 4.0;
            rows.extend([a, b]);
            y.push(a * 2.0 + b * b);
        }
        (Matrix::from_vec(n, 2, rows).unwrap(), y)
    }

    #[test]
    fn cv_error_is_finite_and_small_for_learnable_data() {
        let (x, y) = toy_data(60);
        let mse = cross_validate(&x, &y, &RbfParams::default(), 5).unwrap();
        assert!(mse.is_finite());
        assert!(mse < 0.5, "cv mse {mse}");
    }

    #[test]
    fn cv_rejects_degenerate_inputs() {
        let x = Matrix::zeros(0, 0);
        assert!(cross_validate(&x, &[], &RbfParams::default(), 5).is_err());
        let (x, y) = toy_data(10);
        assert!(matches!(
            cross_validate(&x, &y[..5], &RbfParams::default(), 5),
            Err(ModelError::SampleCountMismatch { .. })
        ));
    }

    #[test]
    fn grid_search_picks_lowest_score() {
        let (x, y) = toy_data(50);
        let result = grid_search(&x, &y, &default_grid(), 5).unwrap();
        assert_eq!(result.all_scores.len(), default_grid().len());
        let min = result
            .all_scores
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.cv_mse, min);
    }

    #[test]
    fn grid_search_empty_candidates_errors() {
        let (x, y) = toy_data(20);
        assert!(grid_search(&x, &y, &[], 5).is_err());
    }

    #[test]
    fn chosen_params_generalize() {
        let (x, y) = toy_data(70);
        let result = grid_search(&x, &y, &default_grid(), 5).unwrap();
        let model = RbfNetwork::fit(&x, &y, &result.params).unwrap();
        let pred = model.predict(&[0.5, 0.5]);
        assert!((pred - (1.0 + 0.25)).abs() < 0.3, "pred {pred}");
    }
}
