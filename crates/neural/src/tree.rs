//! CART-style regression tree with split introspection.

use crate::ModelError;
use dynawave_numeric::Matrix;

/// Hyper-parameters for [`RegressionTree::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root at depth 0).
    pub max_depth: usize,
    /// Minimum samples a node must contain to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain after a split.
    pub min_samples_leaf: usize,
    /// A split must reduce the node's sum of squared errors by at least
    /// this fraction of the *root* SSE to be accepted.
    pub min_impurity_decrease: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_split: 8,
            min_samples_leaf: 3,
            min_impurity_decrease: 1e-4,
        }
    }
}

/// A node's split decision, exposed for introspection.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitInfo {
    /// Feature index the node splits on.
    pub feature: usize,
    /// Split threshold; samples with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Depth of the node in the tree (root = 0).
    pub depth: usize,
    /// SSE reduction the split achieved.
    pub impurity_decrease: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Mean of the node's samples per input dimension (the RBF center).
    pub(crate) center: Vec<f64>,
    /// Per-dimension half-extent of the node's samples (the RBF radius
    /// basis). Zero-extent dimensions are patched by the RBF builder.
    pub(crate) extent: Vec<f64>,
    /// Mean target value of the node's samples.
    pub(crate) mean_y: f64,
    /// Number of training samples in the node (diagnostics/tests only).
    #[allow(dead_code)]
    pub(crate) count: usize,
    /// Sum of squared errors of the node's samples around `mean_y`.
    pub(crate) sse: f64,
    split: Option<SplitInfo>,
    left: Option<usize>,
    right: Option<usize>,
}

/// A CART regression tree.
///
/// Splits minimize the summed squared error of children. The trained tree
/// predicts with leaf means, exposes all node statistics (the RBF unit
/// source) and records, per input feature, where and how often it was split
/// on — the paper's Figure 11 data.
///
/// # Examples
///
/// ```
/// use dynawave_neural::{RegressionTree, TreeParams};
/// use dynawave_numeric::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.9], &[1.0]]);
/// let y = [0.0, 0.0, 1.0, 1.0];
/// let tree = RegressionTree::fit(
///     &x,
///     &y,
///     &TreeParams { min_samples_split: 2, min_samples_leaf: 1, ..TreeParams::default() },
/// ).unwrap();
/// assert!(tree.predict(&[0.05]).abs() < 1e-9);
/// assert!((tree.predict(&[0.95]) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    dims: usize,
}

impl RegressionTree {
    /// Fits a tree on `x` (`n x d`) and targets `y`.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyTrainingSet`] for an empty design,
    /// [`ModelError::SampleCountMismatch`] when `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[f64], params: &TreeParams) -> Result<Self, ModelError> {
        let _span = dynawave_obs::span("neural.tree_fit");
        if x.rows() == 0 || x.cols() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(ModelError::SampleCountMismatch {
                features: x.rows(),
                targets: y.len(),
            });
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            dims: x.cols(),
        };
        let all: Vec<usize> = (0..x.rows()).collect();
        let root_sse = sse(y, &all);
        // Guard against a constant target: any positive threshold then
        // blocks all splits, which is correct (single-node tree).
        let sse_floor = params.min_impurity_decrease * root_sse.max(f64::EPSILON);
        tree.grow(x, y, all, 0, params, sse_floor);
        Ok(tree)
    }

    /// Number of nodes (== number of RBF units derived from the tree).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.split.is_none()).count()
    }

    /// Input dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Predicts with the mean target of the leaf that `x` falls into.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dims()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "tree input dimension mismatch");
        let mut idx = 0usize;
        loop {
            let node = &self.nodes[idx];
            match (&node.split, node.left, node.right) {
                (Some(split), Some(l), Some(r)) => {
                    idx = if x[split.feature] <= split.threshold {
                        l
                    } else {
                        r
                    };
                }
                _ => return node.mean_y,
            }
        }
    }

    /// All split decisions in breadth-independent node order.
    pub fn splits(&self) -> Vec<&SplitInfo> {
        self.nodes.iter().filter_map(|n| n.split.as_ref()).collect()
    }

    /// Per-feature split counts — the paper's "split frequency" ranking.
    ///
    /// `result[f]` is the number of nodes that split on feature `f`.
    pub fn split_frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.dims];
        for s in self.splits() {
            freq[s.feature] += 1;
        }
        freq
    }

    /// Per-feature split-*order* scores — the paper's "split order" ranking.
    ///
    /// Parameters that "cause the most output variation tend to be split
    /// earliest"; we score each feature by `1 / (1 + depth)` summed over its
    /// splits, so a feature split at the root scores 1.0 and deeper splits
    /// contribute progressively less. Features never split on score 0.
    pub fn split_order_scores(&self) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.dims];
        for s in self.splits() {
            scores[s.feature] += 1.0 / (1.0 + s.depth as f64);
        }
        scores
    }

    /// Cost-complexity pruning (CART's weakest-link criterion): collapses
    /// every internal node whose split buys less than `alpha` SSE
    /// reduction per extra leaf, i.e. where
    /// `(node SSE - subtree SSE) / (leaves - 1) <= alpha`.
    ///
    /// Returns a new, compact tree; `alpha = 0` removes only splits that
    /// achieve no reduction at all, `alpha = f64::INFINITY` collapses to a
    /// single node.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or NaN.
    pub fn pruned(&self, alpha: f64) -> RegressionTree {
        assert!(alpha >= 0.0, "pruning strength must be non-negative");
        let mut out = RegressionTree {
            nodes: Vec::new(),
            dims: self.dims,
        };
        self.copy_pruned(0, alpha, &mut out);
        out
    }

    /// Subtree SSE (sum over reachable leaves) and leaf count.
    fn subtree_cost(&self, idx: usize) -> (f64, usize) {
        let node = &self.nodes[idx];
        match (node.left, node.right) {
            (Some(l), Some(r)) if node.split.is_some() => {
                let (sl, nl) = self.subtree_cost(l);
                let (sr, nr) = self.subtree_cost(r);
                (sl + sr, nl + nr)
            }
            _ => (node.sse, 1),
        }
    }

    fn copy_pruned(&self, idx: usize, alpha: f64, out: &mut RegressionTree) -> usize {
        let node = &self.nodes[idx];
        let new_idx = out.nodes.len();
        out.nodes.push(Node {
            split: None,
            left: None,
            right: None,
            ..node.clone()
        });
        if let (Some(split), Some(l), Some(r)) = (&node.split, node.left, node.right) {
            let (subtree_sse, leaves) = self.subtree_cost(idx);
            let gain_per_leaf = (node.sse - subtree_sse) / (leaves.saturating_sub(1).max(1)) as f64;
            if gain_per_leaf > alpha {
                let nl = self.copy_pruned(l, alpha, out);
                let nr = self.copy_pruned(r, alpha, out);
                out.nodes[new_idx].split = Some(split.clone());
                out.nodes[new_idx].left = Some(nl);
                out.nodes[new_idx].right = Some(nr);
            }
        }
        new_idx
    }

    /// Iterates over `(center, extent, mean_y, count)` for every node; the
    /// raw material for RBF unit placement.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    fn grow(
        &mut self,
        x: &Matrix,
        y: &[f64],
        samples: Vec<usize>,
        depth: usize,
        params: &TreeParams,
        sse_floor: f64,
    ) -> usize {
        let node_idx = self.nodes.len();
        self.nodes.push(make_leaf(x, y, &samples));

        if depth >= params.max_depth || samples.len() < params.min_samples_split {
            return node_idx;
        }
        let Some((feature, threshold, decrease)) =
            best_split(x, y, &samples, params.min_samples_leaf)
        else {
            return node_idx;
        };
        if decrease < sse_floor {
            return node_idx;
        }
        let (left, right): (Vec<usize>, Vec<usize>) =
            samples.iter().partition(|&&s| x[(s, feature)] <= threshold);
        debug_assert!(!left.is_empty() && !right.is_empty());
        let l = self.grow(x, y, left, depth + 1, params, sse_floor);
        let r = self.grow(x, y, right, depth + 1, params, sse_floor);
        self.nodes[node_idx].split = Some(SplitInfo {
            feature,
            threshold,
            depth,
            impurity_decrease: decrease,
        });
        self.nodes[node_idx].left = Some(l);
        self.nodes[node_idx].right = Some(r);
        node_idx
    }
}

fn make_leaf(x: &Matrix, y: &[f64], samples: &[usize]) -> Node {
    let d = x.cols();
    let n = samples.len().max(1);
    let mut center = vec![0.0; d];
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    let mut mean_y = 0.0;
    for &s in samples {
        for (c, &v) in x.row(s).iter().enumerate() {
            center[c] += v;
            lo[c] = lo[c].min(v);
            hi[c] = hi[c].max(v);
        }
        mean_y += y[s];
    }
    for c in center.iter_mut() {
        *c /= n as f64;
    }
    mean_y /= n as f64;
    let extent = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| if h > l { (h - l) / 2.0 } else { 0.0 })
        .collect();
    let sse = samples.iter().map(|&s| (y[s] - mean_y).powi(2)).sum();
    Node {
        center,
        extent,
        mean_y,
        count: samples.len(),
        sse,
        split: None,
        left: None,
        right: None,
    }
}

fn sse(y: &[f64], samples: &[usize]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mean = samples.iter().map(|&s| y[s]).sum::<f64>() / samples.len() as f64;
    samples.iter().map(|&s| (y[s] - mean).powi(2)).sum()
}

/// Exhaustive best-split search: O(d * n log n).
fn best_split(
    x: &Matrix,
    y: &[f64],
    samples: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let parent_sse = sse(y, samples);
    let n = samples.len();
    let mut best: Option<(usize, f64, f64)> = None;
    for feature in 0..x.cols() {
        let mut order: Vec<usize> = samples.to_vec();
        order.sort_by(|&a, &b| x[(a, feature)].total_cmp(&x[(b, feature)]));
        // Prefix sums over the sorted order for O(1) SSE of both sides.
        let mut sum_left = 0.0;
        let mut sumsq_left = 0.0;
        let total: f64 = order.iter().map(|&s| y[s]).sum();
        let totalsq: f64 = order.iter().map(|&s| y[s] * y[s]).sum();
        for i in 0..n - 1 {
            let yi = y[order[i]];
            sum_left += yi;
            sumsq_left += yi * yi;
            let v_here = x[(order[i], feature)];
            let v_next = x[(order[i + 1], feature)];
            if v_here == v_next {
                continue; // cannot separate equal values
            }
            let n_left = i + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let sse_left = sumsq_left - sum_left * sum_left / n_left as f64;
            let sum_right = total - sum_left;
            let sse_right = (totalsq - sumsq_left) - sum_right * sum_right / n_right as f64;
            let decrease = parent_sse - (sse_left + sse_right);
            let threshold = (v_here + v_next) / 2.0;
            if best.is_none_or(|(_, _, d)| decrease > d) {
                best = Some((feature, threshold, decrease));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let v = i as f64 / 19.0;
            rows.push(v);
            y.push(if v <= 0.5 { 1.0 } else { 5.0 });
        }
        (Matrix::from_vec(20, 1, rows).unwrap(), y)
    }

    #[test]
    fn learns_a_step_function() {
        let (x, y) = step_data();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        assert!((tree.predict(&[0.1]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[0.9]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_single_node() {
        let x = Matrix::from_rows(&[
            &[0.0],
            &[0.5],
            &[1.0],
            &[2.0],
            &[3.0],
            &[4.0],
            &[5.0],
            &[6.0],
            &[7.0],
            &[8.0],
        ]);
        let y = vec![3.0; 10];
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[0.3]), 3.0);
    }

    #[test]
    fn split_frequency_identifies_active_feature() {
        // y depends only on feature 1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                rows.extend([i as f64, j as f64]);
                y.push((j * j) as f64);
            }
        }
        let x = Matrix::from_vec(64, 2, rows).unwrap();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        let freq = tree.split_frequencies();
        assert!(freq[1] > 0);
        assert!(freq[1] >= freq[0] * 3, "freq = {freq:?}");
        let order = tree.split_order_scores();
        assert!(order[1] > order[0]);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = step_data();
        let tree = RegressionTree::fit(
            &x,
            &y,
            &TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        )
        .unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn min_leaf_blocks_tiny_children() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [0.0, 0.0, 0.0, 10.0];
        let tree = RegressionTree::fit(
            &x,
            &y,
            &TreeParams {
                min_samples_split: 2,
                min_samples_leaf: 2,
                ..TreeParams::default()
            },
        )
        .unwrap();
        // Only the 2|2 split is admissible.
        for s in tree.splits() {
            assert!((s.threshold - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        let x = Matrix::zeros(0, 0);
        assert!(matches!(
            RegressionTree::fit(&x, &[], &TreeParams::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        let x = Matrix::zeros(3, 1);
        assert!(matches!(
            RegressionTree::fit(&x, &[1.0], &TreeParams::default()),
            Err(ModelError::SampleCountMismatch { .. })
        ));
    }

    #[test]
    fn pruning_infinity_collapses_to_root() {
        let (x, y) = step_data();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        let pruned = tree.pruned(f64::INFINITY);
        assert_eq!(pruned.node_count(), 1);
        // Root prediction is the global mean.
        assert!((pruned.predict(&[0.5]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_zero_keeps_useful_splits() {
        let (x, y) = step_data();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        let pruned = tree.pruned(0.0);
        // The step split is essential; predictions are unchanged.
        assert!((pruned.predict(&[0.1]) - 1.0).abs() < 1e-9);
        assert!((pruned.predict(&[0.9]) - 5.0).abs() < 1e-9);
        assert!(pruned.node_count() <= tree.node_count());
    }

    #[test]
    fn pruning_is_monotone_in_alpha() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            let v = i as f64 / 63.0;
            rows.push(v);
            y.push((v * 9.0).sin() + 0.05 * ((i * 37) % 11) as f64);
        }
        let x = Matrix::from_vec(64, 1, rows).unwrap();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        let mut last = usize::MAX;
        for alpha in [0.0, 0.05, 0.5, 5.0] {
            let n = tree.pruned(alpha).node_count();
            assert!(n <= last, "node count grew: {n} > {last}");
            last = n;
        }
    }

    #[test]
    fn node_centers_are_sample_means() {
        let (x, y) = step_data();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        let root = &tree.nodes()[0];
        let mean: f64 = (0..20).map(|i| x[(i, 0)]).sum::<f64>() / 20.0;
        assert!((root.center[0] - mean).abs() < 1e-12);
        assert_eq!(root.count, 20);
    }
}
