//! Statistical workload-model building blocks.

use crate::phase::PhaseSignal;

/// Relative frequencies of instruction classes.
///
/// Values are weights, not probabilities — they are normalized on use —
/// but keeping them near `1.0` total makes profiles easy to read.
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionMix {
    /// Integer ALU weight.
    pub int_alu: f64,
    /// Integer multiply/divide weight.
    pub int_mul: f64,
    /// FP add weight.
    pub fp_alu: f64,
    /// FP multiply/divide weight.
    pub fp_mul: f64,
    /// Load weight.
    pub load: f64,
    /// Store weight.
    pub store: f64,
    /// Conditional-branch weight.
    pub branch: f64,
}

impl InstructionMix {
    /// A generic integer-code mix.
    pub fn integer_default() -> Self {
        InstructionMix {
            int_alu: 0.42,
            int_mul: 0.02,
            fp_alu: 0.01,
            fp_mul: 0.01,
            load: 0.26,
            store: 0.12,
            branch: 0.16,
        }
    }

    /// A generic FP/scientific mix.
    pub fn fp_default() -> Self {
        InstructionMix {
            int_alu: 0.24,
            int_mul: 0.01,
            fp_alu: 0.22,
            fp_mul: 0.14,
            load: 0.28,
            store: 0.08,
            branch: 0.03,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.int_alu
            + self.int_mul
            + self.fp_alu
            + self.fp_mul
            + self.load
            + self.store
            + self.branch
    }
}

/// Static branch-site population model.
///
/// The trace generator materializes `sites` static branches; each dynamic
/// branch selects a site and asks it for an outcome. Sites come in three
/// behavioural families whose proportions are given here.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchModel {
    /// Number of static branch sites.
    pub sites: usize,
    /// Fraction of sites behaving as loop back-edges (taken `period - 1`
    /// times out of `period`).
    pub loop_fraction: f64,
    /// Mean loop period for loop sites (geometric-ish spread around it).
    pub mean_loop_period: u32,
    /// Fraction of sites that are strongly biased (probability `bias`).
    pub biased_fraction: f64,
    /// Taken probability of biased sites.
    pub bias: f64,
    /// Remaining sites are "hard": outcome flips pseudo-randomly with
    /// probability `hard_flip`. The branch-noise phase signal scales this.
    pub hard_flip: f64,
}

impl BranchModel {
    /// A generic, fairly predictable population.
    pub fn predictable() -> Self {
        BranchModel {
            sites: 256,
            loop_fraction: 0.56,
            mean_loop_period: 20,
            biased_fraction: 0.40,
            bias: 0.95,
            hard_flip: 0.15,
        }
    }
}

/// Working-set / reuse model for data accesses.
///
/// Accesses pick a region — hot, warm, cold or streaming — then an aligned
/// address inside it. Region sizes straddle the design space's cache-size
/// levels so that dl1/L2 capacity changes move the miss rates.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryModel {
    /// Hot-region size in KB (should sit below the smallest dl1 level).
    pub hot_kb: u32,
    /// Warm-region size in KB (straddles the dl1 levels).
    pub warm_kb: u32,
    /// Cold-region size in KB (straddles the L2 levels).
    pub cold_kb: u32,
    /// Probability of a hot access (before phase modulation).
    pub p_hot: f64,
    /// Probability of a warm access.
    pub p_warm: f64,
    /// Probability of a cold access.
    pub p_cold: f64,
    /// Residual probability is streaming: sequential addresses marching
    /// through memory with this stride in bytes.
    pub stream_stride: u32,
}

impl MemoryModel {
    /// Cache-friendly default.
    pub fn cache_friendly() -> Self {
        MemoryModel {
            hot_kb: 4,
            warm_kb: 48,
            cold_kb: 1536,
            p_hot: 0.70,
            p_warm: 0.22,
            p_cold: 0.05,
            stream_stride: 8,
        }
    }

    /// Memory-bound default (mcf-like).
    pub fn memory_bound() -> Self {
        MemoryModel {
            hot_kb: 8,
            warm_kb: 96,
            cold_kb: 3072,
            p_hot: 0.35,
            p_warm: 0.25,
            p_cold: 0.24,
            stream_stride: 32,
        }
    }
}

/// Per-knob phase signals: how each behavioural dial moves over the
/// execution interval.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DynamicsSignals {
    /// Scales cold/stream access probability (cache pressure).
    pub memory: PhaseSignal,
    /// Scales mean dependency distance (instruction-level parallelism).
    pub ilp: PhaseSignal,
    /// Scales the hard-branch flip probability.
    pub branch: PhaseSignal,
    /// Scales the dead-instruction fraction (AVF dynamics).
    pub deadness: PhaseSignal,
}

/// A complete benchmark personality.
///
/// Use [`BenchmarkProfile::builder`] to assemble custom workloads:
///
/// ```
/// use dynawave_workloads::{BenchmarkProfile, Component, PhaseSignal, TraceGenerator};
///
/// let profile = BenchmarkProfile::builder("mykernel")
///     .code_kb(12)
///     .mean_dep_distance(9.0)
///     .memory_signal(PhaseSignal::new(vec![Component::Sine {
///         freq: 2.0,
///         phase: 0.0,
///         amp: 0.6,
///     }]))
///     .build();
/// let trace: Vec<_> = TraceGenerator::from_profile(profile, 1000, 1).collect();
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Display name (`"gcc"`, ...).
    pub name: &'static str,
    /// Instruction-class weights.
    pub mix: InstructionMix,
    /// Branch-site population.
    pub branch: BranchModel,
    /// Data working-set model.
    pub memory: MemoryModel,
    /// Instruction-footprint (code) size in KB; drives il1 behaviour.
    pub code_kb: u32,
    /// Mean register dependency distance (smaller = serial code).
    pub mean_dep_distance: f64,
    /// Baseline fraction of dynamically dead instructions (un-ACE).
    pub dead_fraction: f64,
    /// Phase signals for the four behavioural knobs.
    pub signals: DynamicsSignals,
}

impl BenchmarkProfile {
    /// Starts a builder with generic-integer-code defaults.
    pub fn builder(name: &'static str) -> ProfileBuilder {
        ProfileBuilder {
            profile: BenchmarkProfile {
                name,
                mix: InstructionMix::integer_default(),
                branch: BranchModel::predictable(),
                memory: MemoryModel::cache_friendly(),
                code_kb: 24,
                mean_dep_distance: 5.0,
                dead_fraction: 0.25,
                signals: DynamicsSignals::default(),
            },
        }
    }
}

/// Builder for custom [`BenchmarkProfile`]s. See
/// [`BenchmarkProfile::builder`].
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    profile: BenchmarkProfile,
}

impl ProfileBuilder {
    /// Sets the instruction-class weights.
    pub fn mix(mut self, mix: InstructionMix) -> Self {
        self.profile.mix = mix;
        self
    }

    /// Sets the branch-site population.
    pub fn branch(mut self, branch: BranchModel) -> Self {
        self.profile.branch = branch;
        self
    }

    /// Sets the data working-set model.
    pub fn memory(mut self, memory: MemoryModel) -> Self {
        self.profile.memory = memory;
        self
    }

    /// Sets the code footprint in KB.
    ///
    /// # Panics
    ///
    /// Panics if `kb == 0`.
    pub fn code_kb(mut self, kb: u32) -> Self {
        assert!(kb > 0, "code footprint must be positive");
        self.profile.code_kb = kb;
        self
    }

    /// Sets the mean register dependency distance (>= 1).
    ///
    /// # Panics
    ///
    /// Panics if `d < 1.0`.
    pub fn mean_dep_distance(mut self, d: f64) -> Self {
        assert!(d >= 1.0, "dependency distance must be >= 1");
        self.profile.mean_dep_distance = d;
        self
    }

    /// Sets the baseline dynamically-dead instruction fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f < 1.0`.
    pub fn dead_fraction(mut self, f: f64) -> Self {
        assert!((0.0..1.0).contains(&f), "dead fraction must be in [0, 1)");
        self.profile.dead_fraction = f;
        self
    }

    /// Sets the cache-pressure phase signal.
    pub fn memory_signal(mut self, signal: PhaseSignal) -> Self {
        self.profile.signals.memory = signal;
        self
    }

    /// Sets the ILP phase signal.
    pub fn ilp_signal(mut self, signal: PhaseSignal) -> Self {
        self.profile.signals.ilp = signal;
        self
    }

    /// Sets the branch-noise phase signal.
    pub fn branch_signal(mut self, signal: PhaseSignal) -> Self {
        self.profile.signals.branch = signal;
        self
    }

    /// Sets the dead-fraction phase signal.
    pub fn deadness_signal(mut self, signal: PhaseSignal) -> Self {
        self.profile.signals.deadness = signal;
        self
    }

    /// Finalizes the profile.
    pub fn build(self) -> BenchmarkProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_normalizable() {
        for mix in [
            InstructionMix::integer_default(),
            InstructionMix::fp_default(),
        ] {
            let t = mix.total();
            assert!(t > 0.9 && t < 1.1, "weight total {t} far from 1");
        }
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let p = BenchmarkProfile::builder("custom")
            .code_kb(8)
            .mean_dep_distance(3.0)
            .dead_fraction(0.1)
            .build();
        assert_eq!(p.name, "custom");
        assert_eq!(p.code_kb, 8);
        assert_eq!(p.mean_dep_distance, 3.0);
        assert_eq!(p.dead_fraction, 0.1);
        // Untouched fields keep their defaults.
        assert_eq!(p.mix, InstructionMix::integer_default());
    }

    #[test]
    #[should_panic(expected = "dead fraction")]
    fn builder_validates_dead_fraction() {
        let _ = BenchmarkProfile::builder("x").dead_fraction(1.5);
    }

    #[test]
    fn memory_probabilities_leave_stream_residual() {
        for m in [MemoryModel::cache_friendly(), MemoryModel::memory_bound()] {
            let p = m.p_hot + m.p_warm + m.p_cold;
            assert!(p < 1.0, "no stream residual");
            assert!(p > 0.5);
        }
    }
}
