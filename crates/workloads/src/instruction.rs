/// Functional class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply/divide (long latency).
    IntMul,
    /// Floating-point add/sub/compare.
    FpAlu,
    /// Floating-point multiply/divide/sqrt (long latency).
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// Position of this class in [`OpClass::ALL`].
    pub const fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 3,
            OpClass::Load => 4,
            OpClass::Store => 5,
            OpClass::Branch => 6,
        }
    }

    /// All classes, in a stable order.
    pub const ALL: [OpClass; 7] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// `true` for loads and stores.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for floating-point classes.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul)
    }
}

/// One dynamic instruction of a synthetic trace.
///
/// Dependency distances count backwards in program order: `dep1 == 3`
/// means the first source operand is produced by the instruction three
/// positions earlier. `0` means no register dependence (or a dependence
/// old enough to always be satisfied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Instruction address (bytes; 4-byte instructions).
    pub pc: u64,
    /// Functional class.
    pub class: OpClass,
    /// Distance to the producer of source 1 (`0` = none).
    pub dep1: u16,
    /// Distance to the producer of source 2 (`0` = none).
    pub dep2: u16,
    /// Effective data address for loads/stores, `0` otherwise.
    pub addr: u64,
    /// Branch outcome (meaningful only when `class == Branch`).
    pub taken: bool,
    /// `true` when the result is dynamically dead — it never influences
    /// architected state, so its bits are un-ACE for AVF purposes.
    pub dead: bool,
}

impl Instruction {
    /// `true` when the instruction is a conditional branch.
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }

    /// `true` when the instruction accesses memory.
    pub fn is_memory(&self) -> bool {
        self.class.is_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::Branch.is_memory());
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
    }

    #[test]
    fn all_classes_unique() {
        for (i, a) in OpClass::ALL.iter().enumerate() {
            for b in &OpClass::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
