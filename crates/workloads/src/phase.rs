//! Phase signals: deterministic time-varying modulation of workload
//! behaviour over an execution interval.
//!
//! A [`PhaseSignal`] maps trace position `t in [0, 1)` to a positive
//! multiplier around `1.0`. The trace generator evaluates one signal per
//! behavioural knob (memory intensity, ILP, branch noise, FP share) and
//! scales the corresponding model parameter, giving each benchmark its
//! characteristic dynamics.

use dynawave_numeric::rng::{splitmix64, unit_f64};

/// One additive component of a [`PhaseSignal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// `amp * sin(2*pi*(freq*t + phase))` — smooth periodic phases
    /// (e.g. swim's loop nests).
    Sine {
        /// Cycles over the whole interval.
        freq: f64,
        /// Phase offset in cycles.
        phase: f64,
        /// Amplitude.
        amp: f64,
    },
    /// Square wave alternating `+amp` (for a `duty` fraction) / `-amp` —
    /// block-structured phases (e.g. bzip2 compress/expand blocks).
    Square {
        /// Cycles over the whole interval.
        freq: f64,
        /// Fraction of each cycle spent at `+amp`, in `(0, 1)`.
        duty: f64,
        /// Phase offset in cycles.
        phase: f64,
        /// Amplitude.
        amp: f64,
    },
    /// `count` triangular spikes of half-width `width` at pseudo-random
    /// positions derived from `seed` — bursty behaviour (e.g. gcc).
    Spikes {
        /// Number of spikes in the interval.
        count: u32,
        /// Spike half-width as a fraction of the interval.
        width: f64,
        /// Spike amplitude.
        amp: f64,
        /// Position-derivation seed.
        seed: u64,
    },
    /// Linear ramp from `-amp` at `t = 0` to `+amp` at `t = 1` — drift
    /// (e.g. data-structure growth in mcf/parser).
    Ramp {
        /// Amplitude.
        amp: f64,
    },
}

impl Component {
    fn eval(&self, t: f64) -> f64 {
        match *self {
            Component::Sine { freq, phase, amp } => {
                amp * (std::f64::consts::TAU * (freq * t + phase)).sin()
            }
            Component::Square {
                freq,
                duty,
                phase,
                amp,
            } => {
                let cycle = (freq * t + phase).rem_euclid(1.0);
                if cycle < duty {
                    amp
                } else {
                    -amp
                }
            }
            Component::Spikes {
                count,
                width,
                amp,
                seed,
            } => {
                let mut v: f64 = 0.0;
                for k in 0..count {
                    let pos = unit_f64(splitmix64(seed ^ (u64::from(k) << 17)));
                    let d = (t - pos).abs();
                    if d < width {
                        v = v.max(amp * (1.0 - d / width));
                    }
                }
                v
            }
            Component::Ramp { amp } => amp * (2.0 * t - 1.0),
        }
    }
}

/// A positive multiplier signal over the execution interval.
///
/// The value at `t` is `1.0 + sum(components)` clamped to
/// `[floor, ceiling]`.
///
/// # Examples
///
/// ```
/// use dynawave_workloads::{Component, PhaseSignal};
///
/// let s = PhaseSignal::new(vec![Component::Sine { freq: 2.0, phase: 0.0, amp: 0.5 }]);
/// assert!((s.value(0.0) - 1.0).abs() < 1e-12);
/// assert!(s.value(0.125) > 1.4); // peak of the sine
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSignal {
    components: Vec<Component>,
    floor: f64,
    ceiling: f64,
}

impl PhaseSignal {
    /// A constant signal of value 1.0.
    pub fn constant() -> Self {
        PhaseSignal::new(Vec::new())
    }

    /// Builds a signal with default clamp range `[0.05, 4.0]`.
    pub fn new(components: Vec<Component>) -> Self {
        PhaseSignal {
            components,
            floor: 0.05,
            ceiling: 4.0,
        }
    }

    /// Overrides the clamp range.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < floor <= ceiling`.
    pub fn with_range(mut self, floor: f64, ceiling: f64) -> Self {
        assert!(floor > 0.0 && floor <= ceiling, "invalid clamp range");
        self.floor = floor;
        self.ceiling = ceiling;
        self
    }

    /// Evaluates the multiplier at trace position `t` (clamped to
    /// `[0, 1]`).
    pub fn value(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        let raw: f64 = 1.0 + self.components.iter().map(|c| c.eval(t)).sum::<f64>();
        raw.clamp(self.floor, self.ceiling)
    }

    /// The signal's components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }
}

impl Default for PhaseSignal {
    fn default() -> Self {
        PhaseSignal::constant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        let s = PhaseSignal::constant();
        for i in 0..=10 {
            assert_eq!(s.value(i as f64 / 10.0), 1.0);
        }
    }

    #[test]
    fn sine_oscillates_around_one() {
        let s = PhaseSignal::new(vec![Component::Sine {
            freq: 1.0,
            phase: 0.0,
            amp: 0.5,
        }]);
        assert!((s.value(0.25) - 1.5).abs() < 1e-12);
        assert!((s.value(0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn square_has_two_levels() {
        let s = PhaseSignal::new(vec![Component::Square {
            freq: 1.0,
            duty: 0.5,
            phase: 0.0,
            amp: 0.3,
        }]);
        assert!((s.value(0.1) - 1.3).abs() < 1e-12);
        assert!((s.value(0.9) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn spikes_are_localized_and_deterministic() {
        let s = PhaseSignal::new(vec![Component::Spikes {
            count: 3,
            width: 0.02,
            amp: 2.0,
            seed: 9,
        }]);
        let vals: Vec<f64> = (0..1000).map(|i| s.value(i as f64 / 1000.0)).collect();
        let above: usize = vals.iter().filter(|&&v| v > 1.5).count();
        assert!(above > 0, "no spikes found");
        assert!(above < 150, "spikes too wide: {above}");
        let again: Vec<f64> = (0..1000).map(|i| s.value(i as f64 / 1000.0)).collect();
        assert_eq!(vals, again);
    }

    #[test]
    fn ramp_monotone() {
        let s = PhaseSignal::new(vec![Component::Ramp { amp: 0.4 }]);
        assert!((s.value(0.0) - 0.6).abs() < 1e-12);
        assert!((s.value(1.0) - 1.4).abs() < 1e-12);
        assert!((s.value(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_applies() {
        let s = PhaseSignal::new(vec![Component::Ramp { amp: 100.0 }]).with_range(0.5, 2.0);
        assert_eq!(s.value(0.0), 0.5);
        assert_eq!(s.value(1.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn bad_range_panics() {
        let _ = PhaseSignal::constant().with_range(0.0, 1.0);
    }
}
