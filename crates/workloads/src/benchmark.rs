//! The twelve SPEC CPU 2000 benchmark personalities used by the paper.

use crate::model::{BenchmarkProfile, BranchModel, DynamicsSignals, InstructionMix, MemoryModel};
use crate::phase::{Component, PhaseSignal};

/// The SPEC CPU 2000 benchmarks evaluated in the paper (§3: *bzip2,
/// crafty, eon, gap, gcc, mcf, parser, perlbmk, twolf, swim, vortex,
/// vpr*).
///
/// Each variant owns a synthetic [`BenchmarkProfile`] that mimics the
/// benchmark's published personality: instruction mix, working-set size,
/// branch behaviour and — most importantly for this paper — the *shape* of
/// its time-varying dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Block-sorting compression (integer; block-structured phases).
    Bzip2,
    /// Chess engine (integer; high ILP, hard branches, fast oscillation).
    Crafty,
    /// Probabilistic ray tracer (C++; smooth, cache-friendly).
    Eon,
    /// Group-theory interpreter (integer; wide CPI swings).
    Gap,
    /// Optimizing C compiler (integer; bursty, large code footprint).
    Gcc,
    /// Single-depot vehicle scheduling (integer; memory-bound plateaus).
    Mcf,
    /// Link-grammar English parser (integer; drifting working set).
    Parser,
    /// Perl interpreter (integer; large code, branchy).
    Perlbmk,
    /// Shallow-water FP stencil (smooth periodic, streaming memory).
    Swim,
    /// Place-and-route (integer; cache-sensitive oscillation).
    Twolf,
    /// OO database (integer; store-heavy, large code).
    Vortex,
    /// FPGA place-and-route (integer; varied reliability dynamics).
    Vpr,
}

impl Benchmark {
    /// All benchmarks in the paper's listing order.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Bzip2,
        Benchmark::Crafty,
        Benchmark::Eon,
        Benchmark::Gap,
        Benchmark::Gcc,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Perlbmk,
        Benchmark::Swim,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
    ];

    /// Lowercase display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Crafty => "crafty",
            Benchmark::Eon => "eon",
            Benchmark::Gap => "gap",
            Benchmark::Gcc => "gcc",
            Benchmark::Mcf => "mcf",
            Benchmark::Parser => "parser",
            Benchmark::Perlbmk => "perlbmk",
            Benchmark::Swim => "swim",
            Benchmark::Twolf => "twolf",
            Benchmark::Vortex => "vortex",
            Benchmark::Vpr => "vpr",
        }
    }

    /// Looks a benchmark up by its lowercase name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// The benchmark's synthetic personality.
    pub fn profile(self) -> BenchmarkProfile {
        match self {
            Benchmark::Bzip2 => BenchmarkProfile {
                name: "bzip2",
                mix: InstructionMix {
                    load: 0.24,
                    store: 0.10,
                    branch: 0.14,
                    ..InstructionMix::integer_default()
                },
                branch: BranchModel {
                    sites: 192,
                    loop_fraction: 0.6,
                    mean_loop_period: 24,
                    biased_fraction: 0.3,
                    bias: 0.95,
                    hard_flip: 0.14,
                },
                memory: MemoryModel {
                    hot_kb: 4,
                    warm_kb: 96,
                    cold_kb: 2048,
                    p_hot: 0.55,
                    p_warm: 0.30,
                    p_cold: 0.08,
                    stream_stride: 8,
                },
                code_kb: 20,
                mean_dep_distance: 5.5,
                dead_fraction: 0.28,
                signals: DynamicsSignals {
                    // Compress / reorder blocks: crisp square phases.
                    memory: PhaseSignal::new(vec![Component::Square {
                        freq: 3.0,
                        duty: 0.45,
                        phase: 0.1,
                        amp: 0.8,
                    }]),
                    ilp: PhaseSignal::new(vec![Component::Square {
                        freq: 3.0,
                        duty: 0.45,
                        phase: 0.1,
                        amp: 0.35,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Square {
                        freq: 3.0,
                        duty: 0.5,
                        phase: 0.35,
                        amp: 0.4,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Square {
                        freq: 3.0,
                        duty: 0.45,
                        phase: 0.1,
                        amp: 0.75,
                    }]),
                },
            },
            Benchmark::Crafty => BenchmarkProfile {
                name: "crafty",
                mix: InstructionMix {
                    int_alu: 0.46,
                    load: 0.27,
                    store: 0.07,
                    branch: 0.17,
                    ..InstructionMix::integer_default()
                },
                branch: BranchModel {
                    sites: 384,
                    loop_fraction: 0.50,
                    mean_loop_period: 18,
                    biased_fraction: 0.38,
                    bias: 0.95,
                    hard_flip: 0.18,
                },
                memory: MemoryModel::cache_friendly(),
                code_kb: 36,
                mean_dep_distance: 7.0,
                dead_fraction: 0.32,
                signals: DynamicsSignals {
                    // Search-tree depth changes: fast, large power swings.
                    memory: PhaseSignal::new(vec![
                        Component::Sine {
                            freq: 4.0,
                            phase: 0.0,
                            amp: 0.45,
                        },
                        Component::Sine {
                            freq: 9.0,
                            phase: 0.3,
                            amp: 0.25,
                        },
                    ]),
                    ilp: PhaseSignal::new(vec![
                        Component::Sine {
                            freq: 4.0,
                            phase: 0.5,
                            amp: 0.5,
                        },
                        Component::Spikes {
                            count: 5,
                            width: 0.03,
                            amp: 0.8,
                            seed: 0xC4A,
                        },
                    ]),
                    branch: PhaseSignal::new(vec![Component::Sine {
                        freq: 6.0,
                        phase: 0.2,
                        amp: 0.5,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Sine {
                        freq: 4.0,
                        phase: 0.1,
                        amp: 0.625,
                    }]),
                },
            },
            Benchmark::Eon => BenchmarkProfile {
                name: "eon",
                mix: InstructionMix {
                    int_alu: 0.30,
                    fp_alu: 0.16,
                    fp_mul: 0.10,
                    load: 0.24,
                    store: 0.09,
                    branch: 0.10,
                    int_mul: 0.01,
                },
                branch: BranchModel {
                    sites: 128,
                    loop_fraction: 0.6,
                    mean_loop_period: 20,
                    biased_fraction: 0.35,
                    bias: 0.96,
                    hard_flip: 0.08,
                },
                memory: MemoryModel {
                    hot_kb: 6,
                    warm_kb: 24,
                    cold_kb: 512,
                    p_hot: 0.74,
                    p_warm: 0.20,
                    p_cold: 0.03,
                    stream_stride: 16,
                },
                code_kb: 28,
                mean_dep_distance: 6.5,
                dead_fraction: 0.22,
                signals: DynamicsSignals {
                    memory: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.0,
                        amp: 0.2,
                    }]),
                    ilp: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.25,
                        amp: 0.15,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.0,
                        amp: 0.15,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.5,
                        amp: 0.55,
                    }]),
                },
            },
            Benchmark::Gap => BenchmarkProfile {
                name: "gap",
                mix: InstructionMix {
                    load: 0.28,
                    store: 0.13,
                    branch: 0.13,
                    ..InstructionMix::integer_default()
                },
                branch: BranchModel::predictable(),
                memory: MemoryModel {
                    hot_kb: 4,
                    warm_kb: 64,
                    cold_kb: 3072,
                    p_hot: 0.52,
                    p_warm: 0.28,
                    p_cold: 0.12,
                    stream_stride: 8,
                },
                code_kb: 24,
                mean_dep_distance: 5.0,
                dead_fraction: 0.30,
                signals: DynamicsSignals {
                    // Wide CPI swings (paper Figure 1): big square + spikes.
                    memory: PhaseSignal::new(vec![
                        Component::Square {
                            freq: 2.5,
                            duty: 0.35,
                            phase: 0.0,
                            amp: 1.2,
                        },
                        Component::Spikes {
                            count: 6,
                            width: 0.02,
                            amp: 1.0,
                            seed: 0x6A9,
                        },
                    ]),
                    ilp: PhaseSignal::new(vec![Component::Square {
                        freq: 2.5,
                        duty: 0.35,
                        phase: 0.0,
                        amp: 0.4,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Square {
                        freq: 2.5,
                        duty: 0.4,
                        phase: 0.15,
                        amp: 0.35,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Square {
                        freq: 2.5,
                        duty: 0.35,
                        phase: 0.0,
                        amp: 0.55,
                    }]),
                },
            },
            Benchmark::Gcc => BenchmarkProfile {
                name: "gcc",
                mix: InstructionMix {
                    int_alu: 0.40,
                    load: 0.25,
                    store: 0.13,
                    branch: 0.19,
                    int_mul: 0.01,
                    fp_alu: 0.01,
                    fp_mul: 0.01,
                },
                branch: BranchModel {
                    sites: 512,
                    loop_fraction: 0.44,
                    mean_loop_period: 14,
                    biased_fraction: 0.42,
                    bias: 0.95,
                    hard_flip: 0.12,
                },
                memory: MemoryModel {
                    hot_kb: 6,
                    warm_kb: 56,
                    cold_kb: 2048,
                    p_hot: 0.58,
                    p_warm: 0.26,
                    p_cold: 0.10,
                    stream_stride: 8,
                },
                code_kb: 64,
                mean_dep_distance: 5.5,
                dead_fraction: 0.34,
                signals: DynamicsSignals {
                    // Per-function compilation bursts: irregular spikes.
                    memory: PhaseSignal::new(vec![
                        Component::Spikes {
                            count: 8,
                            width: 0.035,
                            amp: 1.6,
                            seed: 0x9CC,
                        },
                        Component::Sine {
                            freq: 4.0,
                            phase: 0.0,
                            amp: 0.3,
                        },
                    ]),
                    ilp: PhaseSignal::new(vec![
                        Component::Spikes {
                            count: 6,
                            width: 0.03,
                            amp: 0.9,
                            seed: 0x9CD,
                        },
                        Component::Sine {
                            freq: 3.0,
                            phase: 0.4,
                            amp: 0.25,
                        },
                    ]),
                    branch: PhaseSignal::new(vec![Component::Spikes {
                        count: 7,
                        width: 0.035,
                        amp: 0.8,
                        seed: 0x9CE,
                    }]),
                    deadness: PhaseSignal::new(vec![
                        Component::Spikes {
                            count: 6,
                            width: 0.035,
                            amp: 1.25,
                            seed: 0x9CF,
                        },
                        Component::Sine {
                            freq: 4.0,
                            phase: 0.2,
                            amp: 0.55,
                        },
                    ]),
                },
            },
            Benchmark::Mcf => BenchmarkProfile {
                name: "mcf",
                mix: InstructionMix {
                    int_alu: 0.34,
                    load: 0.34,
                    store: 0.09,
                    branch: 0.19,
                    int_mul: 0.01,
                    fp_alu: 0.02,
                    fp_mul: 0.01,
                },
                branch: BranchModel {
                    sites: 96,
                    loop_fraction: 0.62,
                    mean_loop_period: 40,
                    biased_fraction: 0.28,
                    bias: 0.92,
                    hard_flip: 0.14,
                },
                memory: MemoryModel::memory_bound(),
                code_kb: 10,
                mean_dep_distance: 4.0, // pointer chasing: serial
                dead_fraction: 0.24,
                signals: DynamicsSignals {
                    // Long memory-bound plateaus.
                    memory: PhaseSignal::new(vec![
                        Component::Square {
                            freq: 1.5,
                            duty: 0.55,
                            phase: 0.2,
                            amp: 0.9,
                        },
                        Component::Ramp { amp: 0.3 },
                    ]),
                    ilp: PhaseSignal::new(vec![Component::Square {
                        freq: 1.5,
                        duty: 0.55,
                        phase: 0.2,
                        amp: 0.25,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Sine {
                        freq: 2.0,
                        phase: 0.0,
                        amp: 0.2,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Square {
                        freq: 1.5,
                        duty: 0.55,
                        phase: 0.2,
                        amp: 0.55,
                    }]),
                },
            },
            Benchmark::Parser => BenchmarkProfile {
                name: "parser",
                mix: InstructionMix::integer_default(),
                branch: BranchModel {
                    sites: 256,
                    loop_fraction: 0.54,
                    mean_loop_period: 18,
                    biased_fraction: 0.36,
                    bias: 0.95,
                    hard_flip: 0.12,
                },
                memory: MemoryModel {
                    hot_kb: 4,
                    warm_kb: 40,
                    cold_kb: 1024,
                    p_hot: 0.60,
                    p_warm: 0.26,
                    p_cold: 0.09,
                    stream_stride: 8,
                },
                code_kb: 32,
                mean_dep_distance: 4.5,
                dead_fraction: 0.30,
                signals: DynamicsSignals {
                    // Sentence-length drift plus parse bursts.
                    memory: PhaseSignal::new(vec![
                        Component::Ramp { amp: 0.5 },
                        Component::Spikes {
                            count: 6,
                            width: 0.03,
                            amp: 1.0,
                            seed: 0x9A7,
                        },
                    ]),
                    ilp: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.0,
                        amp: 0.3,
                    }]),
                    branch: PhaseSignal::new(vec![
                        Component::Sine {
                            freq: 3.0,
                            phase: 0.3,
                            amp: 0.3,
                        },
                        Component::Ramp { amp: 0.2 },
                    ]),
                    deadness: PhaseSignal::new(vec![Component::Ramp { amp: 0.625 }]),
                },
            },
            Benchmark::Perlbmk => BenchmarkProfile {
                name: "perlbmk",
                mix: InstructionMix {
                    int_alu: 0.41,
                    load: 0.27,
                    store: 0.12,
                    branch: 0.17,
                    int_mul: 0.01,
                    fp_alu: 0.01,
                    fp_mul: 0.01,
                },
                branch: BranchModel {
                    sites: 448,
                    loop_fraction: 0.40,
                    mean_loop_period: 15,
                    biased_fraction: 0.48,
                    bias: 0.95,
                    hard_flip: 0.16,
                },
                memory: MemoryModel {
                    hot_kb: 6,
                    warm_kb: 48,
                    cold_kb: 1024,
                    p_hot: 0.62,
                    p_warm: 0.25,
                    p_cold: 0.07,
                    stream_stride: 8,
                },
                code_kb: 56,
                mean_dep_distance: 5.0,
                dead_fraction: 0.33,
                signals: DynamicsSignals {
                    memory: PhaseSignal::new(vec![
                        Component::Sine {
                            freq: 3.0,
                            phase: 0.0,
                            amp: 0.4,
                        },
                        Component::Square {
                            freq: 2.0,
                            duty: 0.5,
                            phase: 0.0,
                            amp: 0.3,
                        },
                    ]),
                    ilp: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.5,
                        amp: 0.3,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Sine {
                        freq: 4.0,
                        phase: 0.1,
                        amp: 0.35,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.3,
                        amp: 0.55,
                    }]),
                },
            },
            Benchmark::Swim => BenchmarkProfile {
                name: "swim",
                mix: InstructionMix::fp_default(),
                branch: BranchModel {
                    sites: 48,
                    loop_fraction: 0.85,
                    mean_loop_period: 64,
                    biased_fraction: 0.10,
                    bias: 0.98,
                    hard_flip: 0.06,
                },
                memory: MemoryModel {
                    hot_kb: 8,
                    warm_kb: 64,
                    cold_kb: 4096,
                    p_hot: 0.40,
                    p_warm: 0.20,
                    p_cold: 0.05,
                    stream_stride: 8, // dominant streaming stencil sweeps
                },
                code_kb: 6,
                mean_dep_distance: 11.0, // vectorizable: high ILP
                dead_fraction: 0.25,
                signals: DynamicsSignals {
                    // Clean periodic stencil sweeps.
                    memory: PhaseSignal::new(vec![Component::Sine {
                        freq: 4.0,
                        phase: 0.0,
                        amp: 0.5,
                    }]),
                    ilp: PhaseSignal::new(vec![Component::Sine {
                        freq: 4.0,
                        phase: 0.25,
                        amp: 0.3,
                    }]),
                    branch: PhaseSignal::constant(),
                    deadness: PhaseSignal::new(vec![Component::Sine {
                        freq: 4.0,
                        phase: 0.5,
                        amp: 0.55,
                    }]),
                },
            },
            Benchmark::Twolf => BenchmarkProfile {
                name: "twolf",
                mix: InstructionMix {
                    load: 0.29,
                    store: 0.08,
                    ..InstructionMix::integer_default()
                },
                branch: BranchModel {
                    sites: 224,
                    loop_fraction: 0.55,
                    mean_loop_period: 20,
                    biased_fraction: 0.33,
                    bias: 0.9,
                    hard_flip: 0.12,
                },
                memory: MemoryModel {
                    hot_kb: 4,
                    warm_kb: 72, // straddles the dl1 range hard
                    cold_kb: 512,
                    p_hot: 0.48,
                    p_warm: 0.42,
                    p_cold: 0.05,
                    stream_stride: 8,
                },
                code_kb: 24,
                mean_dep_distance: 4.5,
                dead_fraction: 0.28,
                signals: DynamicsSignals {
                    // Annealing temperature steps.
                    memory: PhaseSignal::new(vec![
                        Component::Square {
                            freq: 3.5,
                            duty: 0.5,
                            phase: 0.0,
                            amp: 0.5,
                        },
                        Component::Ramp { amp: -0.3 },
                    ]),
                    ilp: PhaseSignal::new(vec![Component::Sine {
                        freq: 5.0,
                        phase: 0.0,
                        amp: 0.25,
                    }]),
                    branch: PhaseSignal::new(vec![
                        Component::Ramp { amp: -0.35 }, // acceptance rate falls
                    ]),
                    deadness: PhaseSignal::new(vec![Component::Square {
                        freq: 3.5,
                        duty: 0.5,
                        phase: 0.25,
                        amp: 0.55,
                    }]),
                },
            },
            Benchmark::Vortex => BenchmarkProfile {
                name: "vortex",
                mix: InstructionMix {
                    int_alu: 0.38,
                    load: 0.27,
                    store: 0.16,
                    branch: 0.15,
                    int_mul: 0.01,
                    fp_alu: 0.02,
                    fp_mul: 0.01,
                },
                branch: BranchModel {
                    sites: 320,
                    loop_fraction: 0.48,
                    mean_loop_period: 16,
                    biased_fraction: 0.44,
                    bias: 0.95,
                    hard_flip: 0.12,
                },
                memory: MemoryModel {
                    hot_kb: 6,
                    warm_kb: 48,
                    cold_kb: 2048,
                    p_hot: 0.60,
                    p_warm: 0.26,
                    p_cold: 0.08,
                    stream_stride: 8,
                },
                code_kb: 48,
                mean_dep_distance: 6.0,
                dead_fraction: 0.35,
                signals: DynamicsSignals {
                    // Transaction mix shifts: gentle squares.
                    memory: PhaseSignal::new(vec![Component::Square {
                        freq: 4.0,
                        duty: 0.6,
                        phase: 0.1,
                        amp: 0.35,
                    }]),
                    ilp: PhaseSignal::new(vec![Component::Square {
                        freq: 4.0,
                        duty: 0.6,
                        phase: 0.1,
                        amp: 0.2,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Sine {
                        freq: 4.0,
                        phase: 0.0,
                        amp: 0.2,
                    }]),
                    deadness: PhaseSignal::new(vec![Component::Square {
                        freq: 4.0,
                        duty: 0.6,
                        phase: 0.35,
                        amp: 0.625,
                    }]),
                },
            },
            Benchmark::Vpr => BenchmarkProfile {
                name: "vpr",
                mix: InstructionMix {
                    load: 0.28,
                    store: 0.09,
                    fp_alu: 0.05,
                    ..InstructionMix::integer_default()
                },
                branch: BranchModel {
                    sites: 192,
                    loop_fraction: 0.58,
                    mean_loop_period: 18,
                    biased_fraction: 0.32,
                    bias: 0.95,
                    hard_flip: 0.15,
                },
                memory: MemoryModel {
                    hot_kb: 4,
                    warm_kb: 32,
                    cold_kb: 768,
                    p_hot: 0.62,
                    p_warm: 0.26,
                    p_cold: 0.07,
                    stream_stride: 8,
                },
                code_kb: 28,
                mean_dep_distance: 5.0,
                dead_fraction: 0.32,
                signals: DynamicsSignals {
                    memory: PhaseSignal::new(vec![
                        Component::Sine {
                            freq: 3.0,
                            phase: 0.0,
                            amp: 0.35,
                        },
                        Component::Spikes {
                            count: 4,
                            width: 0.04,
                            amp: 0.7,
                            seed: 0x7B1,
                        },
                    ]),
                    ilp: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.35,
                        amp: 0.25,
                    }]),
                    branch: PhaseSignal::new(vec![Component::Sine {
                        freq: 3.0,
                        phase: 0.1,
                        amp: 0.3,
                    }]),
                    // The paper's Figure 1 shows vpr's AVF swinging widely.
                    deadness: PhaseSignal::new(vec![
                        Component::Sine {
                            freq: 3.0,
                            phase: 0.0,
                            amp: 1.0,
                        },
                        Component::Spikes {
                            count: 5,
                            width: 0.04,
                            amp: 1.6,
                            seed: 0x7B2,
                        },
                    ]),
                },
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 12);
    }

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(b.profile().name, b.name());
        }
        assert_eq!(Benchmark::from_name("nonesuch"), None);
    }

    #[test]
    fn profiles_are_distinct() {
        for (i, a) in Benchmark::ALL.iter().enumerate() {
            for b in &Benchmark::ALL[i + 1..] {
                assert_ne!(a.profile(), b.profile(), "{a} and {b} share a profile");
            }
        }
    }

    #[test]
    fn profiles_are_sane() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let total = p.mix.total();
            assert!(total > 0.9 && total < 1.1, "{b}: mix total {total}");
            assert!(
                p.memory.p_hot + p.memory.p_warm + p.memory.p_cold < 1.0,
                "{b}"
            );
            assert!(p.dead_fraction > 0.0 && p.dead_fraction < 0.5, "{b}");
            assert!(p.mean_dep_distance >= 1.0, "{b}");
            assert!(p.branch.sites > 0, "{b}");
            assert!(p.code_kb > 0, "{b}");
        }
    }
}
