//! Trace analysis: summary statistics of generated instruction streams.
//!
//! These are timing-independent workload characteristics (instruction mix,
//! branch behaviour, memory footprint, dependency structure) — useful for
//! validating that a synthetic benchmark matches its intended personality
//! and for documenting workload properties in experiment reports.

use crate::instruction::{Instruction, OpClass};
use std::collections::BTreeSet;

/// Timing-independent summary of an instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Instructions analyzed.
    pub instructions: u64,
    /// Fraction of each class, in [`OpClass::ALL`] order.
    pub class_fractions: [f64; 7],
    /// Fraction of branches that were taken.
    pub taken_fraction: f64,
    /// Fraction of dynamically dead instructions.
    pub dead_fraction: f64,
    /// Mean register dependency distance (dep1, where present).
    pub mean_dep_distance: f64,
    /// Distinct 64-byte data lines touched.
    pub data_lines: usize,
    /// Distinct 32-byte instruction lines touched.
    pub code_lines: usize,
    /// Distinct 4 KB data pages touched.
    pub data_pages: usize,
}

impl TraceSummary {
    /// Fraction of instructions in `class`.
    pub fn fraction_of(&self, class: OpClass) -> f64 {
        self.class_fractions[class.index()]
    }

    /// Data footprint in KB (64-byte lines).
    pub fn data_footprint_kb(&self) -> f64 {
        self.data_lines as f64 * 64.0 / 1024.0
    }

    /// Code footprint in KB (32-byte lines).
    pub fn code_footprint_kb(&self) -> f64 {
        self.code_lines as f64 * 32.0 / 1024.0
    }
}

/// Computes a [`TraceSummary`] over an instruction stream.
///
/// Consumes the iterator; analyze a bounded prefix with `take(n)` for
/// long generators.
pub fn summarize<I>(trace: I) -> TraceSummary
where
    I: IntoIterator<Item = Instruction>,
{
    let mut n = 0u64;
    let mut class_counts = [0u64; 7];
    let mut branches = 0u64;
    let mut taken = 0u64;
    let mut dead = 0u64;
    let mut dep_sum = 0u64;
    let mut dep_count = 0u64;
    let mut data_lines = BTreeSet::new();
    let mut code_lines = BTreeSet::new();
    let mut data_pages = BTreeSet::new();
    for i in trace {
        n += 1;
        class_counts[i.class.index()] += 1;
        if i.is_branch() {
            branches += 1;
            if i.taken {
                taken += 1;
            }
        }
        if i.dead {
            dead += 1;
        }
        if i.dep1 > 0 {
            dep_sum += u64::from(i.dep1);
            dep_count += 1;
        }
        if i.is_memory() {
            data_lines.insert(i.addr >> 6);
            data_pages.insert(i.addr >> 12);
        }
        code_lines.insert(i.pc >> 5);
    }
    let nf = n.max(1) as f64;
    let mut class_fractions = [0.0; 7];
    for (f, c) in class_fractions.iter_mut().zip(class_counts) {
        *f = c as f64 / nf;
    }
    TraceSummary {
        instructions: n,
        class_fractions,
        taken_fraction: if branches > 0 {
            taken as f64 / branches as f64
        } else {
            0.0
        },
        dead_fraction: dead as f64 / nf,
        mean_dep_distance: if dep_count > 0 {
            dep_sum as f64 / dep_count as f64
        } else {
            0.0
        },
        data_lines: data_lines.len(),
        code_lines: code_lines.len(),
        data_pages: data_pages.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceGenerator};

    fn summary(b: Benchmark) -> TraceSummary {
        summarize(TraceGenerator::new(b, 60_000, 5))
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = summary(Benchmark::Gcc);
        let total: f64 = s.class_fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(s.instructions, 60_000);
    }

    #[test]
    fn personalities_show_up_in_summaries() {
        let gcc = summary(Benchmark::Gcc);
        let swim = summary(Benchmark::Swim);
        let mcf = summary(Benchmark::Mcf);
        // swim is FP-heavy and branch-light compared to gcc.
        assert!(swim.fraction_of(OpClass::FpAlu) > gcc.fraction_of(OpClass::FpAlu) * 3.0);
        assert!(swim.fraction_of(OpClass::Branch) < gcc.fraction_of(OpClass::Branch) / 2.0);
        // mcf touches far more data than gcc relative to code.
        assert!(mcf.data_footprint_kb() > gcc.data_footprint_kb());
        assert!(mcf.code_footprint_kb() < gcc.code_footprint_kb());
    }

    #[test]
    fn branches_are_mostly_taken() {
        // Loop-dominated populations take most back edges.
        let s = summary(Benchmark::Swim);
        assert!(s.taken_fraction > 0.6, "taken {}", s.taken_fraction);
    }

    #[test]
    fn dead_fraction_matches_profile_scale() {
        let s = summary(Benchmark::Vortex);
        let base = Benchmark::Vortex.profile().dead_fraction;
        assert!(s.dead_fraction > base * 0.4 && s.dead_fraction < base * 2.0);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(std::iter::empty());
        assert_eq!(s.instructions, 0);
        assert_eq!(s.taken_fraction, 0.0);
        assert_eq!(s.data_lines, 0);
    }
}
