//! Synthetic SPEC CPU 2000 workload models and instruction-trace
//! generation.
//!
//! The MICRO 2007 paper drives its design-space exploration with twelve
//! SPEC CPU 2000 benchmarks (*bzip2, crafty, eon, gap, gcc, mcf, parser,
//! perlbmk, swim, twolf, vortex, vpr*), each simulated for one SimPoint
//! interval. The binaries and reference inputs are not redistributable, so
//! this crate substitutes **statistical workload models**: each benchmark
//! is a deterministic generator of instruction records whose
//!
//! * instruction mix ([`InstructionMix`]),
//! * inter-instruction dependency distances,
//! * branch-site behaviour ([`BranchModel`]),
//! * memory reuse/working-set structure ([`MemoryModel`]), and
//! * instruction-fetch (code) footprint
//!
//! are modulated over the execution interval by per-benchmark **phase
//! signals** ([`PhaseSignal`]). The signals give every benchmark a
//! distinct, time-varying personality (bursty gcc, periodic swim,
//! memory-plateaued mcf, ...), which is the property the paper's
//! wavelet-domain models exist to capture.
//!
//! Crucially, the generated stream depends only on `(benchmark, seed,
//! instruction index)` — never on the machine configuration — so every
//! simulated design point executes *the same code base*, exactly as in
//! trace-driven simulation of a fixed SimPoint interval. Different
//! configurations then manifest different dynamics purely through timing,
//! which is the paper's premise.
//!
//! # Examples
//!
//! ```
//! use dynawave_workloads::{Benchmark, TraceGenerator};
//!
//! let mut gen = TraceGenerator::new(Benchmark::Gcc, 1 << 16, 42);
//! let first: Vec<_> = gen.by_ref().take(1000).collect();
//! assert_eq!(first.len(), 1000);
//! // Regenerating with the same seed reproduces the stream bit-for-bit.
//! let again: Vec<_> = TraceGenerator::new(Benchmark::Gcc, 1 << 16, 42)
//!     .take(1000)
//!     .collect();
//! assert_eq!(first, again);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
mod benchmark;
mod instruction;
mod model;
mod phase;
mod trace;

pub use benchmark::Benchmark;
pub use instruction::{Instruction, OpClass};
pub use model::{
    BenchmarkProfile, BranchModel, DynamicsSignals, InstructionMix, MemoryModel, ProfileBuilder,
};
pub use phase::{Component, PhaseSignal};
pub use trace::TraceGenerator;
