//! Deterministic instruction-trace generation from benchmark profiles.

use crate::benchmark::Benchmark;
use crate::instruction::{Instruction, OpClass};
use crate::model::BenchmarkProfile;
use dynawave_numeric::rng::Rng;

/// How often (in instructions) the phase-signal knobs are re-evaluated.
/// Signals vary on the scale of whole sample intervals (thousands of
/// instructions), so a small refresh stride is pure overhead.
const KNOB_REFRESH: u64 = 128;

/// Cap on generated dependency distances.
const MAX_DEP: u16 = 480;

/// Base virtual addresses for the data regions, far enough apart that
/// regions never alias.
const HOT_BASE: u64 = 0x1000_0000;
const WARM_BASE: u64 = 0x2000_0000;
const COLD_BASE: u64 = 0x4000_0000;
const STREAM_BASE: u64 = 0x8000_0000;
const CODE_BASE: u64 = 0x0040_0000;

/// Size of one loop body in the code-footprint model.
const LOOP_BODY_BYTES: u32 = 1024;

#[derive(Debug, Clone)]
enum SiteKind {
    /// Loop back-edge: not-taken once every `period` executions.
    Loop { period: u32, counter: u32 },
    /// Strongly biased branch.
    Biased { p_taken: f64 },
    /// Hard-to-predict branch: flips its last outcome with a phase-scaled
    /// probability.
    Hard { last: bool },
}

#[derive(Debug, Clone)]
struct BranchSite {
    kind: SiteKind,
}

/// Deterministic generator of synthetic instruction traces.
///
/// Implements [`Iterator`] over [`Instruction`]; yields exactly
/// `total_instructions` items. The stream is a pure function of
/// `(benchmark, total_instructions, seed)` — machine configuration never
/// feeds back, so every design point replays the same "code base".
///
/// # Examples
///
/// ```
/// use dynawave_workloads::{Benchmark, TraceGenerator};
/// let n: usize = TraceGenerator::new(Benchmark::Swim, 5000, 1).count();
/// assert_eq!(n, 5000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    total: u64,
    index: u64,
    rng: Rng,
    // Instruction-mix CDF over OpClass::ALL order.
    mix_cdf: [f64; 7],
    sites: Vec<BranchSite>,
    // Code walk: execution cycles inside a loop body for a number of
    // iterations, then moves on to another region of the code.
    pc: u64,
    #[allow(dead_code)] // retained for diagnostics; loops derive from it
    code_bytes: u64,
    loop_start: u64,
    loop_len: u64,
    loop_iters_left: u32,
    // Zipf CDF over static loop bodies (code footprint model).
    loop_cdf: Vec<f64>,
    // Streaming pointer.
    stream_ptr: u64,
    // Spatial-locality cursors: most accesses continue near the previous
    // access of the same region (structure walks), occasionally jumping.
    hot_cursor: u64,
    warm_cursor: u64,
    cold_cursor: u64,
    // Cached phase knobs.
    knob_mem: f64,
    knob_ilp: f64,
    knob_branch: f64,
    knob_dead: f64,
}

impl TraceGenerator {
    /// Creates a generator for `benchmark` producing `total_instructions`
    /// instructions, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `total_instructions == 0`.
    pub fn new(benchmark: Benchmark, total_instructions: u64, seed: u64) -> Self {
        Self::from_profile(benchmark.profile(), total_instructions, seed)
    }

    /// Creates a generator from an explicit profile (custom workloads).
    ///
    /// # Panics
    ///
    /// Panics if `total_instructions == 0`.
    pub fn from_profile(profile: BenchmarkProfile, total_instructions: u64, seed: u64) -> Self {
        assert!(total_instructions > 0, "empty trace requested");
        let mut rng = Rng::from_label(seed, profile.name);
        let mix = &profile.mix;
        let weights = [
            mix.int_alu,
            mix.int_mul,
            mix.fp_alu,
            mix.fp_mul,
            mix.load,
            mix.store,
            mix.branch,
        ];
        let total_w: f64 = weights.iter().sum();
        let mut mix_cdf = [0.0; 7];
        let mut acc = 0.0;
        for (c, w) in mix_cdf.iter_mut().zip(weights) {
            acc += w / total_w;
            *c = acc;
        }
        let sites = build_sites(&profile, &mut rng);
        let code_bytes = u64::from(profile.code_kb) * 1024;
        // Zipf(0.9) weights over fixed-size loop bodies tiling the code.
        let n_loops = (code_bytes / u64::from(LOOP_BODY_BYTES)).max(1) as usize;
        let mut loop_cdf = Vec::with_capacity(n_loops);
        let mut acc = 0.0f64;
        for k in 0..n_loops {
            acc += 1.0 / ((k + 1) as f64).powf(0.9);
            loop_cdf.push(acc);
        }
        let mut gen = TraceGenerator {
            profile,
            total: total_instructions,
            index: 0,
            rng,
            mix_cdf,
            sites,
            pc: CODE_BASE,
            code_bytes,
            loop_start: CODE_BASE,
            loop_len: 256,
            loop_iters_left: 8,
            loop_cdf,
            stream_ptr: STREAM_BASE,
            hot_cursor: 0,
            warm_cursor: 0,
            cold_cursor: 0,
            knob_mem: 1.0,
            knob_ilp: 1.0,
            knob_branch: 1.0,
            knob_dead: 1.0,
        };
        gen.refresh_knobs();
        gen
    }

    /// Total number of instructions this generator will yield.
    pub fn total_instructions(&self) -> u64 {
        self.total
    }

    /// Number of instructions already yielded.
    pub fn position(&self) -> u64 {
        self.index
    }

    /// The profile driving the generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn refresh_knobs(&mut self) {
        let t = self.index as f64 / self.total as f64;
        let s = &self.profile.signals;
        self.knob_mem = s.memory.value(t);
        self.knob_ilp = s.ilp.value(t);
        self.knob_branch = s.branch.value(t);
        self.knob_dead = s.deadness.value(t);
    }

    fn sample_class(&mut self) -> OpClass {
        let r: f64 = self.rng.next_f64();
        for (i, &c) in self.mix_cdf.iter().enumerate() {
            if r < c {
                return OpClass::ALL[i];
            }
        }
        OpClass::IntAlu
    }

    fn sample_dep(&mut self) -> u16 {
        // Geometric-ish distance with phase-scaled mean; 1 is the minimum
        // (depend on the immediately preceding instruction).
        let mean = (self.profile.mean_dep_distance * self.knob_ilp.powf(1.3)).max(1.0);
        let d = 1.0 + self.rng.exponential(mean);
        d.min(f64::from(MAX_DEP)) as u16
    }

    fn sample_address(&mut self) -> u64 {
        let m = &self.profile.memory;
        // Phase knob shifts weight toward cold/stream accesses. The
        // square amplifies the phase swing so that cache pressure (and
        // with it CPI/power/AVF) moves by integer factors across phases,
        // matching the wide intra-trace dynamics of the paper's Figure 1.
        let pressure = self.knob_mem * self.knob_mem;
        let w_hot = m.p_hot;
        let w_warm = m.p_warm;
        let w_cold = m.p_cold * pressure;
        let w_stream = (1.0 - m.p_hot - m.p_warm - m.p_cold).max(0.0) * pressure;
        let total = w_hot + w_warm + w_cold + w_stream;
        let r: f64 = self.rng.next_f64() * total;
        // Structure walks: usually advance the region cursor a few words,
        // occasionally jump to a fresh spot. This gives the address stream
        // the spatial locality real data structures have.
        let walk = |cursor: &mut u64, kb: u32, p_jump: f64, rng: &mut Rng| -> u64 {
            let span = (u64::from(kb) * 1024).max(8);
            if rng.next_bool_with(p_jump) {
                *cursor = rng.range_u64(0, span / 8) * 8;
            } else {
                *cursor = (*cursor + rng.range_u64(1, 9) * 8) % span;
            }
            *cursor
        };
        if r < w_hot {
            let (hot_kb, mut cur) = (m.hot_kb, self.hot_cursor);
            let off = walk(&mut cur, hot_kb, 0.30, &mut self.rng);
            self.hot_cursor = cur;
            HOT_BASE + off
        } else if r < w_hot + w_warm {
            let (warm_kb, mut cur) = (m.warm_kb, self.warm_cursor);
            let off = walk(&mut cur, warm_kb, 0.20, &mut self.rng);
            self.warm_cursor = cur;
            WARM_BASE + off
        } else if r < w_hot + w_warm + w_cold {
            let (cold_kb, mut cur) = (m.cold_kb, self.cold_cursor);
            let off = walk(&mut cur, cold_kb, 0.25, &mut self.rng);
            self.cold_cursor = cur;
            COLD_BASE + off
        } else {
            self.stream_ptr += u64::from(m.stream_stride);
            // Wrap the stream within 64 MB so addresses stay bounded.
            if self.stream_ptr >= STREAM_BASE + (64 << 20) {
                self.stream_ptr = STREAM_BASE;
            }
            self.stream_ptr
        }
    }

    fn branch_outcome(&mut self, pc: u64) -> bool {
        let site_idx = (dynawave_numeric::rng::splitmix64(pc) as usize) % self.sites.len();
        let flip_scale = self.knob_branch;
        let hard_flip = (self.profile.branch.hard_flip * flip_scale).clamp(0.0, 0.5);
        let site = &mut self.sites[site_idx];
        match &mut site.kind {
            SiteKind::Loop { period, counter } => {
                *counter += 1;
                if *counter >= *period {
                    *counter = 0;
                    false
                } else {
                    true
                }
            }
            SiteKind::Biased { p_taken } => self.rng.next_bool_with(*p_taken),
            SiteKind::Hard { last } => {
                if self.rng.next_bool_with(hard_flip) {
                    *last = !*last;
                }
                *last
            }
        }
    }

    /// Loop-centric code walk: the PC streams through the current loop
    /// body and wraps back until the iteration budget is spent, then hops
    /// to another body drawn from a static, Zipf-weighted loop population
    /// covering the whole code footprint. Hot bodies re-execute often (and
    /// stay cache-resident); the tail sweeps the rest of the footprint, so
    /// instruction-cache capacity gates how much of the reuse is captured.
    fn advance_pc(&mut self, _branch_taken: bool) {
        self.pc += 4;
        if self.pc >= self.loop_start + self.loop_len {
            if self.loop_iters_left > 0 {
                self.loop_iters_left -= 1;
                self.pc = self.loop_start;
            } else {
                let idx = self.rng.index_from_cdf(&self.loop_cdf);
                let body = u64::from(LOOP_BODY_BYTES);
                self.loop_start = CODE_BASE + idx as u64 * body;
                self.loop_len = self.rng.range_u64(8, body / 4) * 4;
                self.loop_iters_left = self.rng.range_u32(2, 24);
                self.pc = self.loop_start;
            }
        }
    }
}

fn build_sites(profile: &BenchmarkProfile, rng: &mut Rng) -> Vec<BranchSite> {
    let b = &profile.branch;
    (0..b.sites.max(1))
        .map(|_| {
            let r: f64 = rng.next_f64();
            let kind = if r < b.loop_fraction {
                let spread = (b.mean_loop_period / 2).max(1);
                let period = b.mean_loop_period - spread / 2 + rng.range_u32(0, spread);
                SiteKind::Loop {
                    period: period.max(2),
                    counter: rng.range_u32(0, period.max(2)),
                }
            } else if r < b.loop_fraction + b.biased_fraction {
                SiteKind::Biased { p_taken: b.bias }
            } else {
                SiteKind::Hard {
                    last: rng.next_bool(),
                }
            };
            BranchSite { kind }
        })
        .collect()
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.index >= self.total {
            return None;
        }
        if self.index % KNOB_REFRESH == 0 {
            self.refresh_knobs();
        }
        let pc = self.pc;
        let class = self.sample_class();
        let dep1 = self.sample_dep();
        let dep2 = if self.rng.next_bool() {
            self.sample_dep()
        } else {
            0
        };
        let addr = if class.is_memory() {
            self.sample_address()
        } else {
            0
        };
        let taken = if class == OpClass::Branch {
            self.branch_outcome(pc)
        } else {
            false
        };
        let dead_p = (self.profile.dead_fraction * self.knob_dead).clamp(0.0, 0.8);
        let dead = self.rng.next_bool_with(dead_p);
        self.advance_pc(class == OpClass::Branch && taken);
        self.index += 1;
        Some(Instruction {
            pc,
            class,
            dep1,
            dep2,
            addr,
            taken,
            dead,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.index) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceGenerator {}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(b: Benchmark, n: u64) -> Vec<Instruction> {
        TraceGenerator::new(b, n, 7).collect()
    }

    #[test]
    fn yields_exact_count() {
        assert_eq!(gen(Benchmark::Gcc, 1234).len(), 1234);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 2000, 3).collect();
        let b: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 2000, 3).collect();
        let c: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 2000, 4).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_fractions_are_respected() {
        let trace = gen(Benchmark::Gcc, 50_000);
        let branches = trace.iter().filter(|i| i.is_branch()).count() as f64;
        let loads = trace.iter().filter(|i| i.class == OpClass::Load).count() as f64;
        let n = trace.len() as f64;
        let mix = Benchmark::Gcc.profile().mix;
        let t = mix.total();
        assert!((branches / n - mix.branch / t).abs() < 0.02);
        assert!((loads / n - mix.load / t).abs() < 0.02);
    }

    #[test]
    fn memory_ops_have_addresses_others_do_not() {
        for i in gen(Benchmark::Swim, 5000) {
            if i.is_memory() {
                assert_ne!(i.addr, 0);
                assert_eq!(i.addr % 8, 0, "addresses are 8-byte aligned");
            } else {
                assert_eq!(i.addr, 0);
            }
        }
    }

    #[test]
    fn pcs_stay_in_code_region() {
        let code_bytes = u64::from(Benchmark::Gcc.profile().code_kb) * 1024;
        for i in gen(Benchmark::Gcc, 20_000) {
            assert!(i.pc >= CODE_BASE && i.pc < CODE_BASE + code_bytes);
            assert_eq!(i.pc % 4, 0);
        }
    }

    #[test]
    fn dead_fraction_is_plausible() {
        let trace = gen(Benchmark::Vortex, 50_000);
        let dead = trace.iter().filter(|i| i.dead).count() as f64 / trace.len() as f64;
        let base = Benchmark::Vortex.profile().dead_fraction;
        assert!(
            dead > base * 0.4 && dead < base * 2.5,
            "dead fraction {dead}"
        );
    }

    #[test]
    fn swim_is_more_predictable_than_gcc() {
        // Count branch-direction changes as a cheap predictability proxy.
        let changes = |b: Benchmark| {
            let outs: Vec<bool> = TraceGenerator::new(b, 100_000, 5)
                .filter(|i| i.is_branch())
                .map(|i| i.taken)
                .collect();
            outs.windows(2).filter(|w| w[0] != w[1]).count() as f64 / outs.len() as f64
        };
        assert!(changes(Benchmark::Swim) < changes(Benchmark::Gcc));
    }

    #[test]
    fn mcf_touches_more_distinct_lines_than_eon() {
        let lines = |b: Benchmark| {
            let mut set = std::collections::HashSet::new();
            for i in TraceGenerator::new(b, 100_000, 5) {
                if i.is_memory() {
                    set.insert(i.addr >> 6);
                }
            }
            set.len()
        };
        assert!(lines(Benchmark::Mcf) > 2 * lines(Benchmark::Eon));
    }

    #[test]
    fn dynamics_vary_over_the_interval() {
        // bzip2's square-wave memory knob should make cold-access density
        // differ between halves of the interval.
        let trace = gen(Benchmark::Gap, 200_000);
        let cold = |s: &[Instruction]| {
            s.iter()
                .filter(|i| i.addr >= COLD_BASE && i.addr < STREAM_BASE)
                .count() as f64
                / s.len() as f64
        };
        let n = trace.len();
        let quarters: Vec<f64> = trace.chunks(n / 4).take(4).map(cold).collect();
        let lo = quarters.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = quarters.iter().cloned().fold(0.0, f64::max);
        assert!(hi > lo * 1.3, "no temporal variation: {quarters:?}");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_length_panics() {
        let _ = TraceGenerator::new(Benchmark::Gcc, 0, 1);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut g = TraceGenerator::new(Benchmark::Eon, 10, 1);
        assert_eq!(g.size_hint(), (10, Some(10)));
        g.next();
        assert_eq!(g.size_hint(), (9, Some(9)));
    }
}
