//! Halton low-discrepancy sequences.
//!
//! The paper's space-filling metric (L2-star discrepancy) comes from the
//! scrambled-Halton literature (reference \[22\]); this module provides the
//! sequence itself as a deterministic alternative to Latin hypercube
//! sampling. Halton points are quasi-random: they fill the unit hypercube
//! progressively without clumping, and map onto the discrete design-space
//! levels exactly like the LHS sampler.

use crate::space::{DesignPoint, DesignSpace, Split};

/// The first 16 primes, used as per-dimension bases.
const PRIMES: [u32; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// The radical-inverse function of `index` in the given `base`.
///
/// # Panics
///
/// Panics if `base < 2`.
pub fn radical_inverse(mut index: u64, base: u32) -> f64 {
    assert!(base >= 2, "radical inverse needs base >= 2");
    let b = f64::from(base);
    let mut inv = 1.0 / b;
    let mut out = 0.0;
    while index > 0 {
        out += (index % u64::from(base)) as f64 * inv;
        index /= u64::from(base);
        inv /= b;
    }
    out
}

/// The `index`-th point (0-based) of the `dims`-dimensional Halton
/// sequence, in `[0, 1)^dims`. A leap offset of 20 skips the degenerate
/// opening runs of the higher-base components.
///
/// # Panics
///
/// Panics if `dims` exceeds the supported 16 dimensions.
pub fn halton_point(index: u64, dims: usize) -> Vec<f64> {
    assert!(
        dims <= PRIMES.len(),
        "halton sampler supports up to {} dimensions",
        PRIMES.len()
    );
    (0..dims)
        .map(|d| radical_inverse(index + 20, PRIMES[d]))
        .collect()
}

/// Draws `n` design points from the Halton sequence mapped onto the train
/// levels of `space`. `seed` selects the sequence offset so different
/// seeds give different (but individually low-discrepancy) designs.
///
/// # Panics
///
/// Panics if `n == 0` or the space has more than 16 dimensions.
pub fn sample(space: &DesignSpace, n: usize, seed: u64) -> Vec<DesignPoint> {
    assert!(n > 0, "cannot draw an empty design");
    let offset = seed % 1024;
    (0..n as u64)
        .map(|i| {
            let unit = halton_point(i + offset, space.dims());
            let values = unit
                .iter()
                .zip(space.parameters())
                .map(|(&u, p)| {
                    let levels = p.levels(Split::Train);
                    let idx = ((u * levels.len() as f64) as usize).min(levels.len() - 1);
                    levels[idx]
                })
                .collect();
            DesignPoint::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::l2_star_squared;
    use crate::DesignSpace;
    use dynawave_numeric::rng::Rng;

    #[test]
    fn radical_inverse_base2_bit_reversal() {
        assert_eq!(radical_inverse(0, 2), 0.0);
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(4, 2), 0.125);
    }

    #[test]
    fn points_in_unit_cube() {
        for i in 0..200 {
            for v in halton_point(i, 9) {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn lower_discrepancy_than_random() {
        let halton: Vec<Vec<f64>> = (0..64).map(|i| halton_point(i, 4)).collect();
        let mut rng = Rng::new(1);
        let random: Vec<Vec<f64>> = (0..64)
            .map(|_| (0..4).map(|_| rng.next_f64()).collect())
            .collect();
        assert!(
            l2_star_squared(&halton) < l2_star_squared(&random),
            "halton should beat random"
        );
    }

    #[test]
    fn sample_respects_levels_and_seed() {
        let space = DesignSpace::micro2007();
        let pts = sample(&space, 50, 3);
        assert_eq!(pts.len(), 50);
        for p in &pts {
            for (v, param) in p.values().iter().zip(space.parameters()) {
                assert!(param.train_levels().contains(v));
            }
        }
        assert_eq!(sample(&space, 50, 3), sample(&space, 50, 3));
        assert_ne!(sample(&space, 50, 3), sample(&space, 50, 4));
    }

    #[test]
    #[should_panic(expected = "up to 16 dimensions")]
    fn too_many_dims_panics() {
        let _ = halton_point(0, 17);
    }
}
