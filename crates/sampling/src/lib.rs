//! Microarchitecture design-space definition and sampling.
//!
//! The paper explores a design space of **9 microarchitectural parameters**
//! (Table 2) with discrete train/test levels, builds its 200-point training
//! set with a variant of **Latin Hypercube Sampling** and picks the most
//! space-filling of several candidate LHS matrices by **L2-star
//! discrepancy**; test points are sampled randomly and independently.
//!
//! * [`DesignSpace`] / [`Parameter`] — parameter names and discrete levels;
//!   [`DesignSpace::micro2007`] is the paper's Table 2.
//! * [`lhs::sample`] — best-of-`k` Latin hypercube over the train levels.
//! * [`discrepancy::l2_star`] — Warnock's formula.
//! * [`random::sample`] — uniform independent sampling (test sets, and the
//!   naive-sampling ablation).
//!
//! # Examples
//!
//! ```
//! use dynawave_sampling::{DesignSpace, lhs};
//!
//! let space = DesignSpace::micro2007();
//! assert_eq!(space.dims(), 9);
//! let train = lhs::sample(&space, 200, 42);
//! assert_eq!(train.len(), 200);
//! // Every coordinate is a legal train level.
//! for p in &train {
//!     for (v, param) in p.values().iter().zip(space.parameters()) {
//!         assert!(param.train_levels().contains(v));
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod discrepancy;
pub mod grid;
pub mod halton;
pub mod lhs;
pub mod random;
mod space;

pub use space::{DesignPoint, DesignSpace, Parameter, Split};
