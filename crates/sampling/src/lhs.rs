//! Latin hypercube sampling over the discrete design-space levels.

use crate::discrepancy::l2_star_squared;
use crate::space::{DesignPoint, DesignSpace, Split};
use dynawave_numeric::rng::Rng;

/// Number of candidate LHS matrices generated per [`sample`] call; the one
/// with the lowest L2-star discrepancy wins (the paper's strategy).
pub const DEFAULT_CANDIDATES: usize = 8;

/// Draws an `n`-point Latin hypercube design over the **train** levels of
/// `space`, deterministically from `seed`.
///
/// [`DEFAULT_CANDIDATES`] independent LHS matrices are generated and the
/// one with the lowest [`l2_star_squared`] discrepancy (in unit
/// coordinates) is returned.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample(space: &DesignSpace, n: usize, seed: u64) -> Vec<DesignPoint> {
    sample_with_candidates(space, n, seed, DEFAULT_CANDIDATES)
}

/// As [`sample`], with an explicit candidate-matrix count (`>= 1`).
///
/// # Panics
///
/// Panics if `n == 0` or `candidates == 0`.
pub fn sample_with_candidates(
    space: &DesignSpace,
    n: usize,
    seed: u64,
    candidates: usize,
) -> Vec<DesignPoint> {
    assert!(n > 0, "cannot draw an empty design");
    assert!(candidates > 0, "need at least one candidate matrix");
    let mut rng = Rng::new(seed);
    let mut unit = lhs_unit(space.dims(), n, &mut rng);
    let mut best_disc = l2_star_squared(&unit);
    for _ in 1..candidates {
        let trial = lhs_unit(space.dims(), n, &mut rng);
        let disc = l2_star_squared(&trial);
        if disc < best_disc {
            best_disc = disc;
            unit = trial;
        }
    }
    unit.into_iter()
        .map(|row| unit_to_point(space, &row))
        .collect()
}

/// One raw LHS matrix in `[0, 1)^d`: each dimension is an independent
/// random permutation of `n` jittered strata.
fn lhs_unit(dims: usize, n: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let mut strata: Vec<f64> = (0..n)
            .map(|i| (i as f64 + rng.next_f64()) / n as f64)
            .collect();
        rng.shuffle(&mut strata);
        cols.push(strata);
    }
    (0..n)
        .map(|i| cols.iter().map(|c| c[i]).collect())
        .collect()
}

/// Maps unit coordinates onto the nearest discrete train level per
/// dimension (equal-width strata per level).
fn unit_to_point(space: &DesignSpace, unit: &[f64]) -> DesignPoint {
    let values = unit
        .iter()
        .zip(space.parameters())
        .map(|(&u, p)| {
            let levels = p.levels(Split::Train);
            let idx = ((u * levels.len() as f64) as usize).min(levels.len() - 1);
            levels[idx]
        })
        .collect();
    DesignPoint::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignSpace;

    #[test]
    fn deterministic_from_seed() {
        let space = DesignSpace::micro2007();
        let a = sample(&space, 50, 7);
        let b = sample(&space, 50, 7);
        assert_eq!(a, b);
        let c = sample(&space, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn values_are_train_levels() {
        let space = DesignSpace::micro2007();
        for p in sample(&space, 64, 1) {
            for (v, param) in p.values().iter().zip(space.parameters()) {
                assert!(
                    param.train_levels().contains(v),
                    "{v} not a level of {}",
                    param.name()
                );
            }
        }
    }

    #[test]
    fn levels_are_balanced() {
        // With n a multiple of the level count, LHS hits each level an
        // equal number of times per dimension.
        let space = DesignSpace::micro2007();
        let n = 60; // divisible by 3, 4 and 5
        let pts = sample(&space, n, 3);
        for (dim, param) in space.parameters().iter().enumerate() {
            let levels = param.train_levels();
            let per_level = n / levels.len();
            for &level in levels {
                let count = pts.iter().filter(|p| p.value(dim) == level).count();
                assert_eq!(
                    count,
                    per_level,
                    "level {level} of {} hit {count} times, expected {per_level}",
                    param.name()
                );
            }
        }
    }

    #[test]
    fn more_candidates_never_worse() {
        let space = DesignSpace::micro2007();
        let disc = |pts: &[crate::DesignPoint]| {
            let unit: Vec<Vec<f64>> = pts
                .iter()
                .map(|p| space.to_unit(p, crate::Split::Train))
                .collect();
            l2_star_squared(&unit)
        };
        let one = sample_with_candidates(&space, 40, 5, 1);
        let many = sample_with_candidates(&space, 40, 5, 16);
        // The 16-candidate draw includes the 1-candidate matrix, so its
        // discrepancy can only be <=.
        assert!(disc(&many) <= disc(&one) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty design")]
    fn zero_points_panics() {
        let space = DesignSpace::micro2007();
        let _ = sample(&space, 0, 1);
    }
}
