//! Parameter and design-space definitions.

use std::fmt;

/// Which level set of a [`Parameter`] to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Levels used to build training designs.
    Train,
    /// Levels used to build independent test designs.
    Test,
}

/// One microarchitectural design parameter with discrete train/test levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    name: &'static str,
    train: Vec<f64>,
    test: Vec<f64>,
}

impl Parameter {
    /// Creates a parameter.
    ///
    /// # Panics
    ///
    /// Panics if either level list is empty.
    pub fn new(name: &'static str, train: Vec<f64>, test: Vec<f64>) -> Self {
        assert!(!train.is_empty(), "parameter {name} has no train levels");
        assert!(!test.is_empty(), "parameter {name} has no test levels");
        Parameter { name, train, test }
    }

    /// Parameter name (e.g. `"Fetch_width"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Levels available for training designs.
    pub fn train_levels(&self) -> &[f64] {
        &self.train
    }

    /// Levels available for test designs.
    pub fn test_levels(&self) -> &[f64] {
        &self.test
    }

    /// Levels for the given split.
    pub fn levels(&self, split: Split) -> &[f64] {
        match split {
            Split::Train => &self.train,
            Split::Test => &self.test,
        }
    }
}

/// An ordered collection of [`Parameter`]s spanning the explored space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    parameters: Vec<Parameter>,
}

impl DesignSpace {
    /// Builds a design space from a parameter list.
    ///
    /// # Panics
    ///
    /// Panics if `parameters` is empty.
    pub fn new(parameters: Vec<Parameter>) -> Self {
        assert!(!parameters.is_empty(), "design space needs >= 1 parameter");
        DesignSpace { parameters }
    }

    /// The paper's Table 2: the 9-parameter SPEC CPU 2000 design space.
    ///
    /// Cache sizes are in KB, latencies in cycles, everything else in
    /// entries or slots.
    pub fn micro2007() -> Self {
        DesignSpace::new(vec![
            Parameter::new("Fetch_width", vec![2.0, 4.0, 8.0, 16.0], vec![2.0, 8.0]),
            Parameter::new("ROB_size", vec![96.0, 128.0, 160.0], vec![128.0, 160.0]),
            Parameter::new("IQ_size", vec![32.0, 64.0, 96.0, 128.0], vec![32.0, 64.0]),
            Parameter::new(
                "LSQ_size",
                vec![16.0, 24.0, 32.0, 64.0],
                vec![16.0, 24.0, 32.0],
            ),
            Parameter::new(
                "L2_size",
                vec![256.0, 1024.0, 2048.0, 4096.0],
                vec![256.0, 1024.0, 4096.0],
            ),
            Parameter::new(
                "L2_lat",
                vec![8.0, 12.0, 14.0, 16.0, 20.0],
                vec![8.0, 12.0, 14.0],
            ),
            Parameter::new(
                "il1_size",
                vec![8.0, 16.0, 32.0, 64.0],
                vec![8.0, 16.0, 32.0],
            ),
            Parameter::new(
                "dl1_size",
                vec![8.0, 16.0, 32.0, 64.0],
                vec![16.0, 32.0, 64.0],
            ),
            Parameter::new("dl1_lat", vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 2.0, 3.0]),
        ])
    }

    /// Table 2 extended with the `DVM` parameter the §5 case study adds
    /// ("we built workload dynamics predictive models which incorporate
    /// DVM as a new design parameter"). The value encodes the policy's
    /// trigger threshold; `0` disables the policy. The paper's default
    /// target is 0.3.
    pub fn micro2007_with_dvm() -> Self {
        Self::micro2007_with_dvm_threshold(0.3)
    }

    /// As [`DesignSpace::micro2007_with_dvm`] with an explicit DVM trigger
    /// threshold (Figure 19 evaluates 0.2, 0.3 and 0.5).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < threshold <= 1.0`.
    pub fn micro2007_with_dvm_threshold(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "DVM threshold must be in (0, 1]"
        );
        let mut s = Self::micro2007();
        s.parameters.push(Parameter::new(
            "DVM",
            vec![0.0, threshold],
            vec![0.0, threshold],
        ));
        s
    }

    /// Number of parameters (input dimensionality of the predictors).
    pub fn dims(&self) -> usize {
        self.parameters.len()
    }

    /// The parameters, in feature order.
    pub fn parameters(&self) -> &[Parameter] {
        &self.parameters
    }

    /// Index of a parameter by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.parameters.iter().position(|p| p.name() == name)
    }

    /// Total number of distinct configurations in the given split's grid.
    pub fn grid_size(&self, split: Split) -> usize {
        self.parameters
            .iter()
            .map(|p| p.levels(split).len())
            .product()
    }

    /// Maps a point's concrete values to `[0, 1]^d` unit coordinates using
    /// the *rank* of each value among the split's levels (centered:
    /// `(rank + 0.5) / levels`). Values not exactly on a level snap to the
    /// nearest level first.
    pub fn to_unit(&self, point: &DesignPoint, split: Split) -> Vec<f64> {
        point
            .values()
            .iter()
            .zip(&self.parameters)
            .map(|(&v, p)| {
                let levels = p.levels(split);
                let rank = nearest_level_index(levels, v);
                (rank as f64 + 0.5) / levels.len() as f64
            })
            .collect()
    }
}

fn nearest_level_index(levels: &[f64], v: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &l) in levels.iter().enumerate() {
        let d = (l - v).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// A concrete configuration: one value per parameter, in the design
/// space's parameter order.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    values: Vec<f64>,
}

impl DesignPoint {
    /// Wraps concrete parameter values.
    pub fn new(values: Vec<f64>) -> Self {
        DesignPoint { values }
    }

    /// The parameter values, in design-space order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the parameter at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// Consumes the point, returning the raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f64>> for DesignPoint {
    fn from(values: Vec<f64>) -> Self {
        DesignPoint::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape() {
        let s = DesignSpace::micro2007();
        assert_eq!(s.dims(), 9);
        let p = &s.parameters()[0];
        assert_eq!(p.name(), "Fetch_width");
        assert_eq!(p.train_levels(), &[2.0, 4.0, 8.0, 16.0]);
        assert_eq!(p.test_levels(), &[2.0, 8.0]);
        assert_eq!(s.index_of("dl1_lat"), Some(8));
        assert_eq!(s.index_of("bogus"), None);
    }

    #[test]
    fn grid_sizes_match_table2_levels() {
        let s = DesignSpace::micro2007();
        // 4*3*4*4*4*5*4*4*4 train combinations
        assert_eq!(s.grid_size(Split::Train), 4 * 3 * 4 * 4 * 4 * 5 * 4 * 4 * 4);
        assert_eq!(s.grid_size(Split::Test), 2 * 2 * 2 * 3 * 3 * 3 * 3 * 3 * 3);
    }

    #[test]
    fn dvm_space_has_ten_dims() {
        let s = DesignSpace::micro2007_with_dvm();
        assert_eq!(s.dims(), 10);
        assert_eq!(s.parameters()[9].name(), "DVM");
    }

    #[test]
    fn unit_mapping_centers_ranks() {
        let s = DesignSpace::new(vec![Parameter::new(
            "p",
            vec![10.0, 20.0, 30.0, 40.0],
            vec![10.0],
        )]);
        let u = s.to_unit(&DesignPoint::new(vec![20.0]), Split::Train);
        assert!((u[0] - 0.375).abs() < 1e-12);
        // Off-grid values snap to the nearest level.
        let u = s.to_unit(&DesignPoint::new(vec![24.0]), Split::Train);
        assert!((u[0] - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no train levels")]
    fn empty_levels_panic() {
        let _ = Parameter::new("x", vec![], vec![1.0]);
    }

    #[test]
    fn display_point() {
        let p = DesignPoint::new(vec![1.0, 2.0]);
        assert_eq!(p.to_string(), "[1, 2]");
    }
}
