//! L2-star discrepancy (Warnock's formula).
//!
//! The paper generates multiple candidate LHS matrices and keeps the one
//! with the lowest L2-star discrepancy — a space-filling quality metric
//! over the unit hypercube (paper reference \[22\]).

/// Computes the squared L2-star discrepancy of `points` in `[0, 1]^d`
/// using Warnock's closed form:
///
/// ```text
/// D*² = 3⁻ᵈ − (2/N) Σᵢ Πⱼ (1 − xᵢⱼ²)/2 + (1/N²) ΣᵢΣₖ Πⱼ (1 − max(xᵢⱼ, xₖⱼ))
/// ```
///
/// Lower is better (more uniform). Cost is `O(N² d)`.
///
/// # Panics
///
/// Panics if `points` is empty or the rows have inconsistent lengths.
///
/// # Examples
///
/// ```
/// use dynawave_sampling::discrepancy::l2_star_squared;
/// // A centered single point is the best 1-point design.
/// let centered = l2_star_squared(&[vec![0.5]]);
/// let cornered = l2_star_squared(&[vec![0.99]]);
/// assert!(centered < cornered);
/// ```
pub fn l2_star_squared(points: &[Vec<f64>]) -> f64 {
    assert!(!points.is_empty(), "discrepancy of an empty design");
    let d = points[0].len();
    let n = points.len() as f64;
    let mut second = 0.0;
    for p in points {
        assert_eq!(p.len(), d, "inconsistent point dimensionality");
        let mut prod = 1.0;
        for &x in p {
            prod *= (1.0 - x * x) / 2.0;
        }
        second += prod;
    }
    let mut third = 0.0;
    for a in points {
        for b in points {
            let mut prod = 1.0;
            for (&x, &y) in a.iter().zip(b) {
                prod *= 1.0 - x.max(y);
            }
            third += prod;
        }
    }
    (3.0f64).powi(-(d as i32)) - (2.0 / n) * second + third / (n * n)
}

/// Square root of [`l2_star_squared`], clamped at zero against rounding.
///
/// # Panics
///
/// As for [`l2_star_squared`].
pub fn l2_star(points: &[Vec<f64>]) -> f64 {
    l2_star_squared(points).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_beats_clustered() {
        let grid: Vec<Vec<f64>> = (0..16).map(|i| vec![(i as f64 + 0.5) / 16.0]).collect();
        let clustered: Vec<Vec<f64>> = (0..16).map(|i| vec![0.1 + 0.01 * i as f64]).collect();
        assert!(l2_star(&grid) < l2_star(&clustered));
    }

    #[test]
    fn known_value_single_point_1d() {
        // D*² for {x} in 1-D: 1/3 - (1 - x²) + (1 - x)
        let x: f64 = 0.3;
        let expected = 1.0 / 3.0 - (1.0 - x * x) + (1.0 - x);
        assert!((l2_star_squared(&[vec![x]]) - expected).abs() < 1e-12);
    }

    #[test]
    fn discrepancy_nonnegative_for_reasonable_sets() {
        let pts: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![(i % 4) as f64 / 4.0 + 0.1, (i / 4) as f64 / 2.0 + 0.2])
            .collect();
        assert!(l2_star_squared(&pts) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "empty design")]
    fn empty_panics() {
        let _ = l2_star(&[]);
    }
}
