//! Independent uniform sampling of discrete design points.

use crate::space::{DesignPoint, DesignSpace, Split};
use dynawave_numeric::rng::Rng;

/// Draws `n` design points with each parameter sampled uniformly and
/// independently from the levels of the chosen [`Split`].
///
/// This is how the paper builds its **test** sets ("a randomly and
/// independently generated set of test data points"); with
/// [`Split::Train`] it doubles as the naive-sampling baseline for the
/// LHS ablation study.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample(space: &DesignSpace, n: usize, split: Split, seed: u64) -> Vec<DesignPoint> {
    assert!(n > 0, "cannot draw an empty design");
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let values = space
                .parameters()
                .iter()
                .map(|p| {
                    let levels = p.levels(split);
                    levels[rng.range_usize(0, levels.len())]
                })
                .collect();
            DesignPoint::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignSpace;

    #[test]
    fn test_split_uses_test_levels() {
        let space = DesignSpace::micro2007();
        for p in sample(&space, 100, Split::Test, 11) {
            for (v, param) in p.values().iter().zip(space.parameters()) {
                assert!(param.test_levels().contains(v));
            }
        }
    }

    #[test]
    fn train_split_uses_train_levels() {
        let space = DesignSpace::micro2007();
        for p in sample(&space, 100, Split::Train, 11) {
            for (v, param) in p.values().iter().zip(space.parameters()) {
                assert!(param.train_levels().contains(v));
            }
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let space = DesignSpace::micro2007();
        assert_eq!(
            sample(&space, 10, Split::Test, 1),
            sample(&space, 10, Split::Test, 1)
        );
        assert_ne!(
            sample(&space, 10, Split::Test, 1),
            sample(&space, 10, Split::Test, 2)
        );
    }

    #[test]
    fn covers_all_levels_eventually() {
        let space = DesignSpace::micro2007();
        let pts = sample(&space, 500, Split::Train, 3);
        for (dim, param) in space.parameters().iter().enumerate() {
            for &level in param.train_levels() {
                assert!(
                    pts.iter().any(|p| p.value(dim) == level),
                    "level {level} of {} never drawn in 500 samples",
                    param.name()
                );
            }
        }
    }
}
