//! Exhaustive (full-factorial) enumeration of a design space's grid.
//!
//! The Table 2 train grid has 245,760 configurations — far too many to
//! simulate, which is the paper's whole point, but cheap to *enumerate*
//! for the predictive models: a trained
//! [`WaveletNeuralPredictor`](https://docs.rs/dynawave-core) can score
//! every single configuration in seconds. This module provides a lazy
//! iterator over the full grid.

use crate::space::{DesignPoint, DesignSpace, Split};

/// Lazy iterator over every configuration of a design space's grid.
///
/// Points are produced in mixed-radix counter order: the **last**
/// parameter varies fastest.
#[derive(Debug, Clone)]
pub struct FullFactorial<'a> {
    space: &'a DesignSpace,
    split: Split,
    counter: Vec<usize>,
    remaining: usize,
}

/// Enumerates the full grid of `space` for the given split.
///
/// # Examples
///
/// ```
/// use dynawave_sampling::{grid, DesignSpace, Split};
/// let space = DesignSpace::micro2007();
/// let n = grid::full_factorial(&space, Split::Test).count();
/// assert_eq!(n, space.grid_size(Split::Test));
/// ```
pub fn full_factorial(space: &DesignSpace, split: Split) -> FullFactorial<'_> {
    FullFactorial {
        space,
        split,
        counter: vec![0; space.dims()],
        remaining: space.grid_size(split),
    }
}

impl Iterator for FullFactorial<'_> {
    type Item = DesignPoint;

    fn next(&mut self) -> Option<DesignPoint> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let values = self
            .counter
            .iter()
            .zip(self.space.parameters())
            .map(|(&idx, p)| p.levels(self.split)[idx])
            .collect();
        // Increment the mixed-radix counter, last digit fastest.
        for (digit, param) in self.counter.iter_mut().zip(self.space.parameters()).rev() {
            *digit += 1;
            if *digit < param.levels(self.split).len() {
                break;
            }
            *digit = 0;
        }
        Some(DesignPoint::new(values))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for FullFactorial<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Parameter;
    use std::collections::HashSet;

    fn tiny_space() -> DesignSpace {
        DesignSpace::new(vec![
            Parameter::new("a", vec![1.0, 2.0], vec![1.0]),
            Parameter::new("b", vec![10.0, 20.0, 30.0], vec![10.0, 20.0]),
        ])
    }

    #[test]
    fn enumerates_all_unique_points() {
        let space = tiny_space();
        let pts: Vec<_> = full_factorial(&space, Split::Train).collect();
        assert_eq!(pts.len(), 6);
        let unique: HashSet<String> = pts.iter().map(|p| p.to_string()).collect();
        assert_eq!(unique.len(), 6);
        // Last parameter varies fastest.
        assert_eq!(pts[0].values(), &[1.0, 10.0]);
        assert_eq!(pts[1].values(), &[1.0, 20.0]);
        assert_eq!(pts[3].values(), &[2.0, 10.0]);
    }

    #[test]
    fn split_selects_levels() {
        let space = tiny_space();
        let pts: Vec<_> = full_factorial(&space, Split::Test).collect();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.value(0) == 1.0));
    }

    #[test]
    fn size_hint_is_exact() {
        let space = tiny_space();
        let mut it = full_factorial(&space, Split::Train);
        assert_eq!(it.len(), 6);
        it.next();
        assert_eq!(it.len(), 5);
    }

    #[test]
    fn micro2007_test_grid_matches_grid_size() {
        let space = crate::DesignSpace::micro2007();
        assert_eq!(
            full_factorial(&space, Split::Test).count(),
            space.grid_size(Split::Test)
        );
    }
}
