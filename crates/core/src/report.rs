//! Markdown report generation for experiment results.
//!
//! Turns a [`BenchmarkEvaluation`] (or a batch of them) into a
//! self-contained markdown document — the per-benchmark accuracy tables a
//! design-space-exploration campaign would archive next to its models.

use crate::dataset::Metric;
use crate::experiment::BenchmarkEvaluation;
use crate::recovery::DegradationReport;
use dynawave_numeric::stats::BoxplotSummary;
use std::fmt::Write as _;

/// Renders a model-health paragraph: one line for a pristine model, a
/// per-coefficient table of recovery rungs otherwise. Degradation must be
/// *visible* in the archived report, never silent.
pub fn degradation_section(report: &DegradationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Model health: {report}.\n");
    if !report.is_pristine() {
        let _ = writeln!(out, "| coefficient | rung | fit attempts |\n|---|---|---|");
        for r in report.records().iter().filter(|r| r.rung.level() > 0) {
            let _ = writeln!(
                out,
                "| {} | {} | {} |",
                r.coefficient,
                r.rung.name(),
                r.attempts
            );
        }
        out.push('\n');
    }
    out
}

/// Renders the per-stage "Pipeline profile" section from a traced run's
/// event stream (see `dynawave-obs`). Returns a note instead of a table
/// when the stream is empty (tracing was off), so callers can append it
/// unconditionally.
pub fn pipeline_profile_section(events: &[dynawave_obs::Event]) -> String {
    let profile = dynawave_obs::PipelineProfile::from_events(events);
    if profile.is_empty() {
        return String::from("Pipeline profile: tracing disabled (no events recorded).\n");
    }
    profile.render_markdown()
}

/// Renders the "Perf trajectory" section: the noise-aware diff of two
/// bench snapshots (`BENCH_*.json` texts in the obs schema), as produced
/// by the `compare_bench` tool. Archived campaign reports carry this
/// next to their accuracy tables so a perf regression is as visible as
/// an accuracy one. Returns an explanatory note instead of a table when
/// either snapshot fails to parse, so callers can append it
/// unconditionally.
pub fn perf_trajectory_section(
    base_label: &str,
    base_text: &str,
    new_label: &str,
    new_text: &str,
) -> String {
    let parsed = dynawave_obs::BenchSnapshot::parse(base_text)
        .map_err(|e| format!("{base_label}: {e}"))
        .and_then(|base| {
            dynawave_obs::BenchSnapshot::parse(new_text)
                .map(|new| (base, new))
                .map_err(|e| format!("{new_label}: {e}"))
        });
    match parsed {
        Ok((base, new)) => {
            let comparison = dynawave_obs::BenchComparison::compare(
                &base,
                &new,
                &dynawave_obs::CompareOptions::default(),
            );
            comparison.render_markdown(base_label, new_label)
        }
        Err(reason) => format!("Perf trajectory: unavailable ({reason}).\n"),
    }
}

/// Renders one evaluation as a markdown section.
pub fn evaluation_section(eval: &BenchmarkEvaluation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} / {} — {} test points\n",
        eval.benchmark,
        eval.metric,
        eval.nmse_per_test.len()
    );
    if let Ok(s) = BoxplotSummary::from_data(&eval.nmse_per_test) {
        let _ = writeln!(
            out,
            "| statistic | NMSE % |\n|---|---|\n\
             | median | {:.3} |\n| mean | {:.3} |\n| Q1 | {:.3} |\n\
             | Q3 | {:.3} |\n| max | {:.3} |\n| outliers | {} |\n",
            s.median,
            s.mean,
            s.q1,
            s.q3,
            eval.nmse_per_test.iter().cloned().fold(0.0f64, f64::max),
            s.outliers.len()
        );
    }
    let [q1, q2, q3] = eval.mean_asymmetry();
    let _ = writeln!(
        out,
        "Scenario classification (mean directional asymmetry): \
         Q1 {q1:.2} %, Q2 {q2:.2} %, Q3 {q3:.2} %.\n"
    );
    let _ = writeln!(
        out,
        "Predicted coefficients: {:?}\n",
        eval.model.coefficient_indices()
    );
    out.push_str(&degradation_section(&eval.degradation));
    out
}

/// Renders a batch of evaluations as one markdown document with a summary
/// table followed by per-evaluation sections.
pub fn full_report(title: &str, evals: &[BenchmarkEvaluation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}\n");
    let _ = writeln!(
        out,
        "| benchmark | metric | median NMSE % | mean NMSE % | Q2 asym % |\n|---|---|---|---|---|"
    );
    for e in evals {
        let [_, q2, _] = e.mean_asymmetry();
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} | {:.2} |",
            e.benchmark,
            e.metric,
            e.median_nmse(),
            e.mean_nmse(),
            q2
        );
    }
    out.push('\n');
    for e in evals {
        out.push_str(&evaluation_section(e));
    }
    out
}

/// Renders per-test-point rows as CSV (`benchmark,metric,point,nmse`).
pub fn csv_rows(evals: &[BenchmarkEvaluation]) -> String {
    let mut out = String::from("benchmark,metric,test_point,nmse_percent\n");
    for e in evals {
        for (i, v) in e.nmse_per_test.iter().enumerate() {
            let _ = writeln!(out, "{},{},{},{}", e.benchmark, e.metric, i, v);
        }
    }
    out
}

/// The metric names, for callers assembling multi-domain reports.
pub fn domain_names() -> [&'static str; 3] {
    [Metric::Cpi.name(), Metric::Power.name(), Metric::Avf.name()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate_benchmark, ExperimentConfig};
    use dynawave_workloads::Benchmark;

    fn tiny_eval() -> BenchmarkEvaluation {
        let cfg = ExperimentConfig {
            train_points: 25,
            test_points: 5,
            samples: 16,
            interval_instructions: 500,
            seed: 4,
            ..ExperimentConfig::default()
        };
        evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg).unwrap()
    }

    #[test]
    fn section_contains_key_numbers() {
        let e = tiny_eval();
        let text = evaluation_section(&e);
        assert!(text.contains("eon / cpi"));
        assert!(text.contains("median"));
        assert!(text.contains("Scenario classification"));
    }

    #[test]
    fn full_report_has_table_and_sections() {
        let e = tiny_eval();
        let doc = full_report("Smoke report", std::slice::from_ref(&e));
        assert!(doc.starts_with("# Smoke report"));
        assert!(doc.contains("| eon | cpi |"));
        assert!(doc.contains("### eon / cpi"));
    }

    #[test]
    fn csv_rows_one_per_test_point() {
        let e = tiny_eval();
        let csv = csv_rows(std::slice::from_ref(&e));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + e.nmse_per_test.len());
        assert!(lines[1].starts_with("eon,cpi,0,"));
    }

    #[test]
    fn pipeline_profile_section_renders_traced_run() {
        // Without events: an explicit "disabled" note.
        let off = pipeline_profile_section(&[]);
        assert!(off.contains("tracing disabled"));
        // With a traced evaluation: a per-stage table.
        let prior = dynawave_obs::take();
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
        let _e = tiny_eval();
        let events = dynawave_obs::drain().unwrap();
        if let Some(prior) = prior {
            dynawave_obs::install(prior);
        }
        let text = pipeline_profile_section(&events);
        assert!(text.contains("Pipeline profile"), "{text}");
        assert!(text.contains("| sim |"), "{text}");
        assert!(text.contains("| predictor |"), "{text}");
        assert!(text.contains("`sim.intervals_retired`"), "{text}");
    }

    #[test]
    fn perf_trajectory_section_diffs_snapshots_and_survives_bad_input() {
        let line = |name: &str, median: f64, min: f64, max: f64| {
            format!(
                "{{\"schema\":\"dynawave-obs\",\"v\":1,\"schema_version\":1,\
                 \"kind\":\"bench\",\"bench\":\"{name}\",\"median_ns\":{median},\
                 \"min_ns\":{min},\"max_ns\":{max},\"iters\":3,\"throughput_elems\":1}}"
            )
        };
        let base = line("sim/run_trace/64", 100.0, 95.0, 105.0);
        let new = line("sim/run_trace/64", 150.0, 145.0, 155.0);
        let text = perf_trajectory_section("seed", &base, "current", &new);
        assert!(text.contains("# Perf trajectory: seed → current"), "{text}");
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("+50.00%"), "{text}");
        // Deterministic render.
        assert_eq!(
            text,
            perf_trajectory_section("seed", &base, "current", &new)
        );
        // Unparseable input degrades to a note, not a panic.
        let bad = perf_trajectory_section("seed", "not json", "current", &new);
        assert!(bad.contains("Perf trajectory: unavailable"), "{bad}");
        assert!(bad.contains("seed"), "{bad}");
    }

    #[test]
    fn domain_names_are_stable() {
        assert_eq!(domain_names(), ["cpi", "power", "avf"]);
    }

    #[test]
    fn degradation_section_reports_health() {
        use crate::recovery::{CoeffRecovery, RecoveryRung};
        let healthy = DegradationReport::healthy(&[0, 1]);
        let text = degradation_section(&healthy);
        assert!(text.contains("2 primary"));
        assert!(!text.contains("| coefficient |"), "pristine needs no table");
        let degraded = DegradationReport::from_records(vec![
            CoeffRecovery {
                coefficient: 0,
                rung: RecoveryRung::Primary,
                attempts: 1,
            },
            CoeffRecovery {
                coefficient: 5,
                rung: RecoveryRung::MeanFallback,
                attempts: 6,
            },
        ]);
        let text = degradation_section(&degraded);
        assert!(text.contains("| 5 | mean-fallback | 6 |"), "{text}");
        assert!(
            !text.contains("| 0 |"),
            "healthy rows stay out of the table"
        );
    }
}
