//! `dynawave-serve`: the crash-safe DSE prediction daemon.
//!
//! Speaks the versioned `dynawave-serve` JSON-lines protocol on
//! stdin/stdout (one request line in, exactly one response line out; see
//! `dynawave_core::serve` and DESIGN.md §13). Responses are journaled to
//! a fingerprinted append-only log so a killed daemon can be replayed to
//! a byte-identical transcript:
//!
//! ```text
//! printf '%s\n' "$REQUESTS" | serve --journal serve.journal
//! serve --journal serve.journal --replay requests.jsonl   # after a crash
//! ```
//!
//! Chaos switches (`--chaos-seed`/`--chaos-rate`) inject seeded solver
//! faults into the model-acquisition path to exercise the recovery
//! ladder; `--chaos-journal` instead targets the journal append path to
//! exercise degraded durability. The two target sets are disjoint on
//! purpose: replay does not consult the journal fault site, so mixing
//! them in one plan would shift the shared fault-RNG stream between live
//! and replay runs.
//!
//! Model scale comes from the usual `DYNAWAVE_TRAIN` / `DYNAWAVE_TEST` /
//! `DYNAWAVE_SAMPLES` / `DYNAWAVE_INTERVAL` / `DYNAWAVE_SEED` env knobs;
//! `DYNAWAVE_TRACE=1` records an obs trace and emits it as JSON lines on
//! stderr at exit (stdout stays pure protocol).
//!
//! `--flight-recorder N` arms a bounded in-memory ring of the last N obs
//! events (no full tracing needed): on the first `internal`-class error —
//! or at shutdown, whichever comes first — the ring is dumped to stderr
//! as a valid obs stream, so a crashed daemon leaves a post-mortem
//! without the cost of always-on tracing. `--strict-recovery` disables
//! the recovery ladder (first training fault becomes a `train-failed`
//! internal error) — chiefly a chaos-testing aid for that dump path.

use dynawave_core::experiment::ExperimentConfig;
use dynawave_core::serve::{replay, ServeConfig, ServeEngine, ServeJournal};
use dynawave_core::RecoveryPolicy;
use dynawave_numeric::fault::{FaultKind, FaultPlan, FaultSite};
use std::io::BufRead as _;
use std::path::PathBuf;

struct Cli {
    serve: ServeConfig,
    journal: Option<PathBuf>,
    replay_log: Option<PathBuf>,
    chaos_seed: Option<u64>,
    chaos_rate: f64,
    chaos_journal: bool,
    flight_recorder: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--journal PATH] [--models DIR] [--deadline N] \
         [--capacity N] [--drain N] [--train-cost N] [--max-bytes N] \
         [--chaos-seed S] [--chaos-rate R] [--chaos-journal] \
         [--flight-recorder N] [--strict-recovery] \
         [--replay REQUEST_LOG]\n\
         Reads dynawave-serve v1 JSON-lines requests on stdin and writes \
         one response line per request on stdout.\n\
         --replay re-runs REQUEST_LOG against the journal at --journal, \
         verifies the surviving prefix byte-for-byte, and rewrites the \
         journal to the full transcript.\n\
         --flight-recorder keeps the last N obs events in memory and \
         dumps them to stderr on the first internal error or at shutdown."
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let config = match ExperimentConfig::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    let mut cli = Cli {
        serve: ServeConfig {
            config,
            ..ServeConfig::default()
        },
        journal: None,
        replay_log: None,
        chaos_seed: None,
        chaos_rate: 0.05,
        chaos_journal: false,
        flight_recorder: None,
    };
    // dynalint:allow(D004) -- CLI arguments are the daemon's intended input
    let mut argv = std::env::args().skip(1);
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        match argv.next() {
            Some(v) => v,
            None => {
                eprintln!("serve: {flag} needs a value");
                std::process::exit(2);
            }
        }
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--journal" => cli.journal = Some(PathBuf::from(value(&mut argv, "--journal"))),
            "--models" => cli.serve.models_dir = Some(PathBuf::from(value(&mut argv, "--models"))),
            "--replay" => cli.replay_log = Some(PathBuf::from(value(&mut argv, "--replay"))),
            "--deadline" => cli.serve.default_deadline = parse_u64(&value(&mut argv, "--deadline")),
            "--capacity" => cli.serve.queue_capacity = parse_u64(&value(&mut argv, "--capacity")),
            "--drain" => cli.serve.drain_per_request = parse_u64(&value(&mut argv, "--drain")),
            "--train-cost" => cli.serve.train_cost = parse_u64(&value(&mut argv, "--train-cost")),
            "--max-bytes" => {
                cli.serve.max_request_bytes = parse_u64(&value(&mut argv, "--max-bytes")) as usize
            }
            "--chaos-seed" => cli.chaos_seed = Some(parse_u64(&value(&mut argv, "--chaos-seed"))),
            "--chaos-rate" => {
                let raw = value(&mut argv, "--chaos-rate");
                match raw.parse::<f64>() {
                    Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => cli.chaos_rate = r,
                    _ => {
                        eprintln!("serve: --chaos-rate must be a probability, got '{raw}'");
                        std::process::exit(2);
                    }
                }
            }
            "--chaos-journal" => cli.chaos_journal = true,
            "--flight-recorder" => {
                cli.flight_recorder =
                    Some(parse_u64(&value(&mut argv, "--flight-recorder")) as usize)
            }
            "--strict-recovery" => cli.serve.config.recovery = RecoveryPolicy::strict(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve: unknown argument '{other}'");
                usage();
            }
        }
    }
    cli
}

fn parse_u64(raw: &str) -> u64 {
    match raw.parse::<u64>() {
        Ok(v) if v > 0 => v,
        _ => {
            eprintln!("serve: expected a positive integer, got '{raw}'");
            std::process::exit(2);
        }
    }
}

fn chaos_plan(cli: &Cli) -> Option<FaultPlan> {
    let seed = cli.chaos_seed?;
    let plan = if cli.chaos_journal {
        FaultPlan::new(seed)
            .rate(cli.chaos_rate)
            .targeting(&[FaultSite::JournalAppend])
            .kinds(&[FaultKind::EarlyStop])
    } else {
        FaultPlan::new(seed)
            .rate(cli.chaos_rate)
            .targeting(&FaultSite::SOLVER_SITES)
            .kinds(&[FaultKind::Singular, FaultKind::NonFinite])
    };
    Some(plan)
}

/// Dump the armed flight-recorder ring to stderr as an obs stream.
///
/// Stamps a `serve.flight_recorder` marker (with the dump reason and the
/// number of events the ring overwrote) before draining, so the dump is
/// self-describing. No-op when no recorder is installed; draining
/// uninstalls it, which is what makes "dump exactly once" cheap to
/// guarantee — a second call finds nothing.
fn dump_flight(reason: &str) {
    let dropped = match dynawave_obs::take() {
        Some(recorder) => {
            let dropped = recorder.dropped();
            dynawave_obs::install(recorder);
            dropped
        }
        None => return,
    };
    dynawave_obs::marker_with_detail(
        "serve.flight_recorder",
        &format!("reason={reason} dropped={dropped}"),
    );
    if let Some(events) = dynawave_obs::drain() {
        eprint!("{}", dynawave_obs::encode_lines(&events));
    }
}

/// Live mode: stdin requests -> stdout responses (+ journal).
///
/// `quiet` suppresses the human summary on stderr — set when tracing or
/// flight-recording, so the stderr channel stays a pure obs JSON-lines
/// stream. `flight` arms the first-internal-error dump check.
fn run_live(cli: &Cli, quiet: bool, flight: bool) -> i32 {
    let mut journal = match &cli.journal {
        None => None,
        Some(path) => match ServeJournal::create(path, &cli.serve) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("serve: cannot create journal {}: {e}", path.display());
                return 2;
            }
        },
    };
    let mut engine = ServeEngine::new(cli.serve.clone());
    if journal.is_some() {
        engine.note_journal_attached();
    }
    let mut journal_broken_noted = false;
    let mut flight_dumped = false;
    let stdin = std::io::stdin();
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("serve: stdin read failed: {e}");
                return 1;
            }
        };
        let response = engine.handle_line(&line);
        if let Some(j) = journal.as_mut() {
            j.append(&response);
            if j.is_broken() && !journal_broken_noted {
                engine.note_journal_broken();
                journal_broken_noted = true;
            }
        }
        if flight && !flight_dumped && engine.stats().internal_errors() > 0 {
            dump_flight("internal-error");
            flight_dumped = true;
        }
        if writeln!(out, "{response}").is_err() {
            // Reader went away; nothing left to serve.
            return 0;
        }
    }
    if flight && !flight_dumped {
        dump_flight("shutdown");
    }
    if !quiet {
        eprintln!(
            "serve: {} response(s), {} tick(s){}",
            engine.responses(),
            engine.tick(),
            match &journal {
                Some(j) if j.is_broken() => ", journal disabled by fault",
                _ => "",
            }
        );
    }
    0
}

/// Replay mode: re-run the request log, verify the journal prefix,
/// rewrite the full transcript, and print every response to stdout.
fn run_replay(cli: &Cli, log_path: &PathBuf, quiet: bool) -> i32 {
    let Some(journal_path) = &cli.journal else {
        eprintln!("serve: --replay needs --journal");
        return 2;
    };
    let request_log = match std::fs::read_to_string(log_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("serve: cannot read request log {}: {e}", log_path.display());
            return 2;
        }
    };
    match replay(cli.serve.clone(), &request_log, journal_path) {
        Ok(outcome) => {
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for r in &outcome.responses {
                if writeln!(out, "{r}").is_err() {
                    return 0;
                }
            }
            if !quiet {
                eprintln!(
                    "serve: replayed {} response(s), verified {} journaled line(s){}",
                    outcome.responses.len(),
                    outcome.verified,
                    if outcome.torn_tail {
                        ", dropped a torn tail"
                    } else {
                        ""
                    }
                );
            }
            0
        }
        Err(e) => {
            eprintln!("serve: replay failed: {e}");
            1
        }
    }
}

fn main() {
    let cli = parse_cli();
    // dynalint:allow(D004) -- opt-in tracing is part of the documented CLI
    let tracing = std::env::var("DYNAWAVE_TRACE").map(|v| v == "1") == Ok(true);
    // Full tracing supersedes the flight recorder: the complete stream
    // already contains everything the ring would keep.
    let flight = !tracing && cli.flight_recorder.is_some();
    if tracing {
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
    } else if let Some(capacity) = cli.flight_recorder {
        dynawave_obs::install(dynawave_obs::Recorder::flight_recorder(capacity));
    }
    let quiet = tracing || flight;
    let body = || match &cli.replay_log {
        Some(log) => run_replay(&cli, log, quiet),
        None => run_live(&cli, quiet, flight),
    };
    let code = match chaos_plan(&cli) {
        Some(plan) => {
            let (code, report) = dynawave_numeric::fault::with_plan(plan, body);
            if !quiet {
                eprintln!(
                    "serve: chaos plan fired {} of {} armed fault(s)",
                    report.fired, report.armed
                );
            }
            code
        }
        None => body(),
    };
    if tracing {
        if let Some(events) = dynawave_obs::drain() {
            eprint!("{}", dynawave_obs::encode_lines(&events));
        }
    } else if flight {
        // Replay mode (or an early live-mode exit) never reached the
        // in-loop dump; run_live's own shutdown dump already drained the
        // recorder, making this a no-op there.
        dump_flight("shutdown");
    }
    std::process::exit(code);
}
