//! Parameter-importance analysis for the Figure 11 star plots.
//!
//! The RBF networks' regression trees rank microarchitecture parameters
//! two ways (paper §4): **split order** (parameters that cause the most
//! output variation split earliest) and **split frequency** (they split
//! most often). This module aggregates those statistics across all
//! per-coefficient networks of a trained predictor into one spoke-length
//! vector per ranking — the data a star plot draws.

use crate::predictor::WaveletNeuralPredictor;

/// Star-plot data: one spoke length in `[0, 1]` per design parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct StarPlot {
    /// Parameter names, in design-space order.
    pub parameters: Vec<String>,
    /// Spoke lengths normalized so the longest spoke is 1.0.
    pub spokes: Vec<f64>,
}

impl StarPlot {
    /// Index of the dominant parameter.
    ///
    /// # Panics
    ///
    /// Panics if the plot has no spokes.
    pub fn dominant(&self) -> usize {
        assert!(!self.spokes.is_empty(), "empty star plot");
        self.spokes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Parameters sorted by decreasing spoke length.
    pub fn ranking(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .parameters
            .iter()
            .cloned()
            .zip(self.spokes.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let max = v.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for x in &mut v {
            *x /= max;
        }
    }
    v
}

/// Split-order star plot: spokes weight each parameter by how *early* the
/// regression trees split on it, aggregated over every per-coefficient
/// network, weighted by coefficient significance (most significant
/// coefficient first, weight `1/(rank+1)`).
///
/// Returns `None` if the predictor has no RBF networks (linear ablation).
pub fn split_order_star(
    model: &WaveletNeuralPredictor,
    parameter_names: &[&str],
) -> Option<StarPlot> {
    aggregate(model, parameter_names, |tree| tree.split_order_scores())
}

/// Split-frequency star plot: spokes count how *often* trees split on
/// each parameter. See [`split_order_star`] for weighting.
pub fn split_frequency_star(
    model: &WaveletNeuralPredictor,
    parameter_names: &[&str],
) -> Option<StarPlot> {
    aggregate(model, parameter_names, |tree| {
        tree.split_frequencies()
            .into_iter()
            .map(|c| c as f64)
            .collect()
    })
}

fn aggregate<F>(
    model: &WaveletNeuralPredictor,
    parameter_names: &[&str],
    score: F,
) -> Option<StarPlot>
where
    F: Fn(&dynawave_neural::RegressionTree) -> Vec<f64>,
{
    let networks = model.networks();
    if networks.is_empty() {
        return None;
    }
    let dims = parameter_names.len();
    let mut spokes = vec![0.0f64; dims];
    for (rank, net) in networks.iter().enumerate() {
        let tree = net.tree()?;
        let weight = 1.0 / (rank as f64 + 1.0);
        for (s, v) in spokes.iter_mut().zip(score(tree)) {
            *s += weight * v;
        }
    }
    Some(StarPlot {
        parameters: parameter_names.iter().map(|s| s.to_string()).collect(),
        spokes: normalize(spokes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Metric, TraceSet};
    use crate::predictor::{ModelKind, PredictorParams, WaveletNeuralPredictor};
    use dynawave_sampling::DesignPoint;
    use dynawave_workloads::Benchmark;

    /// Traces whose dynamics depend almost entirely on parameter 1.
    fn biased_set() -> TraceSet {
        let mut points = Vec::new();
        let mut traces = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                points.push(DesignPoint::new(vec![i as f64, j as f64]));
                traces.push(
                    (0..32)
                        .map(|s| 1.0 + j as f64 + 0.01 * i as f64 + 0.001 * s as f64)
                        .collect(),
                );
            }
        }
        TraceSet {
            benchmark: Benchmark::Gcc,
            metric: Metric::Cpi,
            points,
            traces,
        }
    }

    #[test]
    fn dominant_parameter_detected() {
        let model =
            WaveletNeuralPredictor::train(&biased_set(), &PredictorParams::default()).unwrap();
        let star = split_frequency_star(&model, &["p0", "p1"]).unwrap();
        assert_eq!(star.dominant(), 1, "spokes: {:?}", star.spokes);
        let order = split_order_star(&model, &["p0", "p1"]).unwrap();
        assert_eq!(order.dominant(), 1);
        // Spokes are normalized.
        assert!((star.spokes[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_sorted() {
        let model =
            WaveletNeuralPredictor::train(&biased_set(), &PredictorParams::default()).unwrap();
        let star = split_frequency_star(&model, &["p0", "p1"]).unwrap();
        let ranking = star.ranking();
        assert_eq!(ranking[0].0, "p1");
        assert!(ranking[0].1 >= ranking[1].1);
    }

    #[test]
    fn linear_model_has_no_star() {
        let params = PredictorParams {
            model: ModelKind::Linear,
            ..PredictorParams::default()
        };
        let model = WaveletNeuralPredictor::train(&biased_set(), &params).unwrap();
        assert!(split_order_star(&model, &["p0", "p1"]).is_none());
    }
}
