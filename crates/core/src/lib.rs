//! Wavelet neural networks for workload-dynamics-aware microarchitecture
//! design space exploration.
//!
//! This crate is the primary contribution of *"Informed Microarchitecture
//! Design Space Exploration using Workload Dynamics"* (Cho, Zhang & Li,
//! MICRO 2007), rebuilt as a Rust library on top of the workspace's
//! substrates:
//!
//! 1. Per-interval workload-dynamics traces (CPI / power / AVF over a
//!    sampled execution interval) come from the trace-driven simulator
//!    (`dynawave-sim` + `dynawave-power` + `dynawave-avf`) —
//!    [`collect_traces`].
//! 2. Each trace is decomposed with a discrete wavelet transform
//!    (`dynawave-wavelet`); a small set of **important coefficients** is
//!    selected magnitude-first.
//! 3. Every selected coefficient is predicted by its own RBF neural
//!    network (`dynawave-neural`) taking the 9-dimensional design vector
//!    as input — [`WaveletNeuralPredictor`].
//! 4. Predicted coefficients are inverse-transformed back into a
//!    time-domain dynamics forecast at unsimulated design points.
//!
//! The crate also packages the paper's evaluation machinery: normalized
//! MSE, directional symmetry / threshold scenario classification
//! ([`accuracy`]), parameter-importance star plots ([`importance`]),
//! hierarchical-clustering heat plots ([`cluster`]) and end-to-end
//! experiment drivers ([`experiment`]).
//!
//! # Examples
//!
//! Train on a few design points and forecast dynamics at a new one:
//!
//! ```no_run
//! use dynawave_core::{collect_traces, Metric, PredictorParams, WaveletNeuralPredictor};
//! use dynawave_sampling::{lhs, random, DesignSpace, Split};
//! use dynawave_sim::SimOptions;
//! use dynawave_workloads::Benchmark;
//!
//! let space = DesignSpace::micro2007();
//! let train_points = lhs::sample(&space, 40, 1);
//! let opts = SimOptions { samples: 64, interval_instructions: 1024, seed: 7 };
//! let train = collect_traces(Benchmark::Gcc, &train_points, Metric::Cpi, &opts);
//! let model = WaveletNeuralPredictor::train(&train, &PredictorParams::default()).unwrap();
//! let probe = random::sample(&space, 1, Split::Test, 2).remove(0);
//! let forecast = model.predict(&probe);
//! assert_eq!(forecast.len(), 64);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accuracy;
pub mod campaign;
pub mod cluster;
mod dataset;
pub mod experiment;
pub mod importance;
pub mod persist;
mod predictor;
pub mod recovery;
pub mod report;
pub mod serve;

pub use campaign::{run_journaled, run_journaled_parallel, threads_from_env, ShardedCampaign};
pub use dataset::{collect_domain_traces, collect_traces, trace_for, Metric, TraceSet};
pub use predictor::{
    CoefficientSelection, ModelKind, PortableCoeffModel, PortableModel, PredictorParams,
    WaveletNeuralPredictor,
};
pub use recovery::{CoeffRecovery, DegradationReport, RecoveryPolicy, RecoveryRung};
