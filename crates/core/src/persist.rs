//! Saving and loading trained predictors.
//!
//! Trained [`WaveletNeuralPredictor`]s serialize to a line-oriented,
//! human-inspectable text format (no external serialization crates are
//! required). Floats are written with Rust's shortest round-trip
//! representation, so save/load reproduces predictions bit-exactly.
//!
//! Regression-tree introspection (the Figure 11 star-plot data) is not
//! part of the snapshot; a loaded model predicts identically but
//! [`WaveletNeuralPredictor::networks`] returns tree-less networks.
//!
//! # Examples
//!
//! ```no_run
//! use dynawave_core::persist;
//! # let model: dynawave_core::WaveletNeuralPredictor = unimplemented!();
//! let text = persist::to_string(&model);
//! std::fs::write("gcc_cpi.dynawave", &text)?;
//! let restored = persist::from_string(&text)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::predictor::{PortableCoeffModel, PortableModel, WaveletNeuralPredictor};
use dynawave_neural::RbfNetworkData;
use dynawave_wavelet::Wavelet;
use std::error::Error;
use std::fmt;

/// Format version tag written at the top of every snapshot (canonical
/// vocabulary lives in `dynawave_obs::schema`).
const MAGIC: &str = dynawave_obs::schema::MODEL_MAGIC;

/// Largest `trace_len` a snapshot may declare. Far above any real trace
/// (the paper uses 128 samples) but small enough that a corrupt header
/// can never drive an absurd allocation.
const MAX_TRACE_LEN: usize = 1 << 24;

/// Largest RBF unit count a snapshot may declare per coefficient model.
/// Units are bounded by the training-point count in practice (hundreds).
const MAX_RBF_UNITS: usize = 1 << 20;

/// Errors raised while parsing a model snapshot.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PersistError {
    /// The input does not start with the expected magic line.
    BadMagic,
    /// A structural line was missing or malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A float field parsed but was NaN or infinite.
    ///
    /// A snapshot with a single non-finite parameter would poison every
    /// prediction of the loaded model, so it is rejected at parse time.
    NonFinite {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed snapshot was rejected by the model itself.
    Inconsistent(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a dynawave model snapshot"),
            PersistError::Malformed { line, expected } => {
                write!(f, "malformed snapshot at line {line}: expected {expected}")
            }
            PersistError::BadNumber { line } => {
                write!(f, "unparseable number at line {line}")
            }
            PersistError::NonFinite { line } => {
                write!(f, "non-finite value at line {line}")
            }
            PersistError::Inconsistent(msg) => write!(f, "inconsistent snapshot: {msg}"),
        }
    }
}

impl Error for PersistError {}

fn write_vec(out: &mut String, tag: &str, values: &[f64]) {
    out.push_str(tag);
    for v in values {
        out.push(' ');
        out.push_str(&format!("{v}"));
    }
    out.push('\n');
}

/// Serializes a trained predictor to the text format.
pub fn to_string(model: &WaveletNeuralPredictor) -> String {
    let portable = model.to_portable();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("wavelet {}\n", portable.wavelet.name()));
    out.push_str(&format!("trace_len {}\n", portable.trace_len));
    out.push_str(&format!("coefficients {}\n", portable.indices.len()));
    for (idx, m) in portable.indices.iter().zip(&portable.models) {
        out.push_str(&format!("index {idx}\n"));
        match m {
            PortableCoeffModel::Rbf(data) => {
                out.push_str(&format!("model rbf {}\n", data.centers.len()));
                write_vec(&mut out, "mins", &data.mins);
                write_vec(&mut out, "spans", &data.spans);
                write_vec(&mut out, "weights", &data.weights);
                match data.bias {
                    Some(b) => out.push_str(&format!("bias {b}\n")),
                    None => out.push_str("bias none\n"),
                }
                for (c, r) in data.centers.iter().zip(&data.radii) {
                    write_vec(&mut out, "center", c);
                    write_vec(&mut out, "radius", r);
                }
            }
            PortableCoeffModel::Linear {
                mins,
                spans,
                weights,
                bias,
            } => {
                out.push_str("model linear\n");
                write_vec(&mut out, "mins", mins);
                write_vec(&mut out, "spans", spans);
                write_vec(&mut out, "weights", weights);
                out.push_str(&format!("bias {bias}\n"));
            }
            PortableCoeffModel::Constant(v) => {
                out.push_str(&format!("model mean {v}\n"));
            }
        }
        out.push_str("end\n");
    }
    out
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Parser<'a> {
    fn next_line(&mut self, expected: &'static str) -> Result<(usize, &'a str), PersistError> {
        loop {
            match self.lines.next() {
                Some((i, l)) if l.trim().is_empty() => {
                    let _ = i;
                    continue;
                }
                Some((i, l)) => return Ok((i + 1, l.trim())),
                None => return Err(PersistError::Malformed { line: 0, expected }),
            }
        }
    }

    fn tagged(&mut self, tag: &'static str) -> Result<(usize, Vec<&'a str>), PersistError> {
        let (line, l) = self.next_line(tag)?;
        let mut parts = l.split_whitespace();
        if parts.next() != Some(tag) {
            return Err(PersistError::Malformed {
                line,
                expected: tag,
            });
        }
        Ok((line, parts.collect()))
    }

    fn tagged_floats(&mut self, tag: &'static str) -> Result<Vec<f64>, PersistError> {
        let (line, parts) = self.tagged(tag)?;
        parts
            .iter()
            .map(|p| {
                let v: f64 = p.parse().map_err(|_| PersistError::BadNumber { line })?;
                finite(v, line)
            })
            .collect()
    }
}

/// Accepts only finite floats; `NaN`/`inf` parse fine but poison models.
fn finite(v: f64, line: usize) -> Result<f64, PersistError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(PersistError::NonFinite { line })
    }
}

/// Parses a predictor from the text format.
///
/// # Errors
///
/// Returns a [`PersistError`] describing the first structural or numeric
/// problem encountered.
pub fn from_string(text: &str) -> Result<WaveletNeuralPredictor, PersistError> {
    let mut p = Parser {
        lines: text.lines().enumerate(),
    };
    let (_, magic) = p.next_line("magic header")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (line, parts) = p.tagged("wavelet")?;
    let wavelet = match parts.first().copied() {
        Some("haar") => Wavelet::Haar,
        Some("db4") => Wavelet::Daubechies4,
        _ => {
            return Err(PersistError::Malformed {
                line,
                expected: "wavelet haar|db4",
            })
        }
    };
    let (line, parts) = p.tagged("trace_len")?;
    let trace_len: usize = parts
        .first()
        .and_then(|v| v.parse().ok())
        .ok_or(PersistError::BadNumber { line })?;
    // Bound the header counts *before* any allocation sized by them: a
    // corrupt `trace_len 18446744073709551615` must be a typed error, not
    // a capacity-overflow abort (the fuzz corpus in the tests below found
    // exactly that). The structural validity of trace_len itself
    // (power of two, >= 2) is re-checked by `from_portable`.
    if trace_len > MAX_TRACE_LEN {
        return Err(PersistError::Inconsistent(format!(
            "trace_len {trace_len} exceeds the supported maximum {MAX_TRACE_LEN}"
        )));
    }
    let (line, parts) = p.tagged("coefficients")?;
    let count: usize = parts
        .first()
        .and_then(|v| v.parse().ok())
        .ok_or(PersistError::BadNumber { line })?;
    // A model can never retain more coefficients than trace samples.
    if count > trace_len {
        return Err(PersistError::Inconsistent(format!(
            "coefficient count {count} exceeds trace_len {trace_len}"
        )));
    }

    let mut indices = Vec::with_capacity(count);
    let mut models = Vec::with_capacity(count);
    for _ in 0..count {
        let (line, parts) = p.tagged("index")?;
        let idx: usize = parts
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or(PersistError::BadNumber { line })?;
        indices.push(idx);
        let (line, parts) = p.tagged("model")?;
        match parts.first().copied() {
            Some("rbf") => {
                let units: usize = parts
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or(PersistError::BadNumber { line })?;
                // Same discipline as the header counts: never size an
                // allocation from an unvalidated snapshot field.
                if units > MAX_RBF_UNITS {
                    return Err(PersistError::Inconsistent(format!(
                        "rbf unit count {units} exceeds the supported maximum {MAX_RBF_UNITS}"
                    )));
                }
                let mins = p.tagged_floats("mins")?;
                let spans = p.tagged_floats("spans")?;
                let weights = p.tagged_floats("weights")?;
                let (line, parts) = p.tagged("bias")?;
                let bias = match parts.first().copied() {
                    Some("none") => None,
                    Some(v) => {
                        let b: f64 = v.parse().map_err(|_| PersistError::BadNumber { line })?;
                        Some(finite(b, line)?)
                    }
                    None => {
                        return Err(PersistError::Malformed {
                            line,
                            expected: "bias <value>|none",
                        })
                    }
                };
                let mut centers = Vec::with_capacity(units);
                let mut radii = Vec::with_capacity(units);
                for _ in 0..units {
                    centers.push(p.tagged_floats("center")?);
                    radii.push(p.tagged_floats("radius")?);
                }
                models.push(PortableCoeffModel::Rbf(RbfNetworkData {
                    mins,
                    spans,
                    centers,
                    radii,
                    weights,
                    bias,
                }));
            }
            Some("linear") => {
                let mins = p.tagged_floats("mins")?;
                let spans = p.tagged_floats("spans")?;
                let weights = p.tagged_floats("weights")?;
                let (line, parts) = p.tagged("bias")?;
                let bias: f64 = parts
                    .first()
                    .and_then(|v| v.parse().ok())
                    .ok_or(PersistError::BadNumber { line })?;
                models.push(PortableCoeffModel::Linear {
                    mins,
                    spans,
                    weights,
                    bias: finite(bias, line)?,
                });
            }
            Some("mean") => {
                let v: f64 = parts
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or(PersistError::BadNumber { line })?;
                models.push(PortableCoeffModel::Constant(finite(v, line)?));
            }
            _ => {
                return Err(PersistError::Malformed {
                    line,
                    expected: "model rbf|linear|mean",
                })
            }
        }
        let (line, l) = p.next_line("end")?;
        if l != "end" {
            return Err(PersistError::Malformed {
                line,
                expected: "end",
            });
        }
    }
    WaveletNeuralPredictor::from_portable(PortableModel {
        wavelet,
        trace_len,
        indices,
        models,
    })
    .map_err(|e| PersistError::Inconsistent(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Metric, TraceSet};
    use crate::predictor::{ModelKind, PredictorParams};
    use dynawave_sampling::DesignPoint;
    use dynawave_workloads::Benchmark;

    fn trained(kind: ModelKind) -> WaveletNeuralPredictor {
        let mut points = Vec::new();
        let mut traces = Vec::new();
        for i in 0..20 {
            let a = (i % 5) as f64;
            let b = (i / 5) as f64;
            points.push(DesignPoint::new(vec![a, b]));
            traces.push(
                (0..32)
                    .map(|s| 1.0 + a * 0.3 + b * 0.1 + 0.05 * (s as f64 * 0.7).sin())
                    .collect(),
            );
        }
        let set = TraceSet {
            benchmark: Benchmark::Gcc,
            metric: Metric::Cpi,
            points,
            traces,
        };
        let params = PredictorParams {
            model: kind,
            coefficients: 8,
            ..PredictorParams::default()
        };
        WaveletNeuralPredictor::train(&set, &params).unwrap()
    }

    #[test]
    fn rbf_roundtrip_is_bit_exact() {
        let model = trained(ModelKind::TreeRbf);
        let text = to_string(&model);
        let restored = from_string(&text).unwrap();
        for probe in [[0.0, 0.0], [2.0, 3.0], [4.9, 0.1]] {
            let p = DesignPoint::new(probe.to_vec());
            assert_eq!(model.predict(&p), restored.predict(&p));
        }
    }

    #[test]
    fn linear_roundtrip_is_bit_exact() {
        let model = trained(ModelKind::Linear);
        let text = to_string(&model);
        let restored = from_string(&text).unwrap();
        let p = DesignPoint::new(vec![1.0, 2.0]);
        assert_eq!(model.predict(&p), restored.predict(&p));
    }

    #[test]
    fn snapshot_is_stable_text() {
        let model = trained(ModelKind::TreeRbf);
        let a = to_string(&model);
        let b = to_string(&from_string(&a).unwrap());
        assert_eq!(a, b, "serialize(parse(x)) must be a fixpoint");
        assert!(a.starts_with(MAGIC));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_string("hello"), Err(PersistError::BadMagic)));
        assert!(from_string("").is_err());
        let model = trained(ModelKind::TreeRbf);
        let text = to_string(&model);
        // Truncation breaks a structural line somewhere.
        let truncated = &text[..text.len() / 2];
        assert!(from_string(truncated).is_err());
        // Corrupt a number.
        let corrupted = text.replacen("trace_len 32", "trace_len banana", 1);
        assert!(matches!(
            from_string(&corrupted),
            Err(PersistError::BadNumber { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_floats() {
        let model = trained(ModelKind::TreeRbf);
        let text = to_string(&model);
        // Corrupt one weight into NaN: parses as a float, must be rejected.
        let first_weights = text
            .lines()
            .find(|l| l.starts_with("weights "))
            .unwrap()
            .to_string();
        let mut parts: Vec<&str> = first_weights.split(' ').collect();
        parts[1] = "NaN";
        let poisoned = text.replacen(&first_weights, &parts.join(" "), 1);
        assert!(matches!(
            from_string(&poisoned),
            Err(PersistError::NonFinite { .. })
        ));
        let inf_bias = text.lines().find(|l| l.starts_with("bias ")).unwrap();
        let poisoned = text.replacen(inf_bias, "bias inf", 1);
        assert!(matches!(
            from_string(&poisoned),
            Err(PersistError::NonFinite { .. })
        ));
    }

    #[test]
    fn mean_model_roundtrips_and_rejects_non_finite() {
        use crate::recovery::RecoveryPolicy;
        use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
        // Force every coefficient onto the mean rung to get Constant
        // sub-models into the snapshot.
        let mut points = Vec::new();
        let mut traces = Vec::new();
        for i in 0..12 {
            points.push(DesignPoint::new(vec![(i % 4) as f64, (i / 4) as f64]));
            traces.push((0..16).map(|s| 1.0 + 0.1 * (i + s) as f64).collect());
        }
        let set = TraceSet {
            benchmark: Benchmark::Gcc,
            metric: Metric::Cpi,
            points,
            traces,
        };
        let plan = FaultPlan::new(2)
            .rate(1.0)
            .targeting(&[FaultSite::RbfWeightFit, FaultSite::RidgeSolve])
            .kinds(&[FaultKind::Singular]);
        let (out, _) = fault::with_plan(plan, || {
            WaveletNeuralPredictor::train_resilient(
                &set,
                &PredictorParams::default(),
                &RecoveryPolicy::default(),
            )
        });
        let (model, degradation) = out.unwrap();
        assert_eq!(
            degradation.rung_counts()[3],
            degradation.coefficient_count()
        );
        let text = to_string(&model);
        assert!(text.contains("model mean "));
        let restored = from_string(&text).unwrap();
        let probe = DesignPoint::new(vec![1.0, 2.0]);
        assert_eq!(model.predict(&probe), restored.predict(&probe));
        // A NaN mean is rejected at parse time.
        let first_mean = text.lines().find(|l| l.starts_with("model mean")).unwrap();
        let poisoned = text.replacen(first_mean, "model mean NaN", 1);
        assert!(matches!(
            from_string(&poisoned),
            Err(PersistError::NonFinite { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::Malformed {
            line: 7,
            expected: "end",
        };
        assert!(e.to_string().contains("line 7"));
        assert!(PersistError::BadMagic.to_string().contains("snapshot"));
    }

    #[test]
    fn oversized_header_counts_are_typed_errors_not_aborts() {
        // Before the MAX_* bounds these inputs drove
        // `Vec::with_capacity(huge)` straight into a capacity-overflow
        // abort — found by the fuzz corpus below, pinned here forever.
        let model = trained(ModelKind::TreeRbf);
        let text = to_string(&model);
        let huge = text.replacen("trace_len 32", "trace_len 18446744073709551615", 1);
        assert!(matches!(
            from_string(&huge),
            Err(PersistError::Inconsistent(_))
        ));
        let huge = text.replacen("coefficients 8", "coefficients 9999999999", 1);
        assert!(matches!(
            from_string(&huge),
            Err(PersistError::Inconsistent(_))
        ));
        let rbf_line = text
            .lines()
            .find(|l| l.starts_with("model rbf "))
            .unwrap()
            .to_string();
        let huge = text.replacen(&rbf_line, "model rbf 18446744073709551615", 1);
        assert!(matches!(
            from_string(&huge),
            Err(PersistError::Inconsistent(_))
        ));
    }

    #[test]
    fn fuzz_byte_soup_never_panics_the_parser() {
        use dynawave_testkit::{check, gen};
        // Raw soup: overwhelmingly BadMagic, but the property is total
        // absence of panics, not any particular error.
        check("persist: ascii soup yields typed errors")
            .cases(2500)
            .seed(0x5EED_50F7)
            .run(gen::ascii_soup(0, 300), |text| {
                let _ = from_string(text);
                Ok(())
            });
        check("persist: utf8 soup yields typed errors")
            .cases(1500)
            .seed(0x5EED_50F8)
            .run(gen::utf8_soup(0, 300), |text| {
                let _ = from_string(text);
                Ok(())
            });
        // Soup behind a valid magic line reaches the structural parser.
        check("persist: magic + soup yields typed errors")
            .cases(2500)
            .seed(0x5EED_50F9)
            .run(gen::ascii_soup(0, 300), |soup| {
                let _ = from_string(&format!("{MAGIC}\n{soup}"));
                Ok(())
            });
    }

    #[test]
    fn fuzz_mutated_snapshots_never_panic_the_parser() {
        use dynawave_testkit::{check, gen};
        // Truncations, byte flips, line duplications and deletions of a
        // real snapshot: the closest neighbourhood of valid inputs, where
        // count/structure mismatches live.
        let model = trained(ModelKind::TreeRbf);
        let text = to_string(&model);
        check("persist: mutated snapshots yield typed errors")
            .cases(3500)
            .seed(0x5EED_50FA)
            .run(gen::mutate(&text), |mutant| {
                let _ = from_string(mutant);
                Ok(())
            });
    }
}
