//! Simulation-backed dataset collection: design points → dynamics traces.

use dynawave_avf::{AvfModel, Structure};
use dynawave_power::PowerModel;
use dynawave_sampling::DesignPoint;
use dynawave_sim::{MachineConfig, SimOptions, Simulator};
use dynawave_workloads::Benchmark;

/// Which workload-dynamics metric a trace measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Cycles per instruction (performance domain).
    Cpi,
    /// Total processor power in watts (power domain).
    Power,
    /// Combined processor AVF (reliability domain, Figure 8c).
    Avf,
    /// Issue-queue AVF (the §5 DVM case study).
    IqAvf,
}

impl Metric {
    /// All metrics of the paper's three domains (Figure 8).
    pub const DOMAINS: [Metric; 3] = [Metric::Cpi, Metric::Power, Metric::Avf];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Cpi => "cpi",
            Metric::Power => "power",
            Metric::Avf => "avf",
            Metric::IqAvf => "iq_avf",
        }
    }

    /// Inverse of [`Metric::name`]: parses a stable lowercase name.
    pub fn parse(name: &str) -> Option<Metric> {
        match name {
            "cpi" => Some(Metric::Cpi),
            "power" => Some(Metric::Power),
            "avf" => Some(Metric::Avf),
            "iq_avf" => Some(Metric::IqAvf),
            _ => None,
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A collection of per-design-point dynamics traces for one
/// `(benchmark, metric)` pair — the training or test set of a predictor.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// The benchmark the traces belong to.
    pub benchmark: Benchmark,
    /// The measured metric.
    pub metric: Metric,
    /// Design points, parallel to `traces`.
    pub points: Vec<DesignPoint>,
    /// One dynamics trace (length = `SimOptions::samples`) per point.
    pub traces: Vec<Vec<f64>>,
}

impl TraceSet {
    /// Number of design points in the set.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Simulates one design point and extracts the dynamics trace for
/// `metric`.
///
/// Design points may carry 9 values (Table 2) or 10 (with the DVM flag of
/// the §5 case study).
///
/// # Panics
///
/// Panics on invalid design values (see
/// [`MachineConfig::from_design_values`]).
pub fn trace_for(
    benchmark: Benchmark,
    point: &DesignPoint,
    metric: Metric,
    opts: &SimOptions,
) -> Vec<f64> {
    let config = MachineConfig::from_design_values(point.values());
    let run = Simulator::new(config.clone()).run(benchmark, opts);
    match metric {
        Metric::Cpi => run.cpi_trace(),
        Metric::Power => PowerModel::new(&config).power_trace(&run),
        Metric::Avf => {
            let avf = AvfModel::new(&config);
            run.intervals
                .iter()
                .map(|i| avf.interval_report(i).combined(&config))
                .collect()
        }
        Metric::IqAvf => AvfModel::new(&config).avf_trace(&run, Structure::IssueQueue),
    }
}

/// Simulates every design point **once** and extracts all three domain
/// traces (CPI, power, combined AVF) from the same runs.
///
/// Equivalent to three [`collect_traces`] calls at a third of the
/// simulation cost; used by the Figure 8/9/10 harnesses.
pub fn collect_domain_traces(
    benchmark: Benchmark,
    points: &[DesignPoint],
    opts: &SimOptions,
) -> [TraceSet; 3] {
    let mut cpi = Vec::with_capacity(points.len());
    let mut power = Vec::with_capacity(points.len());
    let mut avf = Vec::with_capacity(points.len());
    for point in points {
        let config = MachineConfig::from_design_values(point.values());
        let run = Simulator::new(config.clone()).run(benchmark, opts);
        cpi.push(run.cpi_trace());
        power.push(PowerModel::new(&config).power_trace(&run));
        let model = AvfModel::new(&config);
        avf.push(
            run.intervals
                .iter()
                .map(|i| model.interval_report(i).combined(&config))
                .collect(),
        );
    }
    let mk = |metric, traces| TraceSet {
        benchmark,
        metric,
        points: points.to_vec(),
        traces,
    };
    [
        mk(Metric::Cpi, cpi),
        mk(Metric::Power, power),
        mk(Metric::Avf, avf),
    ]
}

/// Simulates every design point and gathers the traces into a
/// [`TraceSet`].
///
/// This is the expensive step the predictive models exist to avoid at
/// *unsimulated* points: the paper simulates 200 training + 50 test
/// configurations per benchmark and predicts everywhere else.
pub fn collect_traces(
    benchmark: Benchmark,
    points: &[DesignPoint],
    metric: Metric,
    opts: &SimOptions,
) -> TraceSet {
    let traces = points
        .iter()
        .map(|p| trace_for(benchmark, p, metric, opts))
        .collect();
    TraceSet {
        benchmark,
        metric,
        points: points.to_vec(),
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynawave_sampling::{lhs, DesignSpace};

    fn opts() -> SimOptions {
        SimOptions {
            samples: 16,
            interval_instructions: 800,
            seed: 5,
        }
    }

    #[test]
    fn collects_traces_of_right_shape() {
        let space = DesignSpace::micro2007();
        let pts = lhs::sample(&space, 3, 1);
        let set = collect_traces(Benchmark::Eon, &pts, Metric::Cpi, &opts());
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        for t in &set.traces {
            assert_eq!(t.len(), 16);
            assert!(t.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn metrics_have_distinct_scales() {
        let space = DesignSpace::micro2007();
        let pts = lhs::sample(&space, 1, 2);
        let cpi = trace_for(Benchmark::Gcc, &pts[0], Metric::Cpi, &opts());
        let power = trace_for(Benchmark::Gcc, &pts[0], Metric::Power, &opts());
        let avf = trace_for(Benchmark::Gcc, &pts[0], Metric::Avf, &opts());
        assert!(power[0] > cpi[0], "power in watts should exceed CPI");
        assert!(avf.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dvm_flag_changes_iq_avf() {
        let mut values = vec![8.0, 96.0, 96.0, 48.0, 2048.0, 12.0, 32.0, 64.0, 1.0];
        values.push(0.0);
        let off = DesignPoint::new(values.clone());
        values[9] = 1.0;
        let on = DesignPoint::new(values);
        let t_off = trace_for(Benchmark::Mcf, &off, Metric::IqAvf, &opts());
        let t_on = trace_for(Benchmark::Mcf, &on, Metric::IqAvf, &opts());
        let mean = |t: &[f64]| t.iter().sum::<f64>() / t.len() as f64;
        assert!(mean(&t_on) < mean(&t_off), "DVM should lower IQ AVF");
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Cpi.to_string(), "cpi");
        assert_eq!(Metric::IqAvf.to_string(), "iq_avf");
        assert_eq!(Metric::DOMAINS.len(), 3);
    }

    #[test]
    fn metric_names_roundtrip() {
        for m in [Metric::Cpi, Metric::Power, Metric::Avf, Metric::IqAvf] {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("ipc"), None);
    }
}
