//! Hierarchical clustering for the Figure 18 heat-plot dendrogram.
//!
//! The paper's heat plots order benchmarks by a dendrogram built from
//! their per-test-case MSE vectors. This module provides agglomerative
//! clustering with average linkage over Euclidean distances and returns
//! both the merge tree and a leaf ordering suitable for heat-map axes.

/// One merge step of the agglomerative clustering.
///
/// Cluster ids `0..n` are the original observations; id `n + i` is the
/// cluster created by merge `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened (the height of the
    /// dendrogram's U).
    pub distance: f64,
}

/// The result of hierarchical clustering: the merge sequence and the
/// dendrogram-order permutation of the observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Merge steps, in order.
    pub merges: Vec<Merge>,
    /// Leaf indices in dendrogram (left-to-right) order.
    pub order: Vec<usize>,
}

/// Euclidean distance between two equal-length vectors.
fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Agglomerative clustering with average linkage.
///
/// # Panics
///
/// Panics if `rows` is empty or rows have inconsistent lengths.
pub fn hierarchical_cluster(rows: &[Vec<f64>]) -> Dendrogram {
    assert!(!rows.is_empty(), "clustering needs observations");
    let n = rows.len();
    let dim = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), dim, "inconsistent observation lengths");
    }
    // Active clusters: (id, member leaf indices).
    let mut clusters: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;
    // Average-linkage distance between leaf sets.
    let linkage = |xs: &[usize], ys: &[usize]| -> f64 {
        let mut total = 0.0;
        for &x in xs {
            for &y in ys {
                total += euclidean(&rows[x], &rows[y]);
            }
        }
        total / (xs.len() * ys.len()) as f64
    };
    while clusters.len() > 1 {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = linkage(&clusters[i].1, &clusters[j].1);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        let (id_b, members_b) = clusters.remove(j);
        let (id_a, members_a) = clusters.remove(i);
        merges.push(Merge {
            a: id_a,
            b: id_b,
            distance: d,
        });
        let mut members = members_a;
        members.extend(members_b);
        clusters.push((next_id, members));
        next_id += 1;
    }
    let order = clusters.pop().map(|(_, m)| m).unwrap_or_default();
    Dendrogram { merges, order }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_groups() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let d = hierarchical_cluster(&rows);
        assert_eq!(d.merges.len(), 3);
        // The two tight pairs merge first, at small distances.
        assert!(d.merges[0].distance < 0.2);
        assert!(d.merges[1].distance < 0.2);
        assert!(d.merges[2].distance > 4.0);
        // Dendrogram order keeps group members adjacent.
        let pos: Vec<usize> = (0..4)
            .map(|i| d.order.iter().position(|&x| x == i).unwrap())
            .collect();
        assert_eq!((pos[0] as i64 - pos[1] as i64).abs(), 1);
        assert_eq!((pos[2] as i64 - pos[3] as i64).abs(), 1);
    }

    #[test]
    fn single_observation() {
        let d = hierarchical_cluster(&[vec![1.0]]);
        assert!(d.merges.is_empty());
        assert_eq!(d.order, vec![0]);
    }

    #[test]
    fn order_is_a_permutation() {
        let rows: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let d = hierarchical_cluster(&rows);
        let mut sorted = d.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn merge_distances_nondecreasing_for_average_linkage_on_line() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![(i * i) as f64]).collect();
        let d = hierarchical_cluster(&rows);
        for w in d.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance * 0.5, "wild inversion");
        }
    }

    #[test]
    #[should_panic(expected = "needs observations")]
    fn empty_panics() {
        let _ = hierarchical_cluster(&[]);
    }
}
