//! Graceful model degradation: the recovery ladder and its report.
//!
//! A production DSE campaign fits hundreds of per-coefficient regressors
//! (one RBF network per retained wavelet coefficient, per benchmark, per
//! metric). At that scale the question is not *whether* a fit will ever
//! meet a singular Gram matrix or a NaN, but *what happens when it does*.
//! The answer here is a ladder of increasingly conservative models:
//!
//! 1. **Primary** — the configured model ([`crate::ModelKind`]) with its
//!    configured ridge strength.
//! 2. **Escalated ridge** — the same model refit with the ridge penalty
//!    multiplied by [`RecoveryPolicy::ridge_growth`] per rung; heavier
//!    regularization cures most ill-conditioning.
//! 3. **Linear fallback** — a ridge-linear model; crude, but defined for
//!    any non-degenerate design.
//! 4. **Mean fallback** — the training-set mean of the coefficient, a
//!    constant that can never fail and never produces a non-finite value.
//!
//! Every coefficient records which rung it landed on in a
//! [`DegradationReport`], so a degraded campaign is *visible*, never
//! silent. Fits that return non-finite parameters are treated exactly
//! like solver failures (see `ModelError::NonFinite`).

use std::fmt;

/// Which rung of the recovery ladder a coefficient's model landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// The configured model fit cleanly on the first attempt.
    Primary,
    /// The configured model fit after `escalation` ridge escalations.
    EscalatedRidge {
        /// 1-based escalation step that finally succeeded.
        escalation: u32,
    },
    /// The ridge-linear fallback model.
    LinearFallback,
    /// The training-set-mean constant fallback.
    MeanFallback,
}

impl RecoveryRung {
    /// Position in the ladder: 0 = primary … 3 = mean fallback.
    pub fn level(self) -> usize {
        match self {
            RecoveryRung::Primary => 0,
            RecoveryRung::EscalatedRidge { .. } => 1,
            RecoveryRung::LinearFallback => 2,
            RecoveryRung::MeanFallback => 3,
        }
    }

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryRung::Primary => "primary",
            RecoveryRung::EscalatedRidge { .. } => "ridge-escalated",
            RecoveryRung::LinearFallback => "linear-fallback",
            RecoveryRung::MeanFallback => "mean-fallback",
        }
    }
}

/// How aggressively training recovers from per-coefficient fit failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Ridge-escalation retries before falling back to simpler models.
    pub ridge_escalations: u32,
    /// Multiplier applied to the ridge penalty per escalation step.
    pub ridge_growth: f64,
    /// Permit the ridge-linear fallback rung.
    pub allow_linear: bool,
    /// Permit the training-set-mean fallback rung (makes per-coefficient
    /// fitting infallible).
    pub allow_mean: bool,
}

impl Default for RecoveryPolicy {
    /// The full ladder: 3 ridge escalations (×100 each), then linear,
    /// then mean.
    fn default() -> Self {
        RecoveryPolicy {
            ridge_escalations: 3,
            ridge_growth: 100.0,
            allow_linear: true,
            allow_mean: true,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: the first fit failure aborts training. This is
    /// the policy behind `WaveletNeuralPredictor::train`'s historical
    /// fail-fast contract.
    pub fn strict() -> Self {
        RecoveryPolicy {
            ridge_escalations: 0,
            ridge_growth: 1.0,
            allow_linear: false,
            allow_mean: false,
        }
    }

    /// Total fit attempts the ladder may make for one coefficient.
    pub fn max_attempts(&self) -> u32 {
        1 + self.ridge_escalations + u32::from(self.allow_linear) + u32::from(self.allow_mean)
    }
}

/// Where one coefficient's model landed, and how much work it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoeffRecovery {
    /// Wavelet-coefficient index this record describes.
    pub coefficient: usize,
    /// Rung the ladder settled on.
    pub rung: RecoveryRung,
    /// Fit attempts consumed (1 = clean primary fit).
    pub attempts: u32,
}

/// Per-campaign account of which recovery rung every coefficient's model
/// landed on. Produced by `WaveletNeuralPredictor::train_resilient`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegradationReport {
    records: Vec<CoeffRecovery>,
}

impl DegradationReport {
    /// Builds a report from per-coefficient records.
    pub fn from_records(records: Vec<CoeffRecovery>) -> Self {
        DegradationReport { records }
    }

    /// An all-primary report for a model known to have fit cleanly (for
    /// example one trained with [`RecoveryPolicy::strict`]).
    pub fn healthy(coefficient_indices: &[usize]) -> Self {
        DegradationReport {
            records: coefficient_indices
                .iter()
                .map(|&coefficient| CoeffRecovery {
                    coefficient,
                    rung: RecoveryRung::Primary,
                    attempts: 1,
                })
                .collect(),
        }
    }

    /// Per-coefficient records, most significant coefficient first.
    pub fn records(&self) -> &[CoeffRecovery] {
        &self.records
    }

    /// Number of coefficients accounted for (always the model's full
    /// coefficient count).
    pub fn coefficient_count(&self) -> usize {
        self.records.len()
    }

    /// Counts per ladder level: `[primary, ridge-escalated, linear, mean]`.
    pub fn rung_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for r in &self.records {
            counts[r.rung.level()] += 1;
        }
        counts
    }

    /// Number of coefficients that did **not** fit cleanly on the primary
    /// rung.
    pub fn degraded_count(&self) -> usize {
        let [primary, ..] = self.rung_counts();
        self.records.len() - primary
    }

    /// `true` when every coefficient fit cleanly on the primary rung.
    pub fn is_pristine(&self) -> bool {
        self.degraded_count() == 0
    }

    /// Total fit attempts across all coefficients.
    pub fn total_attempts(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.attempts)).sum()
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [primary, ridge, linear, mean] = self.rung_counts();
        write!(
            f,
            "{} coefficients: {primary} primary, {ridge} ridge-escalated, \
             {linear} linear-fallback, {mean} mean-fallback",
            self.records.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_report_is_pristine_and_accounts_for_everything() {
        let r = DegradationReport::healthy(&[0, 3, 7]);
        assert!(r.is_pristine());
        assert_eq!(r.coefficient_count(), 3);
        assert_eq!(r.rung_counts(), [3, 0, 0, 0]);
        assert_eq!(r.degraded_count(), 0);
        assert_eq!(r.total_attempts(), 3);
    }

    #[test]
    fn rung_counts_partition_the_records() {
        let r = DegradationReport::from_records(vec![
            CoeffRecovery {
                coefficient: 0,
                rung: RecoveryRung::Primary,
                attempts: 1,
            },
            CoeffRecovery {
                coefficient: 1,
                rung: RecoveryRung::EscalatedRidge { escalation: 2 },
                attempts: 3,
            },
            CoeffRecovery {
                coefficient: 2,
                rung: RecoveryRung::MeanFallback,
                attempts: 6,
            },
        ]);
        assert_eq!(r.rung_counts(), [1, 1, 0, 1]);
        assert_eq!(r.rung_counts().iter().sum::<usize>(), r.coefficient_count());
        assert_eq!(r.degraded_count(), 2);
        assert!(!r.is_pristine());
        let text = r.to_string();
        assert!(text.contains("3 coefficients"));
        assert!(text.contains("1 ridge-escalated"));
    }

    #[test]
    fn policy_attempt_budget() {
        assert_eq!(RecoveryPolicy::strict().max_attempts(), 1);
        assert_eq!(RecoveryPolicy::default().max_attempts(), 6);
    }

    #[test]
    fn rung_levels_are_ordered() {
        let rungs = [
            RecoveryRung::Primary,
            RecoveryRung::EscalatedRidge { escalation: 1 },
            RecoveryRung::LinearFallback,
            RecoveryRung::MeanFallback,
        ];
        for (i, r) in rungs.iter().enumerate() {
            assert_eq!(r.level(), i);
            assert!(!r.name().is_empty());
        }
    }
}
