//! Crash-safe DSE prediction daemon: the `dynawave-serve` protocol.
//!
//! The paper's end-use is interactive design-space exploration: a trained
//! neuro-wavelet model answering "what are the dynamics of config X"
//! queries long after the simulation campaign finished. This module is
//! that serving layer, built with robustness as the headline feature:
//!
//! 1. **Total request handling.** [`ServeEngine::handle_line`] maps
//!    *every* input line — valid request, byte soup, wrong schema, wrong
//!    arity, non-finite knobs — to exactly one well-formed JSON response
//!    line. It never panics and never drops a request silently; the
//!    [`ServeError`] taxonomy turns each failure mode into a typed
//!    `error` response.
//! 2. **Deadline budgets.** Work is metered on a deterministic tick
//!    clock (1 tick per model prediction, [`ServeConfig::train_cost`]
//!    ticks per lazy model train). A request whose `deadline` budget is
//!    exhausted mid-batch gets a `partial` response carrying the
//!    completed prefix; one that cannot even start gets a typed
//!    `deadline-exceeded` error. No wall clock is consulted, so the
//!    daemon is bit-reproducible (workspace rule D004/D007).
//! 3. **Graceful degradation.** Models are cached per
//!    `(benchmark, metric)`. A snapshot that fails to load from
//!    [`ServeConfig::models_dir`] falls back to lazy training under the
//!    configured [`RecoveryPolicy`](crate::RecoveryPolicy) ladder
//!    (Rbf → ridge escalation → Linear → Constant), and every
//!    model-backed response reports the worst recovery rung that served
//!    it — a degraded answer is visible, never silent.
//! 4. **Backpressure.** Admitted work accumulates in a leaky-bucket
//!    load counter; when a request would overflow
//!    [`ServeConfig::queue_capacity`], the daemon answers `overloaded`
//!    with a deterministic `retry_after` hint instead of growing without
//!    bound.
//! 5. **Crash-safe replay.** Responses append to a fingerprinted journal
//!    (same discipline as the campaign journal: magic line, config
//!    fingerprint, newline-terminated records, torn tail ignored).
//!    [`replay`] re-runs a request log through a fresh engine, verifies
//!    the surviving journal prefix byte-for-byte, and rewrites the
//!    journal to what an uninterrupted run would have produced.
//!    [`FaultSite::JournalAppend`] faults exercise the degraded-
//!    durability path: the daemon keeps serving with journaling
//!    disabled.
//!
//! 6. **Introspection.** The engine keeps always-on, allocation-light
//!    telemetry ([`ServeStats`]): per-kind request/outcome counters,
//!    per-kind tick-latency histograms, deadline-budget spend, recovery
//!    rung counts, model-cache traffic, the leaky-bucket level and the
//!    journal status. The side-effect-free `stats` request kind
//!    snapshots it as a versioned JSON object — zero work ticks, so a
//!    `stats` probe never perturbs the transcript it reports on, and
//!    the snapshot is byte-identical live vs [`replay`]. When obs
//!    tracing is enabled the same pipeline also emits request-scoped
//!    spans (`serve.parse` → `serve.admission` → `serve.model_resolve`
//!    → `serve.solve` → `serve.journal_append`) correlated by request
//!    id in `serve.request_id` marker details — see DESIGN.md §14.
//!
//! The wire format is versioned JSON lines tagged
//! `{"schema":"dynawave-serve","v":1,...}` (vocabulary in
//! [`dynawave_obs::schema`]; dynalint rule D013 cross-checks literals).
//! Endpoints cover the paper's real queries: batched dynamics prediction
//! (`predict`), Pareto frontier over CPI/power/AVF (`pareto`), top-K
//! configs under a power budget (`topk`), single-axis sensitivity
//! sweeps (`sweep`), and the `stats` introspection probe. See DESIGN.md
//! §13 for the full protocol contract.
//!
//! # Examples
//!
//! ```
//! use dynawave_core::experiment::ExperimentConfig;
//! use dynawave_core::serve::{ServeConfig, ServeEngine};
//!
//! let cfg = ServeConfig {
//!     config: ExperimentConfig {
//!         train_points: 12,
//!         test_points: 2,
//!         samples: 16,
//!         interval_instructions: 300,
//!         ..ExperimentConfig::default()
//!     },
//!     ..ServeConfig::default()
//! };
//! let mut engine = ServeEngine::new(cfg);
//! // Malformed input still gets exactly one structured response.
//! let resp = engine.handle_line("not json at all");
//! assert!(resp.contains("\"kind\":\"error\""));
//! assert!(resp.contains("bad-json"));
//! ```

use crate::campaign::{complete_lines, fnv1a64};
use crate::dataset::{collect_traces, Metric};
use crate::experiment::ExperimentConfig;
use crate::persist;
use crate::predictor::{PortableCoeffModel, WaveletNeuralPredictor};
use crate::recovery::RecoveryRung;
use dynawave_numeric::fault::{self, FaultSite};
use dynawave_obs::event::{push_json_number, push_json_string};
use dynawave_obs::json::{self, Value};
use dynawave_obs::schema;
use dynawave_sampling::DesignPoint;
use dynawave_workloads::Benchmark;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic tag on the first line of every serve response journal.
const MAGIC: &str = schema::SERVE_JOURNAL;

/// Configuration of one serving session. Everything that can change a
/// response byte is in here (directly or via [`ExperimentConfig`]), so
/// the [`ServeConfig::fingerprint`] guards replay the same way the
/// campaign fingerprint guards resume.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Scale, seed and recovery policy for lazily trained models.
    pub config: ExperimentConfig,
    /// Tick budget for requests that do not carry a `deadline` field.
    pub default_deadline: u64,
    /// Leaky-bucket capacity for admitted-but-unfinished work, in ticks.
    pub queue_capacity: u64,
    /// Ticks drained from the load counter per incoming request.
    pub drain_per_request: u64,
    /// Tick cost of one lazy model train (cache miss).
    pub train_cost: u64,
    /// Requests longer than this many bytes are refused (`too-large`)
    /// before parsing, bounding per-request memory.
    pub max_request_bytes: usize,
    /// Directory of persisted model snapshots
    /// (`<benchmark>_<metric>.dynawave`). Load failures degrade to lazy
    /// training; `None` always trains lazily.
    pub models_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            config: ExperimentConfig::default(),
            default_deadline: 4096,
            queue_capacity: 1 << 16,
            drain_per_request: 64,
            train_cost: 256,
            max_request_bytes: 1 << 20,
            models_dir: None,
        }
    }
}

impl ServeConfig {
    /// Deterministic fingerprint of every response-affecting knob,
    /// recorded in the journal header so [`replay`] under a different
    /// configuration is refused instead of silently diverging.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(&format!(
            "{:?}|{}|{}|{}|{}|{}|{:?}",
            self.config,
            self.default_deadline,
            self.queue_capacity,
            self.drain_per_request,
            self.train_cost,
            self.max_request_bytes,
            self.models_dir
        ))
    }

    /// The two-line journal header for this configuration.
    pub fn journal_header(&self) -> String {
        format!("{MAGIC}\nfingerprint {:016x}\n", self.fingerprint())
    }
}

/// Every way a request can fail. Each variant maps to a stable
/// kebab-case code carried in the response's `error` field — clients
/// dispatch on the code, humans read the accompanying `detail`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The line is not valid JSON.
    BadJson(String),
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// `schema` is missing or not `dynawave-serve`.
    UnknownSchema,
    /// `v` is missing or not a supported version.
    UnsupportedVersion(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong type or an invalid value.
    BadField {
        /// The offending field.
        field: &'static str,
        /// What the field must be.
        expected: &'static str,
    },
    /// `kind` is not a known request kind.
    UnknownKind(String),
    /// `benchmark` does not name a known workload.
    UnknownBenchmark(String),
    /// `metric` does not name a known metric.
    UnknownMetric(String),
    /// A design vector has the wrong number of knobs.
    BadArity {
        /// Knob count the configured design space requires.
        expected: usize,
        /// Knob count found in the request.
        found: usize,
    },
    /// A design-vector or sweep value is NaN or infinite.
    NonFiniteInput,
    /// The request carries no work (empty `points` / `values`).
    EmptyBatch,
    /// The request line exceeds [`ServeConfig::max_request_bytes`].
    TooLarge {
        /// Bytes in the offending line.
        found: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The tick budget cannot cover even the first unit of work.
    DeadlineExceeded {
        /// The request's effective budget.
        budget: u64,
        /// Ticks the request would need to produce its first result.
        needed: u64,
    },
    /// Admitting the request would overflow the work queue.
    Overloaded {
        /// Requests to wait before retrying.
        retry_after: u64,
    },
    /// Lazy training failed beyond what the recovery ladder could absorb.
    TrainFailed(String),
}

impl ServeError {
    /// Stable kebab-case error code (the response's `error` field).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadJson(_) => "bad-json",
            ServeError::NotAnObject => "not-an-object",
            ServeError::UnknownSchema => "unknown-schema",
            ServeError::UnsupportedVersion(_) => "unsupported-version",
            ServeError::MissingField(_) => "missing-field",
            ServeError::BadField { .. } => "bad-field",
            ServeError::UnknownKind(_) => "unknown-kind",
            ServeError::UnknownBenchmark(_) => "unknown-benchmark",
            ServeError::UnknownMetric(_) => "unknown-metric",
            ServeError::BadArity { .. } => "bad-arity",
            ServeError::NonFiniteInput => "non-finite-input",
            ServeError::EmptyBatch => "empty-batch",
            ServeError::TooLarge { .. } => "too-large",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::TrainFailed(_) => "train-failed",
        }
    }

    /// True for `internal`-class errors: the daemon itself failed, as
    /// opposed to the client sending something refusable. The serve
    /// binary dumps its flight recorder on the first internal error.
    pub fn is_internal(&self) -> bool {
        matches!(self, ServeError::TrainFailed(_))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadJson(msg) => write!(f, "request is not valid JSON: {msg}"),
            ServeError::NotAnObject => write!(f, "request must be a JSON object"),
            ServeError::UnknownSchema => {
                write!(
                    f,
                    "request must carry \"schema\": {:?}",
                    schema::SERVE_SCHEMA
                )
            }
            ServeError::UnsupportedVersion(found) => write!(
                f,
                "unsupported protocol version {found}; this daemon speaks v{}",
                schema::SERVE_SCHEMA_VERSION
            ),
            ServeError::MissingField(field) => write!(f, "required field {field:?} is missing"),
            ServeError::BadField { field, expected } => {
                write!(f, "field {field:?} must be {expected}")
            }
            ServeError::UnknownKind(found) => {
                write!(f, "unknown request kind {found:?}")
            }
            ServeError::UnknownBenchmark(found) => write!(f, "unknown benchmark {found:?}"),
            ServeError::UnknownMetric(found) => write!(f, "unknown metric {found:?}"),
            ServeError::BadArity { expected, found } => write!(
                f,
                "design vector has {found} knobs, the configured space needs {expected}"
            ),
            ServeError::NonFiniteInput => write!(f, "design values must be finite"),
            ServeError::EmptyBatch => write!(f, "request carries no work"),
            ServeError::TooLarge { found, limit } => {
                write!(f, "request is {found} bytes, limit is {limit}")
            }
            ServeError::DeadlineExceeded { budget, needed } => write!(
                f,
                "deadline budget {budget} ticks cannot cover the {needed} \
                 ticks needed for the first result"
            ),
            ServeError::Overloaded { retry_after } => write!(
                f,
                "work queue is full; retry after {retry_after} request(s)"
            ),
            ServeError::TrainFailed(msg) => write!(f, "model training failed: {msg}"),
        }
    }
}

impl Error for ServeError {}

/// Errors raised by [`replay`] and journal I/O — problems with the
/// journal file itself, as opposed to per-request [`ServeError`]s.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplayError {
    /// The journal's first line is not the serve magic.
    BadMagic,
    /// The journal belongs to a different [`ServeConfig`].
    Fingerprint {
        /// Fingerprint of the replaying configuration.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// The journal header is structurally broken.
    MalformedHeader,
    /// A surviving journal line does not match the replayed response —
    /// the request log and journal are from different sessions.
    Divergence {
        /// 1-based response index where live and replay disagree.
        response: usize,
    },
    /// The journal holds more responses than the request log explains.
    ExcessResponses {
        /// Complete response lines found in the journal.
        journaled: usize,
        /// Requests in the supplied log.
        requests: usize,
    },
    /// Reading or writing the journal failed.
    Io(std::io::Error),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadMagic => write!(f, "not a dynawave serve journal"),
            ReplayError::Fingerprint { expected, found } => write!(
                f,
                "journal belongs to a different serving configuration: \
                 config fingerprint {expected:016x}, journal has {found:016x}"
            ),
            ReplayError::MalformedHeader => write!(f, "malformed journal header"),
            ReplayError::Divergence { response } => write!(
                f,
                "journal diverges from replay at response {response}; the \
                 request log does not reproduce this journal"
            ),
            ReplayError::ExcessResponses {
                journaled,
                requests,
            } => write!(
                f,
                "journal holds {journaled} responses but the request log has \
                 only {requests} requests"
            ),
            ReplayError::Io(e) => write!(f, "journal I/O failed: {e}"),
        }
    }
}

impl Error for ReplayError {}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e)
    }
}

/// A cached model, or the stable reason it could not be built. Failures
/// are cached too: retraining on every request would both waste budget
/// and (under fault injection) consume extra RNG draws, breaking replay.
type CacheEntry = Result<CachedModel, String>;

struct CachedModel {
    model: WaveletNeuralPredictor,
    rung: RecoveryRung,
}

/// Worst rung implied by a loaded snapshot's sub-model kinds. A snapshot
/// has no degradation report, but its persisted fallback models tell the
/// same story.
fn rung_of_snapshot(model: &WaveletNeuralPredictor) -> RecoveryRung {
    let portable = model.to_portable();
    let mut worst = RecoveryRung::Primary;
    for m in &portable.models {
        let rung = match m {
            PortableCoeffModel::Rbf(_) => RecoveryRung::Primary,
            PortableCoeffModel::Linear { .. } => RecoveryRung::LinearFallback,
            PortableCoeffModel::Constant(_) => RecoveryRung::MeanFallback,
        };
        if rung.level() > worst.level() {
            worst = rung;
        }
    }
    worst
}

/// One parsed, validated request — the output of the pure validation
/// stage, before any budget or model work happens.
enum Request {
    Predict {
        benchmark: Benchmark,
        metric: Metric,
        points: Vec<DesignPoint>,
        with_trace: bool,
    },
    Pareto {
        benchmark: Benchmark,
        points: Vec<DesignPoint>,
    },
    TopK {
        benchmark: Benchmark,
        k: usize,
        power_budget: f64,
        points: Vec<DesignPoint>,
    },
    Sweep {
        benchmark: Benchmark,
        metric: Metric,
        base: Vec<f64>,
        axis: usize,
        values: Vec<f64>,
    },
    /// The introspection probe: no benchmark, no model, no work ticks.
    Stats,
}

impl Request {
    /// The canonical request-kind name (see
    /// [`schema::SERVE_REQUEST_KINDS`]).
    fn kind_name(&self) -> &'static str {
        match self {
            Request::Predict { .. } => "predict",
            Request::Pareto { .. } => "pareto",
            Request::TopK { .. } => "topk",
            Request::Sweep { .. } => "sweep",
            Request::Stats => "stats",
        }
    }
}

/// Journal attachment state as the `stats` snapshot reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum JournalStatus {
    /// No journal attached to this session.
    #[default]
    None,
    /// Journal attached and appending.
    Active,
    /// Journal attached but disabled by a fault (degraded durability).
    Broken,
}

impl JournalStatus {
    fn name(self) -> &'static str {
        match self {
            JournalStatus::None => "none",
            JournalStatus::Active => "active",
            JournalStatus::Broken => "broken",
        }
    }
}

/// Index of `kind` in [`schema::SERVE_REQUEST_KINDS`].
fn request_kind_index(kind: &str) -> Option<usize> {
    schema::SERVE_REQUEST_KINDS.iter().position(|k| *k == kind)
}

/// Always-on engine telemetry, snapshotted by the `stats` request kind.
///
/// This is deliberately *not* the obs recorder: tracing is optional and
/// per-thread, while these counters are part of the engine's
/// deterministic state — the same request log yields the same snapshot
/// bytes live, under `--replay`, and at any `DYNAWAVE_THREADS` setting
/// (the engine is single-threaded by construction). Everything here is
/// plain integer arithmetic on the tick clock; the cost on the hot path
/// is a handful of array increments (budgeted <2% on
/// `serve/predict_batch/8`, enforced by the BENCH ratchet).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests per canonical kind, indexed like
    /// [`schema::SERVE_REQUEST_KINDS`].
    requests: [u64; 5],
    /// Requests whose `kind` never classified (byte soup, wrong schema,
    /// unknown kind, oversized lines...).
    requests_invalid: u64,
    /// Responses per outcome: ok, partial, error, overloaded, stats.
    outcomes: [u64; 5],
    /// `error` outcomes that were internal-class ([`ServeError::is_internal`]).
    internal_errors: u64,
    /// Tick-latency histogram per *workload* kind (predict, pareto,
    /// topk, sweep — `stats` is always zero-tick and has none), on the
    /// shared [`schema::SERVE_LATENCY_BOUNDS`] bounds plus an overflow
    /// bucket.
    latency: [[u64; 10]; 4],
    /// Sum of tick budgets granted to requests that were admitted.
    deadline_granted: u64,
    /// Ticks actually consumed by admitted requests.
    deadline_used: u64,
    /// Requests refused outright because the budget could not cover the
    /// first unit of work.
    deadline_refused: u64,
    /// Model-backed responses per worst recovery rung, indexed by
    /// [`RecoveryRung::level`] (primary .. mean-fallback).
    rungs: [u64; 4],
    /// Model-cache lookups that hit.
    model_hits: u64,
    /// Model-cache lookups that missed (and went to snapshot/training).
    model_misses: u64,
    /// Cache misses filled from a persisted snapshot.
    models_loaded: u64,
    /// Cache misses filled by lazy training.
    models_trained: u64,
    /// Cache misses where training failed beyond the recovery ladder.
    models_failed: u64,
    /// Journal attachment state (set by the session owner).
    journal: JournalStatus,
    /// Kind index of the request currently in flight, for latency
    /// attribution in `handle_line`.
    in_flight: Option<usize>,
}

impl ServeStats {
    /// Classifies one request by its raw `kind` field (None = the line
    /// never produced one) and remembers it for latency attribution.
    fn classify(&mut self, kind: Option<&str>) {
        match kind.and_then(request_kind_index) {
            Some(idx) => {
                self.requests[idx] += 1;
                self.in_flight = Some(idx);
            }
            None => self.requests_invalid += 1,
        }
    }

    fn observe_latency(&mut self, kind_idx: usize, ticks: u64) {
        if let Some(hist) = self.latency.get_mut(kind_idx) {
            let bucket = schema::SERVE_LATENCY_BOUNDS
                .iter()
                .position(|&b| ticks <= b)
                .unwrap_or(schema::SERVE_LATENCY_BOUNDS.len());
            hist[bucket] += 1;
        }
    }

    /// Total internal-class errors so far (the serve binary's flight-
    /// recorder trigger).
    pub fn internal_errors(&self) -> u64 {
        self.internal_errors
    }

    /// Requests classified so far (canonical kinds plus invalid).
    fn classified_total(&self) -> u64 {
        self.requests.iter().sum::<u64>() + self.requests_invalid
    }

    /// Renders the versioned snapshot object. Field order is fixed —
    /// the snapshot is a byte-level contract (`obs_validate` checks the
    /// shape; determinism tests diff the bytes).
    fn render(&self, out: &mut String, load: u64, capacity: u64) {
        out.push_str(&format!("{{\"v\":{}", schema::SERVE_STATS_VERSION));
        out.push_str(",\"requests\":{");
        for (i, kind) in schema::SERVE_REQUEST_KINDS.iter().enumerate() {
            out.push_str(&format!("\"{kind}\":{},", self.requests[i]));
        }
        out.push_str(&format!("\"invalid\":{}}}", self.requests_invalid));
        out.push_str(",\"outcomes\":{");
        let outcome_names = ["ok", "partial", "error", "overloaded", "stats"];
        for (i, name) in outcome_names.iter().enumerate() {
            out.push_str(&format!("\"{name}\":{},", self.outcomes[i]));
        }
        out.push_str(&format!("\"internal\":{}}}", self.internal_errors));
        out.push_str(",\"latency\":{");
        for (i, hist) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"bounds\":[",
                schema::SERVE_REQUEST_KINDS[i]
            ));
            for (j, b) in schema::SERVE_LATENCY_BOUNDS.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{b}"));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in hist.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{c}"));
            }
            out.push_str("]}");
        }
        out.push('}');
        out.push_str(&format!(
            ",\"deadline\":{{\"granted\":{},\"used\":{},\"refused\":{}}}",
            self.deadline_granted, self.deadline_used, self.deadline_refused
        ));
        out.push_str(",\"rungs\":{");
        let rung_names = [
            "primary",
            "ridge-escalated",
            "linear-fallback",
            "mean-fallback",
        ];
        for (i, name) in rung_names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", self.rungs[i]));
        }
        out.push('}');
        out.push_str(&format!(
            ",\"models\":{{\"hits\":{},\"misses\":{},\"loaded\":{},\"trained\":{},\"failed\":{}}}",
            self.model_hits,
            self.model_misses,
            self.models_loaded,
            self.models_trained,
            self.models_failed
        ));
        out.push_str(&format!(
            ",\"load\":{{\"level\":{load},\"capacity\":{capacity}}}"
        ));
        out.push_str(&format!(",\"journal\":\"{}\"}}", self.journal.name()));
    }
}

/// The serving engine: a pure, deterministic function from a sequence of
/// request lines to a sequence of response lines.
///
/// All I/O lives in the callers ([`ServeJournal`], the `serve` binary);
/// the engine itself only computes, which is what makes [`replay`]
/// byte-exact. One engine serves one session: `seq`, the tick clock, the
/// load counter and the model cache all advance monotonically.
pub struct ServeEngine {
    config: ServeConfig,
    dims: usize,
    cache: BTreeMap<(String, String), CacheEntry>,
    seq: u64,
    tick: u64,
    load: u64,
    stats: ServeStats,
}

/// Outcome indices into [`ServeStats::outcomes`].
const OUT_OK: usize = 0;
const OUT_PARTIAL: usize = 1;
const OUT_ERROR: usize = 2;
const OUT_OVERLOADED: usize = 3;
const OUT_STATS: usize = 4;

/// Kind index of the `stats` probe in [`schema::SERVE_REQUEST_KINDS`]
/// (the only kind without a latency histogram).
const KIND_STATS: usize = 4;

impl ServeEngine {
    /// A fresh engine with an empty model cache and zeroed clocks.
    pub fn new(config: ServeConfig) -> Self {
        let dims = config.config.space().dims();
        ServeEngine {
            config,
            dims,
            cache: BTreeMap::new(),
            seq: 0,
            tick: 0,
            load: 0,
            stats: ServeStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Responses produced so far (equals request lines consumed).
    pub fn responses(&self) -> u64 {
        self.seq
    }

    /// The deterministic tick clock: total work ticks consumed.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The always-on telemetry the `stats` request kind snapshots.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Marks a response journal as attached to this session. Journal
    /// state lives with the session owner (the serve binary, [`replay`]);
    /// the engine only mirrors it so `stats` snapshots can report it
    /// deterministically.
    pub fn note_journal_attached(&mut self) {
        self.stats.journal = JournalStatus::Active;
    }

    /// Marks the attached journal as broken (degraded durability).
    pub fn note_journal_broken(&mut self) {
        self.stats.journal = JournalStatus::Broken;
    }

    /// Handles one request line and returns exactly one response line
    /// (no trailing newline). Total: every input, including byte soup
    /// and the empty string, maps to a well-formed JSON response.
    pub fn handle_line(&mut self, line: &str) -> String {
        let _span = dynawave_obs::span("serve.request");
        self.seq += 1;
        self.load = self.load.saturating_sub(self.config.drain_per_request);
        let tick_before = self.tick;
        let classified_before = self.stats.classified_total();
        let response = match self.process(line) {
            Ok(ok) => ok,
            Err((id, e)) => {
                if e.is_internal() {
                    self.stats.internal_errors += 1;
                }
                self.error_response(&id, &e)
            }
        };
        // Lines that failed before their `kind` could classify (byte
        // soup, wrong schema, oversize...) tally as invalid, keeping
        // sum(requests) + invalid == seq.
        if self.stats.classified_total() == classified_before {
            self.stats.requests_invalid += 1;
        }
        // Latency attribution: the ticks this request consumed, into its
        // kind's histogram. Refused/errored requests count as zero-tick —
        // a shed request is latency the client *didn't* pay.
        if let Some(kind_idx) = self.stats.in_flight.take() {
            if kind_idx != KIND_STATS {
                let delta = self.tick - tick_before;
                self.stats.observe_latency(kind_idx, delta);
                if dynawave_obs::is_enabled() {
                    if let Some(hist) =
                        schema::serve_latency_histogram(schema::SERVE_REQUEST_KINDS[kind_idx])
                    {
                        let bounds: Vec<f64> = schema::SERVE_LATENCY_BOUNDS
                            .iter()
                            .map(|&b| b as f64)
                            .collect();
                        dynawave_obs::histogram_observe(hist, &bounds, delta as f64);
                    }
                }
            }
        }
        if dynawave_obs::is_enabled() {
            dynawave_obs::gauge_set("serve.load", self.load as f64);
        }
        response
    }

    /// Everything that can fail, with the request id recovered as early
    /// as possible so even deep failures echo it back.
    fn process(&mut self, line: &str) -> Result<String, (String, ServeError)> {
        let (id, request, deadline) = {
            let _span = dynawave_obs::span("serve.parse");
            if line.len() > self.config.max_request_bytes {
                return Err((
                    String::new(),
                    ServeError::TooLarge {
                        found: line.len(),
                        limit: self.config.max_request_bytes,
                    },
                ));
            }
            let value = json::parse(line)
                .map_err(|e| (String::new(), ServeError::BadJson(e.to_string())))?;
            let obj = value
                .as_object()
                .ok_or((String::new(), ServeError::NotAnObject))?;
            // Recover the id before any further validation.
            let id = match obj.get("id") {
                None => String::new(),
                Some(v) => v.as_str().map(str::to_string).ok_or((
                    String::new(),
                    ServeError::BadField {
                        field: "id",
                        expected: "a string",
                    },
                ))?,
            };
            let fail = |e: ServeError| (id.clone(), e);
            if obj.get("schema").and_then(Value::as_str) != Some(schema::SERVE_SCHEMA) {
                return Err(fail(ServeError::UnknownSchema));
            }
            match obj.get("v") {
                Some(v) if v.as_u64() == Some(schema::SERVE_SCHEMA_VERSION) => {}
                Some(v) => {
                    let found = match v.as_f64() {
                        Some(n) => format!("{n}"),
                        None => "non-numeric".to_string(),
                    };
                    return Err(fail(ServeError::UnsupportedVersion(found)));
                }
                None => return Err(fail(ServeError::MissingField("v"))),
            }
            // The line has a classifiable kind from here on: tally it
            // (even if deeper validation rejects the payload).
            self.stats.classify(obj.get("kind").and_then(Value::as_str));
            let request = self.validate(obj).map_err(&fail)?;
            let deadline = match obj.get("deadline") {
                None => self.config.default_deadline,
                Some(v) => match v.as_u64() {
                    Some(d) if d > 0 => d,
                    _ => {
                        return Err(fail(ServeError::BadField {
                            field: "deadline",
                            expected: "a positive integer tick budget",
                        }))
                    }
                },
            };
            (id, request, deadline)
        };
        if dynawave_obs::is_enabled() {
            dynawave_obs::marker_with_detail(
                "serve.request_id",
                &format!("id={id} kind={}", request.kind_name()),
            );
        }
        let fail = |e: ServeError| (id.clone(), e);
        self.execute(&id, &request, deadline).map_err(fail)
    }

    /// Pure structural validation: no budget, no models, no state.
    fn validate(&self, obj: &BTreeMap<String, Value>) -> Result<Request, ServeError> {
        let kind = obj
            .get("kind")
            .ok_or(ServeError::MissingField("kind"))?
            .as_str()
            .ok_or(ServeError::BadField {
                field: "kind",
                expected: "a string",
            })?;
        // The introspection probe carries no benchmark or payload, so it
        // dispatches before the benchmark requirement below.
        if kind == "stats" {
            return Ok(Request::Stats);
        }
        let benchmark = {
            let name = obj
                .get("benchmark")
                .ok_or(ServeError::MissingField("benchmark"))?
                .as_str()
                .ok_or(ServeError::BadField {
                    field: "benchmark",
                    expected: "a string",
                })?;
            Benchmark::from_name(name)
                .ok_or_else(|| ServeError::UnknownBenchmark(name.to_string()))?
        };
        match kind {
            "predict" => Ok(Request::Predict {
                benchmark,
                metric: self.metric_field(obj)?,
                points: self.points_field(obj, "points")?,
                with_trace: match obj.get("trace") {
                    None => false,
                    Some(Value::Bool(b)) => *b,
                    Some(_) => {
                        return Err(ServeError::BadField {
                            field: "trace",
                            expected: "a boolean",
                        })
                    }
                },
            }),
            "pareto" => Ok(Request::Pareto {
                benchmark,
                points: self.points_field(obj, "points")?,
            }),
            "topk" => {
                let k = obj
                    .get("k")
                    .ok_or(ServeError::MissingField("k"))?
                    .as_u64()
                    .filter(|&k| k > 0)
                    .ok_or(ServeError::BadField {
                        field: "k",
                        expected: "a positive integer",
                    })? as usize;
                let power_budget = obj
                    .get("power_budget")
                    .ok_or(ServeError::MissingField("power_budget"))?
                    .as_f64()
                    .filter(|b| b.is_finite())
                    .ok_or(ServeError::BadField {
                        field: "power_budget",
                        expected: "a finite number",
                    })?;
                Ok(Request::TopK {
                    benchmark,
                    k,
                    power_budget,
                    points: self.points_field(obj, "points")?,
                })
            }
            "sweep" => {
                let base = self.point_values(
                    obj.get("base").ok_or(ServeError::MissingField("base"))?,
                    "base",
                )?;
                let axis = obj
                    .get("axis")
                    .ok_or(ServeError::MissingField("axis"))?
                    .as_u64()
                    .filter(|&a| (a as usize) < self.dims)
                    .ok_or(ServeError::BadField {
                        field: "axis",
                        expected: "an integer knob index inside the design space",
                    })? as usize;
                let values = obj
                    .get("values")
                    .ok_or(ServeError::MissingField("values"))?
                    .as_array()
                    .ok_or(ServeError::BadField {
                        field: "values",
                        expected: "an array of numbers",
                    })?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .filter(|x| x.is_finite())
                            .ok_or(ServeError::NonFiniteInput)
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                if values.is_empty() {
                    return Err(ServeError::EmptyBatch);
                }
                Ok(Request::Sweep {
                    benchmark,
                    metric: self.metric_field(obj)?,
                    base,
                    axis,
                    values,
                })
            }
            other => Err(ServeError::UnknownKind(other.to_string())),
        }
    }

    fn metric_field(&self, obj: &BTreeMap<String, Value>) -> Result<Metric, ServeError> {
        let name = obj
            .get("metric")
            .ok_or(ServeError::MissingField("metric"))?
            .as_str()
            .ok_or(ServeError::BadField {
                field: "metric",
                expected: "a string",
            })?;
        Metric::parse(name).ok_or_else(|| ServeError::UnknownMetric(name.to_string()))
    }

    /// One design vector: array of `dims` finite numbers.
    fn point_values(&self, v: &Value, field: &'static str) -> Result<Vec<f64>, ServeError> {
        let arr = v.as_array().ok_or(ServeError::BadField {
            field,
            expected: "an array of numbers",
        })?;
        if arr.len() != self.dims {
            return Err(ServeError::BadArity {
                expected: self.dims,
                found: arr.len(),
            });
        }
        arr.iter()
            .map(|x| {
                x.as_f64()
                    .filter(|v| v.is_finite())
                    .ok_or(ServeError::NonFiniteInput)
            })
            .collect()
    }

    fn points_field(
        &self,
        obj: &BTreeMap<String, Value>,
        field: &'static str,
    ) -> Result<Vec<DesignPoint>, ServeError> {
        let arr = obj
            .get(field)
            .ok_or(ServeError::MissingField("points"))?
            .as_array()
            .ok_or(ServeError::BadField {
                field,
                expected: "an array of design vectors",
            })?;
        if arr.is_empty() {
            return Err(ServeError::EmptyBatch);
        }
        arr.iter()
            .map(|p| self.point_values(p, field).map(DesignPoint::new))
            .collect()
    }

    /// Cost model, admission control and dispatch for a valid request.
    fn execute(
        &mut self,
        id: &str,
        request: &Request,
        deadline: u64,
    ) -> Result<String, ServeError> {
        // The stats probe is side-effect free: no admission, no models,
        // no ticks — just a snapshot of the telemetry as it stands.
        if let Request::Stats = request {
            return Ok(self.stats_response(id));
        }
        let (metrics, items): (Vec<Metric>, u64) = match request {
            Request::Predict { metric, points, .. } => (vec![*metric], points.len() as u64),
            Request::Pareto { points, .. } => (Metric::DOMAINS.to_vec(), 3 * points.len() as u64),
            Request::TopK { points, .. } => {
                (vec![Metric::Cpi, Metric::Power], 2 * points.len() as u64)
            }
            Request::Sweep { metric, values, .. } => (vec![*metric], values.len() as u64),
            Request::Stats => (Vec::new(), 0),
        };
        let benchmark = match request {
            Request::Predict { benchmark, .. }
            | Request::Pareto { benchmark, .. }
            | Request::TopK { benchmark, .. }
            | Request::Sweep { benchmark, .. } => *benchmark,
            // Answered above; a benign default keeps the match total.
            Request::Stats => Benchmark::Gcc,
        };
        let uncached = metrics
            .iter()
            .filter(|m| {
                !self
                    .cache
                    .contains_key(&(benchmark.name().to_string(), m.name().to_string()))
            })
            .count() as u64;
        let upfront = uncached * self.config.train_cost;
        let total_cost = upfront + items;
        {
            let _span = dynawave_obs::span("serve.admission");
            // Backpressure before any work: the leaky bucket was drained
            // on entry; if this request's full cost would overflow it,
            // refuse with a deterministic retry hint.
            if self.load + total_cost > self.config.queue_capacity {
                let drain = self.config.drain_per_request.max(1);
                let excess = self.load + total_cost - self.config.queue_capacity;
                let retry_after = excess.div_ceil(drain);
                dynawave_obs::counter_add("serve.responses.overloaded", 1);
                if dynawave_obs::is_enabled() {
                    dynawave_obs::marker_with_detail(
                        "serve.overloaded",
                        &format!("id={id} retry_after={retry_after}"),
                    );
                }
                return Err(ServeError::Overloaded { retry_after });
            }

            // Deadline: the batch-splittable endpoints (predict, sweep)
            // need budget for training plus one item; the rank/frontier
            // endpoints need the whole batch, because a frontier over
            // half the candidates is not a partial answer, it is a wrong
            // one.
            let splittable = matches!(request, Request::Predict { .. } | Request::Sweep { .. });
            let needed = if splittable { upfront + 1 } else { total_cost };
            if deadline < needed {
                dynawave_obs::counter_add("serve.responses.deadline_exceeded", 1);
                self.stats.deadline_refused += 1;
                return Err(ServeError::DeadlineExceeded {
                    budget: deadline,
                    needed,
                });
            }
            self.stats.deadline_granted += deadline;
        }

        // Acquire the models (cache hit, snapshot load, or lazy train).
        {
            let _span = dynawave_obs::span("serve.model_resolve");
            for m in &metrics {
                self.ensure_model(benchmark, *m)?;
            }
        }
        let rung = metrics
            .iter()
            .filter_map(|m| {
                self.cache
                    .get(&(benchmark.name().to_string(), m.name().to_string()))
                    .and_then(|e| e.as_ref().ok())
                    .map(|c| c.rung)
            })
            .max_by_key(|r| r.level())
            .unwrap_or(RecoveryRung::Primary);
        self.stats.rungs[(rung.level() as usize).min(3)] += 1;
        if rung.level() > 0 {
            dynawave_obs::counter_add("serve.responses.degraded", 1);
            if dynawave_obs::is_enabled() {
                dynawave_obs::marker_with_detail(
                    "serve.degraded",
                    &format!("id={id} rung={}", rung.name()),
                );
            }
        }

        // Execute within the remaining item budget.
        let item_budget = deadline - upfront;
        let (results, completed, total) = {
            let _span = dynawave_obs::span("serve.solve");
            self.run(request, item_budget)?
        };
        let consumed = upfront + completed.min(items);
        self.tick += consumed;
        self.load += consumed;
        self.stats.deadline_used += consumed;

        let partial = completed < total;
        let kind = if partial { "partial" } else { "ok" };
        self.stats.outcomes[if partial { OUT_PARTIAL } else { OUT_OK }] += 1;
        dynawave_obs::counter_add(
            if partial {
                "serve.responses.partial"
            } else {
                "serve.responses.ok"
            },
            1,
        );
        let mut out = self.response_head(id, kind);
        out.push_str(",\"rung\":");
        push_json_string(&mut out, rung.name());
        if partial {
            out.push_str(&format!(
                ",\"error\":\"deadline-exceeded\",\"completed\":{completed},\"total\":{total}"
            ));
        }
        out.push_str(",\"results\":");
        out.push_str(&results);
        out.push('}');
        Ok(out)
    }

    /// Runs the request's prediction work under `item_budget` ticks.
    /// Returns the encoded results array, items completed, items total.
    fn run(&self, request: &Request, item_budget: u64) -> Result<(String, u64, u64), ServeError> {
        match request {
            Request::Predict {
                benchmark,
                metric,
                points,
                with_trace,
            } => {
                let model = self.cached(*benchmark, *metric)?;
                let total = points.len() as u64;
                let take = (item_budget.min(total)) as usize;
                let mut out = String::from("[");
                for (i, p) in points.iter().take(take).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let trace = model.predict(p);
                    let n = trace.len().max(1) as f64;
                    let mean = trace.iter().sum::<f64>() / n;
                    let lo = trace.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = trace.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    out.push_str("{\"mean\":");
                    push_json_number(&mut out, mean);
                    out.push_str(",\"min\":");
                    push_json_number(&mut out, lo);
                    out.push_str(",\"max\":");
                    push_json_number(&mut out, hi);
                    if *with_trace {
                        out.push_str(",\"trace\":[");
                        for (j, v) in trace.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            push_json_number(&mut out, *v);
                        }
                        out.push(']');
                    }
                    out.push('}');
                }
                out.push(']');
                Ok((out, take as u64, total))
            }
            Request::Pareto { benchmark, points } => {
                let means = self.domain_means(*benchmark, points)?;
                let mut out = String::from("[");
                let mut first = true;
                for (i, a) in means.iter().enumerate() {
                    let dominated = means.iter().enumerate().any(|(j, b)| {
                        j != i
                            && b.iter().zip(a).all(|(x, y)| x <= y)
                            && b.iter().zip(a).any(|(x, y)| x < y)
                    });
                    if dominated {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("{{\"index\":{i},\"cpi\":"));
                    push_json_number(&mut out, a[0]);
                    out.push_str(",\"power\":");
                    push_json_number(&mut out, a[1]);
                    out.push_str(",\"avf\":");
                    push_json_number(&mut out, a[2]);
                    out.push('}');
                }
                out.push(']');
                let total = 3 * points.len() as u64;
                Ok((out, total, total))
            }
            Request::TopK {
                benchmark,
                k,
                power_budget,
                points,
            } => {
                let cpi_model = self.cached(*benchmark, Metric::Cpi)?;
                let power_model = self.cached(*benchmark, Metric::Power)?;
                let mut ranked: Vec<(usize, f64, f64)> = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        (
                            i,
                            trace_mean(&cpi_model.predict(p)),
                            trace_mean(&power_model.predict(p)),
                        )
                    })
                    .filter(|(_, _, power)| power <= power_budget)
                    .collect();
                // Deterministic order: CPI ascending, index as tiebreak.
                ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let mut out = String::from("[");
                for (n, (i, cpi, power)) in ranked.iter().take(*k).enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"index\":{i},\"cpi\":"));
                    push_json_number(&mut out, *cpi);
                    out.push_str(",\"power\":");
                    push_json_number(&mut out, *power);
                    out.push('}');
                }
                out.push(']');
                let total = 2 * points.len() as u64;
                Ok((out, total, total))
            }
            Request::Sweep {
                benchmark,
                metric,
                base,
                axis,
                values,
            } => {
                let model = self.cached(*benchmark, *metric)?;
                let total = values.len() as u64;
                let take = (item_budget.min(total)) as usize;
                let mut out = String::from("[");
                for (i, v) in values.iter().take(take).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let mut knobs = base.clone();
                    if let Some(slot) = knobs.get_mut(*axis) {
                        *slot = *v;
                    }
                    let mean = trace_mean(&model.predict(&DesignPoint::new(knobs)));
                    out.push_str("{\"value\":");
                    push_json_number(&mut out, *v);
                    out.push_str(",\"mean\":");
                    push_json_number(&mut out, mean);
                    out.push('}');
                }
                out.push(']');
                Ok((out, take as u64, total))
            }
            // Dispatched in `execute` before any budget work; this arm
            // only keeps the match total.
            Request::Stats => Ok((String::from("[]"), 0, 0)),
        }
    }

    /// Answers the `stats` probe: the versioned telemetry snapshot,
    /// including this very response in its own outcome counters (so
    /// `sum(outcomes) == seq` holds for every snapshot).
    fn stats_response(&mut self, id: &str) -> String {
        self.stats.outcomes[OUT_STATS] += 1;
        dynawave_obs::counter_add("serve.responses.stats", 1);
        let mut out = self.response_head(id, "stats");
        out.push_str(",\"stats\":");
        self.stats
            .render(&mut out, self.load, self.config.queue_capacity);
        out.push('}');
        out
    }

    /// Mean CPI/power/AVF per point (order of [`Metric::DOMAINS`]).
    fn domain_means(
        &self,
        benchmark: Benchmark,
        points: &[DesignPoint],
    ) -> Result<Vec<[f64; 3]>, ServeError> {
        let models: Vec<&WaveletNeuralPredictor> = Metric::DOMAINS
            .iter()
            .map(|m| self.cached(benchmark, *m))
            .collect::<Result<_, _>>()?;
        Ok(points
            .iter()
            .map(|p| {
                let mut means = [0.0; 3];
                for (slot, model) in means.iter_mut().zip(&models) {
                    *slot = trace_mean(&model.predict(p));
                }
                means
            })
            .collect())
    }

    /// The cached model for a key [`Self::ensure_model`] already
    /// populated.
    fn cached(
        &self,
        benchmark: Benchmark,
        metric: Metric,
    ) -> Result<&WaveletNeuralPredictor, ServeError> {
        match self
            .cache
            .get(&(benchmark.name().to_string(), metric.name().to_string()))
        {
            Some(Ok(entry)) => Ok(&entry.model),
            Some(Err(msg)) => Err(ServeError::TrainFailed(msg.clone())),
            None => Err(ServeError::TrainFailed(
                "model cache entry missing (engine bug)".to_string(),
            )),
        }
    }

    /// Populates the cache for `(benchmark, metric)`: snapshot load from
    /// `models_dir` first, lazy training under the recovery policy as
    /// the fallback. Failures are cached so a broken key fails the same
    /// way on every request.
    fn ensure_model(&mut self, benchmark: Benchmark, metric: Metric) -> Result<(), ServeError> {
        let key = (benchmark.name().to_string(), metric.name().to_string());
        if self.cache.contains_key(&key) {
            self.stats.model_hits += 1;
            return Ok(());
        }
        self.stats.model_misses += 1;
        let _span = dynawave_obs::span("serve.model_acquire");
        if let Some(dir) = self.config.models_dir.clone() {
            let path = dir.join(format!("{}_{}.dynawave", benchmark.name(), metric.name()));
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| persist::from_string(&text).map_err(|e| e.to_string()))
            {
                Ok(model) => {
                    let rung = rung_of_snapshot(&model);
                    self.stats.models_loaded += 1;
                    dynawave_obs::counter_add("serve.models.loaded", 1);
                    self.cache.insert(key, Ok(CachedModel { model, rung }));
                    return Ok(());
                }
                Err(reason) => {
                    // Degradation, not failure: fall back to training.
                    dynawave_obs::marker_with_detail("serve.model_load_failed", &reason);
                }
            }
        }
        let cfg = &self.config.config;
        let train = collect_traces(benchmark, &cfg.train_design(), metric, &cfg.sim_options());
        let entry =
            match WaveletNeuralPredictor::train_resilient(&train, &cfg.predictor, &cfg.recovery) {
                Ok((model, degradation)) => {
                    let rung = degradation
                        .records()
                        .iter()
                        .map(|r| r.rung)
                        .max_by_key(|r| r.level())
                        .unwrap_or(RecoveryRung::Primary);
                    self.stats.models_trained += 1;
                    dynawave_obs::counter_add("serve.models.trained", 1);
                    Ok(CachedModel { model, rung })
                }
                Err(e) => {
                    self.stats.models_failed += 1;
                    dynawave_obs::counter_add("serve.models.failed", 1);
                    Err(e.to_string())
                }
            };
        let failed = entry.as_ref().err().cloned();
        self.cache.insert(key, entry);
        match failed {
            Some(msg) => Err(ServeError::TrainFailed(msg)),
            None => Ok(()),
        }
    }

    /// Common response prefix: schema, version, seq, tick, id, kind.
    fn response_head(&self, id: &str, kind: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"v\":{},\"seq\":{},\"tick\":{},\"id\":",
            schema::SERVE_SCHEMA,
            schema::SERVE_SCHEMA_VERSION,
            self.seq,
            self.tick
        ));
        push_json_string(&mut out, id);
        out.push_str(",\"kind\":");
        push_json_string(&mut out, kind);
        out
    }

    /// Encodes a [`ServeError`] as its response line. `overloaded` gets
    /// its own response kind (clients treat it as "try again", not
    /// "request was wrong"); everything else is kind `error`.
    fn error_response(&mut self, id: &str, e: &ServeError) -> String {
        let kind = match e {
            ServeError::Overloaded { .. } => "overloaded",
            _ => "error",
        };
        if kind == "error" {
            self.stats.outcomes[OUT_ERROR] += 1;
            dynawave_obs::counter_add("serve.responses.error", 1);
        } else {
            self.stats.outcomes[OUT_OVERLOADED] += 1;
        }
        let mut out = self.response_head(id, kind);
        out.push_str(",\"error\":");
        push_json_string(&mut out, e.code());
        out.push_str(",\"detail\":");
        push_json_string(&mut out, &e.to_string());
        if let ServeError::Overloaded { retry_after } = e {
            out.push_str(&format!(",\"retry_after\":{retry_after}"));
        }
        out.push('}');
        out
    }
}

/// Mean of a predicted dynamics trace.
fn trace_mean(trace: &[f64]) -> f64 {
    trace.iter().sum::<f64>() / trace.len().max(1) as f64
}

/// Append-only response journal with the campaign journal's crash
/// discipline: fingerprinted header, newline-terminated records, and a
/// torn final line treated as never written.
///
/// Journal faults ([`FaultSite::JournalAppend`] injection or real I/O
/// errors) flip the journal into a broken state: the daemon keeps
/// serving, no further appends happen, and the journal remains a clean
/// prefix of the response stream — degraded durability, never a torn
/// middle.
pub struct ServeJournal {
    path: PathBuf,
    broken: bool,
}

impl ServeJournal {
    /// Creates (truncating) the journal and writes the header.
    pub fn create(path: &Path, config: &ServeConfig) -> Result<Self, std::io::Error> {
        std::fs::write(path, config.journal_header())?;
        Ok(ServeJournal {
            path: path.to_path_buf(),
            broken: false,
        })
    }

    /// Appends one response line (newline added here). After the first
    /// failure — injected or real — the journal is broken and appends
    /// become no-ops; the caller keeps serving.
    pub fn append(&mut self, response: &str) {
        if self.broken {
            return;
        }
        let _span = dynawave_obs::span("serve.journal_append");
        if fault::inject(FaultSite::JournalAppend).is_some() {
            self.mark_broken("injected journal fault");
            return;
        }
        let mut line = String::with_capacity(response.len() + 1);
        line.push_str(response);
        line.push('\n');
        use std::io::Write as _;
        let outcome = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = outcome {
            self.mark_broken(&e.to_string());
        }
    }

    fn mark_broken(&mut self, reason: &str) {
        self.broken = true;
        dynawave_obs::counter_add("serve.journal.broken", 1);
        dynawave_obs::marker_with_detail("serve.journal_disabled", reason);
    }

    /// `true` once journaling has been disabled by a fault.
    pub fn is_broken(&self) -> bool {
        self.broken
    }
}

/// Outcome of a successful [`replay`].
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Every response line the request log produces, in order.
    pub responses: Vec<String>,
    /// Complete journal lines that survived the crash and were verified
    /// byte-for-byte against the replay.
    pub verified: usize,
    /// `true` when the surviving journal ended in a torn (ignored)
    /// partial line — the signature of a kill mid-write.
    pub torn_tail: bool,
}

/// Replays `request_log` through a fresh engine and reconciles the
/// response journal at `journal_path`.
///
/// The surviving journal (header + complete response lines; a torn final
/// line is ignored, exactly like campaign journals) must be a
/// byte-for-byte prefix of the replayed responses — it was produced by
/// the same deterministic engine, so any divergence means the request
/// log and journal do not belong together and replay refuses to guess.
/// On success the journal is rewritten to the full uninterrupted
/// transcript: header plus every response, newline-terminated, torn tail
/// gone.
///
/// A missing journal file is treated as an empty journal (verified 0):
/// replay then simply regenerates it.
///
/// # Errors
///
/// [`ReplayError`] on header mismatch, fingerprint mismatch, divergence
/// or I/O failure. The journal is not modified on error.
pub fn replay(
    config: ServeConfig,
    request_log: &str,
    journal_path: &Path,
) -> Result<ReplayOutcome, ReplayError> {
    let _span = dynawave_obs::span("serve.replay");
    let raw = match std::fs::read_to_string(journal_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(ReplayError::Io(e)),
    };
    let torn_tail = !raw.is_empty() && !raw.ends_with('\n');
    let survivors = complete_lines(&raw);
    let mut journaled: Vec<&str> = Vec::new();
    if !survivors.is_empty() {
        let mut lines = survivors.lines();
        match lines.next() {
            Some(m) if m == MAGIC => {}
            _ => return Err(ReplayError::BadMagic),
        }
        let found = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or(ReplayError::MalformedHeader)?;
        let expected = config.fingerprint();
        if found != expected {
            return Err(ReplayError::Fingerprint { expected, found });
        }
        journaled = lines.collect();
    }

    let mut engine = ServeEngine::new(config);
    // Replay always runs against a journal, so `stats` snapshots report
    // the same "active" journal state the live journaled session saw.
    engine.note_journal_attached();
    let responses: Vec<String> = request_log
        .lines()
        .map(|line| engine.handle_line(line))
        .collect();

    if journaled.len() > responses.len() {
        return Err(ReplayError::ExcessResponses {
            journaled: journaled.len(),
            requests: responses.len(),
        });
    }
    for (i, (old, new)) in journaled.iter().zip(&responses).enumerate() {
        if old != new {
            return Err(ReplayError::Divergence { response: i + 1 });
        }
    }

    let mut full = engine.config().journal_header();
    for r in &responses {
        full.push_str(r);
        full.push('\n');
    }
    std::fs::write(journal_path, &full)?;
    dynawave_obs::counter_add("serve.replay.responses", responses.len() as u64);
    Ok(ReplayOutcome {
        responses,
        verified: journaled.len(),
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny but real serving configuration: fast to train, cheap ticks.
    fn tiny_config() -> ServeConfig {
        ServeConfig {
            config: ExperimentConfig {
                train_points: 12,
                test_points: 2,
                samples: 16,
                interval_instructions: 300,
                seed: 9,
                ..ExperimentConfig::default()
            },
            default_deadline: 4096,
            queue_capacity: 1 << 14,
            drain_per_request: 32,
            train_cost: 64,
            max_request_bytes: 1 << 16,
            models_dir: None,
        }
    }

    fn point_json(dims: usize, base: f64) -> String {
        let knobs: Vec<String> = (0..dims).map(|i| format!("{}", base + i as f64)).collect();
        format!("[{}]", knobs.join(","))
    }

    fn predict_request(id: &str, points: usize) -> String {
        let dims = ExperimentConfig::default().space().dims();
        let pts: Vec<String> = (0..points)
            .map(|i| point_json(dims, 2.0 + i as f64))
            .collect();
        format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"id\":\"{id}\",\
             \"kind\":\"predict\",\"benchmark\":\"gcc\",\"metric\":\"cpi\",\
             \"points\":[{}]}}",
            pts.join(",")
        )
    }

    fn parse_resp(line: &str) -> BTreeMap<String, Value> {
        json::parse(line)
            .expect("response must be valid JSON")
            .as_object()
            .expect("response must be an object")
            .clone()
    }

    #[test]
    fn predict_roundtrip_reports_rung_and_results() {
        let mut engine = ServeEngine::new(tiny_config());
        let resp = engine.handle_line(&predict_request("r1", 2));
        let obj = parse_resp(&resp);
        assert_eq!(obj["schema"].as_str(), Some(schema::SERVE_SCHEMA));
        assert_eq!(obj["v"].as_u64(), Some(1));
        assert_eq!(obj["seq"].as_u64(), Some(1));
        assert_eq!(obj["id"].as_str(), Some("r1"));
        assert_eq!(obj["kind"].as_str(), Some("ok"));
        assert_eq!(obj["rung"].as_str(), Some("primary"));
        let results = obj["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        for r in results {
            let mean = r.as_object().unwrap()["mean"].as_f64().unwrap();
            assert!(mean.is_finite() && mean > 0.0);
        }
        // Second request hits the cache: tick advances by items only.
        let t1 = obj["tick"].as_u64().unwrap();
        let resp2 = engine.handle_line(&predict_request("r2", 2));
        let obj2 = parse_resp(&resp2);
        assert_eq!(obj2["tick"].as_u64(), Some(t1 + 2));
    }

    #[test]
    fn malformed_inputs_get_typed_error_responses() {
        let mut engine = ServeEngine::new(tiny_config());
        let cases: &[(&str, &str)] = &[
            ("", "bad-json"),
            ("not json", "bad-json"),
            ("[1,2,3]", "not-an-object"),
            ("{}", "unknown-schema"),
            ("{\"schema\":\"dynawave-obs\",\"v\":1}", "unknown-schema"),
            ("{\"schema\":\"dynawave-serve\"}", "missing-field"),
            (
                "{\"schema\":\"dynawave-serve\",\"v\":2}",
                "unsupported-version",
            ),
            ("{\"schema\":\"dynawave-serve\",\"v\":1}", "missing-field"),
            (
                "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"zap\",\
                 \"benchmark\":\"gcc\"}",
                "unknown-kind",
            ),
            (
                "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"predict\",\
                 \"benchmark\":\"quake3\"}",
                "unknown-benchmark",
            ),
            (
                "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"predict\",\
                 \"benchmark\":\"gcc\",\"metric\":\"mips\"}",
                "unknown-metric",
            ),
            (
                "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"predict\",\
                 \"benchmark\":\"gcc\",\"metric\":\"cpi\",\"points\":[[1,2]]}",
                "bad-arity",
            ),
            (
                "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"predict\",\
                 \"benchmark\":\"gcc\",\"metric\":\"cpi\",\"points\":[]}",
                "empty-batch",
            ),
        ];
        for (i, (input, code)) in cases.iter().enumerate() {
            let resp = engine.handle_line(input);
            let obj = parse_resp(&resp);
            assert_eq!(obj["kind"].as_str(), Some("error"), "case {i}: {input}");
            assert_eq!(obj["error"].as_str(), Some(*code), "case {i}: {input}");
            assert_eq!(obj["seq"].as_u64(), Some(i as u64 + 1));
            assert!(obj["detail"].as_str().is_some());
        }
        // Errors never consult a model, so no training happened.
        assert_eq!(engine.tick(), 0);
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let mut engine = ServeEngine::new(tiny_config());
        let dims = ExperimentConfig::default().space().dims();
        let mut knobs = vec!["2.0".to_string(); dims];
        if let Some(first) = knobs.get_mut(0) {
            // 1e999 overflows f64 to infinity in this parser.
            *first = "1e999".to_string();
        }
        let req = format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"predict\",\
             \"benchmark\":\"gcc\",\"metric\":\"cpi\",\"points\":[[{}]]}}",
            knobs.join(",")
        );
        let obj = parse_resp(&engine.handle_line(&req));
        assert_eq!(obj["error"].as_str(), Some("non-finite-input"));
    }

    #[test]
    fn deadline_partial_and_exceeded() {
        let mut engine = ServeEngine::new(tiny_config());
        // Budget covers training + 2 of 4 points -> partial.
        let req = predict_request("p", 4);
        let with_deadline =
            req.replacen("\"kind\"", &format!("\"deadline\":{},\"kind\"", 64 + 2), 1);
        let obj = parse_resp(&engine.handle_line(&with_deadline));
        assert_eq!(obj["kind"].as_str(), Some("partial"));
        assert_eq!(obj["error"].as_str(), Some("deadline-exceeded"));
        assert_eq!(obj["completed"].as_u64(), Some(2));
        assert_eq!(obj["total"].as_u64(), Some(4));
        assert_eq!(obj["results"].as_array().unwrap().len(), 2);
        // Budget below train cost -> typed error before any work.
        let mut fresh = ServeEngine::new(tiny_config());
        let starved = req.replacen("\"kind\"", "\"deadline\":3,\"kind\"", 1);
        let obj = parse_resp(&fresh.handle_line(&starved));
        assert_eq!(obj["kind"].as_str(), Some("error"));
        assert_eq!(obj["error"].as_str(), Some("deadline-exceeded"));
        assert_eq!(fresh.tick(), 0, "a starved request must not train");
    }

    #[test]
    fn backpressure_overloads_deterministically() {
        let cfg = ServeConfig {
            queue_capacity: 80,
            drain_per_request: 10,
            train_cost: 64,
            ..tiny_config()
        };
        let mut engine = ServeEngine::new(cfg);
        // Request 1: cost 64 (train) + 2 = 66, load 66. Request 2 after
        // drain: load 56, cost 2 -> 58. Request 3: load 48 + 2 = 50 ...
        // keep pushing until the bucket fills.
        let mut saw_overload = None;
        for i in 0..40 {
            let obj = parse_resp(&engine.handle_line(&predict_request("b", 16)));
            if obj["kind"].as_str() == Some("overloaded") {
                assert_eq!(obj["error"].as_str(), Some("overloaded"));
                let retry = obj["retry_after"].as_u64().unwrap();
                assert!(retry >= 1);
                saw_overload = Some(i);
                break;
            }
        }
        assert!(saw_overload.is_some(), "bucket must eventually overflow");
        // Identical engines overload at the identical request index.
        let cfg = ServeConfig {
            queue_capacity: 80,
            drain_per_request: 10,
            train_cost: 64,
            ..tiny_config()
        };
        let mut twin = ServeEngine::new(cfg);
        for i in 0..40 {
            let obj = parse_resp(&twin.handle_line(&predict_request("b", 16)));
            if obj["kind"].as_str() == Some("overloaded") {
                assert_eq!(
                    Some(i),
                    saw_overload,
                    "overload point must be deterministic"
                );
                break;
            }
        }
    }

    #[test]
    fn too_large_requests_are_refused_before_parse() {
        let cfg = ServeConfig {
            max_request_bytes: 64,
            ..tiny_config()
        };
        let mut engine = ServeEngine::new(cfg);
        let obj = parse_resp(&engine.handle_line(&predict_request("big", 8)));
        assert_eq!(obj["error"].as_str(), Some("too-large"));
    }

    #[test]
    fn pareto_returns_nondominated_set() {
        let mut engine = ServeEngine::new(tiny_config());
        let dims = ExperimentConfig::default().space().dims();
        let pts: Vec<String> = (0..4).map(|i| point_json(dims, 1.5 + i as f64)).collect();
        let req = format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"pareto\",\
             \"benchmark\":\"gcc\",\"points\":[{}]}}",
            pts.join(",")
        );
        let obj = parse_resp(&engine.handle_line(&req));
        assert_eq!(obj["kind"].as_str(), Some("ok"));
        let frontier = obj["results"].as_array().unwrap();
        assert!(!frontier.is_empty() && frontier.len() <= 4);
        for f in frontier {
            let o = f.as_object().unwrap();
            assert!(o["cpi"].as_f64().unwrap().is_finite());
            assert!(o["power"].as_f64().unwrap().is_finite());
            assert!(o["avf"].as_f64().unwrap().is_finite());
        }
    }

    #[test]
    fn topk_respects_budget_and_order() {
        let mut engine = ServeEngine::new(tiny_config());
        let dims = ExperimentConfig::default().space().dims();
        let pts: Vec<String> = (0..5).map(|i| point_json(dims, 1.5 + i as f64)).collect();
        let req = format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"topk\",\"k\":3,\
             \"power_budget\":1e9,\"benchmark\":\"gcc\",\"points\":[{}]}}",
            pts.join(",")
        );
        let obj = parse_resp(&engine.handle_line(&req));
        assert_eq!(obj["kind"].as_str(), Some("ok"));
        let ranked = obj["results"].as_array().unwrap();
        assert_eq!(ranked.len(), 3);
        let cpis: Vec<f64> = ranked
            .iter()
            .map(|r| r.as_object().unwrap()["cpi"].as_f64().unwrap())
            .collect();
        assert!(cpis.windows(2).all(|w| w[0] <= w[1]), "{cpis:?}");
        // An impossible power budget excludes everything.
        let req = req.replacen("1e9", "-1e9", 1);
        let obj = parse_resp(&engine.handle_line(&req));
        assert_eq!(obj["results"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn sweep_varies_one_axis() {
        let mut engine = ServeEngine::new(tiny_config());
        let dims = ExperimentConfig::default().space().dims();
        let req = format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"sweep\",\
             \"benchmark\":\"gcc\",\"metric\":\"cpi\",\"base\":{},\
             \"axis\":0,\"values\":[2,4,8]}}",
            point_json(dims, 2.0)
        );
        let obj = parse_resp(&engine.handle_line(&req));
        assert_eq!(obj["kind"].as_str(), Some("ok"));
        let results = obj["results"].as_array().unwrap();
        assert_eq!(results.len(), 3);
        let values: Vec<f64> = results
            .iter()
            .map(|r| r.as_object().unwrap()["value"].as_f64().unwrap())
            .collect();
        assert_eq!(values, vec![2.0, 4.0, 8.0]);
        // An out-of-space axis is a typed error.
        let req = req.replacen("\"axis\":0", "\"axis\":99", 1);
        let obj = parse_resp(&engine.handle_line(&req));
        assert_eq!(obj["error"].as_str(), Some("bad-field"));
    }

    #[test]
    fn identical_engines_produce_identical_transcripts() {
        let inputs: Vec<String> = vec![
            predict_request("a", 2),
            "garbage".to_string(),
            predict_request("b", 1),
            "{\"schema\":\"dynawave-serve\",\"v\":1,\"kind\":\"nope\",\
             \"benchmark\":\"gcc\"}"
                .to_string(),
        ];
        let run = || {
            let mut engine = ServeEngine::new(tiny_config());
            inputs
                .iter()
                .map(|l| engine.handle_line(l))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chaos_solver_faults_degrade_but_never_kill() {
        use dynawave_numeric::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new(0x5E12)
            .rate(0.6)
            .targeting(&FaultSite::SOLVER_SITES)
            .kinds(&[FaultKind::Singular, FaultKind::NonFinite]);
        let run = || {
            fault::with_plan(plan.clone(), || {
                let mut engine = ServeEngine::new(tiny_config());
                (0..3)
                    .map(|i| engine.handle_line(&predict_request(&format!("c{i}"), 2)))
                    .collect::<Vec<_>>()
            })
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b, "chaos transcripts must be deterministic");
        assert_eq!(ra.fired, rb.fired);
        assert!(ra.fired > 0, "plan must actually inject");
        for line in &a {
            let obj = parse_resp(line);
            // Every response is well-formed ok/partial (degraded rungs
            // are fine; the ladder absorbs the faults).
            let kind = obj["kind"].as_str().unwrap();
            assert!(kind == "ok" || kind == "partial", "{line}");
            assert!(obj["rung"].as_str().is_some());
        }
        // At least one response reports a degraded rung under rate 0.6.
        let degraded = a
            .iter()
            .any(|l| parse_resp(l)["rung"].as_str() != Some("primary"));
        assert!(degraded, "60% fault rate must visibly degrade: {a:?}");
    }

    #[test]
    fn journal_fault_disables_journaling_but_serving_continues() {
        use dynawave_numeric::fault::{FaultKind, FaultPlan};
        let dir = std::env::temp_dir().join("dynawave_serve_jfault_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("serve.journal");
        let cfg = tiny_config();
        let plan = FaultPlan::new(3)
            .rate(1.0)
            .targeting(&[FaultSite::JournalAppend])
            .kinds(&[FaultKind::EarlyStop]);
        let ((), report) = fault::with_plan(plan, || {
            let mut journal = ServeJournal::create(&path, &cfg).unwrap();
            let mut engine = ServeEngine::new(cfg.clone());
            let r1 = engine.handle_line("bad request 1");
            journal.append(&r1);
            assert!(journal.is_broken(), "rate-1.0 fault must break append");
            let r2 = engine.handle_line("bad request 2");
            journal.append(&r2); // no-op, no second consult
            assert!(r2.contains("\"seq\":2"), "serving must continue");
        });
        assert_eq!(report.fired, 1, "broken journal stops consulting");
        // Journal is a clean prefix: header only, no torn bytes.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, cfg.journal_header());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_rejects_foreign_journals() {
        let dir = std::env::temp_dir().join("dynawave_serve_replay_guard");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("guard.journal");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(
            replay(tiny_config(), "", &path),
            Err(ReplayError::BadMagic)
        ));
        // Wrong fingerprint: a different config's header.
        let other = ServeConfig {
            default_deadline: 1,
            ..tiny_config()
        };
        std::fs::write(&path, other.journal_header()).unwrap();
        assert!(matches!(
            replay(tiny_config(), "", &path),
            Err(ReplayError::Fingerprint { .. })
        ));
        // More journaled responses than requests.
        let mut text = tiny_config().journal_header();
        text.push_str("{\"fake\":1}\n");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            replay(tiny_config(), "", &path),
            Err(ReplayError::ExcessResponses { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display_and_codes_are_stable() {
        let cases: Vec<ServeError> = vec![
            ServeError::BadJson("x".into()),
            ServeError::NotAnObject,
            ServeError::UnknownSchema,
            ServeError::UnsupportedVersion("2".into()),
            ServeError::MissingField("kind"),
            ServeError::BadField {
                field: "k",
                expected: "a positive integer",
            },
            ServeError::UnknownKind("zap".into()),
            ServeError::UnknownBenchmark("quake3".into()),
            ServeError::UnknownMetric("mips".into()),
            ServeError::BadArity {
                expected: 9,
                found: 2,
            },
            ServeError::NonFiniteInput,
            ServeError::EmptyBatch,
            ServeError::TooLarge {
                found: 10,
                limit: 5,
            },
            ServeError::DeadlineExceeded {
                budget: 1,
                needed: 2,
            },
            ServeError::Overloaded { retry_after: 3 },
            ServeError::TrainFailed("boom".into()),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
            assert!(e.code().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
        // Codes are unique.
        let mut codes: Vec<&str> = cases.iter().map(ServeError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), cases.len());
    }

    fn stats_request(id: &str) -> String {
        format!(
            "{{\"schema\":\"dynawave-serve\",\"v\":1,\"id\":\"{id}\",\
             \"kind\":\"stats\"}}"
        )
    }

    #[test]
    fn stats_probe_is_side_effect_free_and_counts_everything() {
        let mut engine = ServeEngine::new(tiny_config());
        engine.handle_line(&predict_request("a", 2));
        engine.handle_line("garbage");
        engine.handle_line(&predict_request("b", 3));
        let tick_before = engine.tick();
        let load_before = engine.load;
        let resp = engine.handle_line(&stats_request("s1"));
        assert_eq!(engine.tick(), tick_before, "stats must cost zero ticks");
        let obj = parse_resp(&resp);
        assert_eq!(obj["kind"].as_str(), Some("stats"));
        assert_eq!(obj["id"].as_str(), Some("s1"));
        assert_eq!(obj["seq"].as_u64(), Some(4));
        assert!(!obj.contains_key("rung"), "stats is not model-backed");
        assert!(!obj.contains_key("results"));
        let stats = obj["stats"].as_object().unwrap();
        assert_eq!(stats["v"].as_u64(), Some(1));
        let requests = stats["requests"].as_object().unwrap();
        assert_eq!(requests["predict"].as_u64(), Some(2));
        assert_eq!(requests["stats"].as_u64(), Some(1), "probe counts itself");
        assert_eq!(requests["invalid"].as_u64(), Some(1));
        let outcomes = stats["outcomes"].as_object().unwrap();
        assert_eq!(outcomes["ok"].as_u64(), Some(2));
        assert_eq!(outcomes["error"].as_u64(), Some(1));
        assert_eq!(
            outcomes["stats"].as_u64(),
            Some(1),
            "includes this response"
        );
        // sum(requests)+invalid == sum(outcomes) == seq for every snapshot.
        let req_total: u64 = requests.values().map(|v| v.as_u64().unwrap()).sum();
        let out_total: u64 = outcomes
            .iter()
            .filter(|(k, _)| k.as_str() != "internal")
            .map(|(_, v)| v.as_u64().unwrap())
            .sum();
        assert_eq!(req_total, 4);
        assert_eq!(out_total, 4);
        // Latency: both predict requests trained or predicted under the
        // histogram's top bound, and errors tally as zero-tick.
        let latency = stats["latency"].as_object().unwrap();
        let predict = latency["predict"].as_object().unwrap();
        let counts: u64 = predict["counts"]
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .sum();
        assert_eq!(counts, 2);
        assert!(!latency.contains_key("stats"), "stats has no histogram");
        // Model traffic: one miss (train), one hit on the second predict.
        let models = stats["models"].as_object().unwrap();
        assert_eq!(models["misses"].as_u64(), Some(1));
        assert_eq!(models["hits"].as_u64(), Some(1));
        assert_eq!(models["trained"].as_u64(), Some(1));
        // Deadline ledger: both predicts granted the default budget.
        let deadline = stats["deadline"].as_object().unwrap();
        assert_eq!(deadline["granted"].as_u64(), Some(2 * 4096));
        assert_eq!(deadline["used"].as_u64(), Some(engine.tick()));
        // Load/journal echo engine state. The probe itself drained the
        // bucket on entry, like every request.
        let load = stats["load"].as_object().unwrap();
        assert_eq!(load["level"].as_u64(), Some(load_before.saturating_sub(32)));
        assert_eq!(load["capacity"].as_u64(), Some(1 << 14));
        assert_eq!(stats["journal"].as_str(), Some("none"));
        // The line passes the shared stream validator.
        let summary = dynawave_obs::validate_stream(&resp);
        assert!(summary.is_clean(), "{:?}", summary.errors);
        assert_eq!(summary.kinds.get("serve:stats"), Some(&1));
    }

    #[test]
    fn stats_snapshot_reflects_journal_state_and_rungs() {
        use dynawave_numeric::fault::{FaultKind, FaultPlan};
        let mut engine = ServeEngine::new(tiny_config());
        engine.note_journal_attached();
        let obj = parse_resp(&engine.handle_line(&stats_request("j1")));
        assert_eq!(
            obj["stats"].as_object().unwrap()["journal"].as_str(),
            Some("active")
        );
        engine.note_journal_broken();
        let obj = parse_resp(&engine.handle_line(&stats_request("j2")));
        assert_eq!(
            obj["stats"].as_object().unwrap()["journal"].as_str(),
            Some("broken")
        );
        // Solver chaos shows up in the rung counters.
        let plan = FaultPlan::new(0x5E12)
            .rate(0.6)
            .targeting(&FaultSite::SOLVER_SITES)
            .kinds(&[FaultKind::Singular, FaultKind::NonFinite]);
        let (line, report) = fault::with_plan(plan, || {
            let mut engine = ServeEngine::new(tiny_config());
            engine.handle_line(&predict_request("c", 2));
            engine.handle_line(&stats_request("s"))
        });
        assert!(report.fired > 0);
        let obj = parse_resp(&line);
        let rungs = obj["stats"].as_object().unwrap()["rungs"]
            .as_object()
            .unwrap();
        let total: u64 = rungs.values().map(|v| v.as_u64().unwrap()).sum();
        assert_eq!(total, 1, "one model-backed response");
        assert_eq!(
            rungs["primary"].as_u64(),
            Some(0),
            "60% fault rate must degrade the one response: {rungs:?}"
        );
    }

    #[test]
    fn stats_snapshots_are_deterministic_across_identical_sessions() {
        let run = || {
            let mut engine = ServeEngine::new(tiny_config());
            engine.handle_line(&predict_request("a", 2));
            engine.handle_line("junk");
            engine.handle_line(&stats_request("s"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fingerprint_is_sensitive_to_serving_knobs() {
        let base = tiny_config().fingerprint();
        assert_eq!(base, tiny_config().fingerprint());
        let mut other = tiny_config();
        other.train_cost += 1;
        assert_ne!(base, other.fingerprint());
        let mut other = tiny_config();
        other.config.seed ^= 1;
        assert_ne!(base, other.fingerprint());
        let mut other = tiny_config();
        other.models_dir = Some(PathBuf::from("/tmp/models"));
        assert_ne!(base, other.fingerprint());
    }
}
