//! Accuracy metrics of the paper's evaluation: normalized MSE,
//! directional symmetry and threshold-based scenario classification
//! (§4, Figures 8, 12, 13).

use dynawave_numeric::stats::{min_max, mse};
pub use dynawave_numeric::stats::{nmse_percent, BoxplotSummary};

/// Plain mean-square error expressed in percent: `100 * mean((a-p)^2)`.
///
/// For metrics bounded in `[0, 1]` — AVF in particular — this is the
/// scale the paper's Figures 18–19 use (values like 0.1–0.5 %), whereas
/// [`nmse_percent`] normalizes by signal power and suits unbounded
/// metrics like CPI and watts.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mse_percent(actual: &[f64], predicted: &[f64]) -> f64 {
    100.0 * mse(actual, predicted)
}

/// The paper's three threshold levels between a trace's min and max
/// (Figure 12):
///
/// ```text
/// Qi = MIN + (MAX - MIN) * i/4,   i = 1, 2, 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Q1 — the lowest threshold.
    pub q1: f64,
    /// Q2 — the middle threshold.
    pub q2: f64,
    /// Q3 — the highest threshold.
    pub q3: f64,
}

impl Thresholds {
    /// Derives the thresholds from a reference trace (normally the
    /// *simulated* trace, so predicted and actual classifications share
    /// the same levels). An empty trace yields all-zero thresholds.
    pub fn from_trace(trace: &[f64]) -> Self {
        let (lo, hi) = min_max(trace).unwrap_or((0.0, 0.0));
        let span = hi - lo;
        Thresholds {
            q1: lo + span * 0.25,
            q2: lo + span * 0.50,
            q3: lo + span * 0.75,
        }
    }

    /// The thresholds as an array `[q1, q2, q3]`.
    pub fn as_array(&self) -> [f64; 3] {
        [self.q1, self.q2, self.q3]
    }
}

/// Directional symmetry: the fraction of samples where prediction and
/// actual fall on the same side of `threshold`.
///
/// `DS = 1/N * sum( 1[ (x(k) > tau) == (x̂(k) > tau) ] )` — the paper's
/// definition, with `DS = 0.5` meaning chance-level scenario forecasting.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn directional_symmetry(actual: &[f64], predicted: &[f64], threshold: f64) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "DS length mismatch");
    assert!(!actual.is_empty(), "DS of empty traces");
    let agree = actual
        .iter()
        .zip(predicted)
        .filter(|(a, p)| (**a > threshold) == (**p > threshold))
        .count();
    agree as f64 / actual.len() as f64
}

/// Directional *asymmetry* in percent, `100 * (1 - DS)` — the quantity
/// Figure 13 plots.
///
/// # Panics
///
/// As for [`directional_symmetry`].
pub fn directional_asymmetry_percent(actual: &[f64], predicted: &[f64], threshold: f64) -> f64 {
    100.0 * (1.0 - directional_symmetry(actual, predicted, threshold))
}

/// Scenario-classification summary of one trace pair at the three
/// Figure 12 thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioClassification {
    /// Directional asymmetry (%) at Q1.
    pub q1_asymmetry: f64,
    /// Directional asymmetry (%) at Q2.
    pub q2_asymmetry: f64,
    /// Directional asymmetry (%) at Q3.
    pub q3_asymmetry: f64,
}

impl ScenarioClassification {
    /// Classifies `predicted` against `actual` using thresholds derived
    /// from the actual trace.
    ///
    /// # Panics
    ///
    /// Panics if the traces differ in length or are empty.
    pub fn evaluate(actual: &[f64], predicted: &[f64]) -> Self {
        let t = Thresholds::from_trace(actual);
        ScenarioClassification {
            q1_asymmetry: directional_asymmetry_percent(actual, predicted, t.q1),
            q2_asymmetry: directional_asymmetry_percent(actual, predicted, t.q2),
            q3_asymmetry: directional_asymmetry_percent(actual, predicted, t.q3),
        }
    }
}

/// Fraction of samples in `trace` that exceed `threshold` — the paper's
/// "how many sampling points in a trace are above or below the threshold"
/// scenario measure.
pub fn exceedance_fraction(trace: &[f64], threshold: f64) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().filter(|&&v| v > threshold).count() as f64 / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_quarter_points() {
        let t = Thresholds::from_trace(&[0.0, 4.0]);
        assert_eq!(t.q1, 1.0);
        assert_eq!(t.q2, 2.0);
        assert_eq!(t.q3, 3.0);
        assert_eq!(t.as_array(), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn perfect_prediction_has_full_ds() {
        let x = [0.1, 0.9, 0.4, 0.8];
        assert_eq!(directional_symmetry(&x, &x, 0.5), 1.0);
        assert_eq!(directional_asymmetry_percent(&x, &x, 0.5), 0.0);
    }

    #[test]
    fn inverted_prediction_has_zero_ds() {
        let a = [0.0, 1.0, 0.0, 1.0];
        let p = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(directional_symmetry(&a, &p, 0.5), 0.0);
        assert_eq!(directional_asymmetry_percent(&a, &p, 0.5), 100.0);
    }

    #[test]
    fn half_agreement() {
        let a = [0.0, 1.0, 0.0, 1.0];
        let p = [0.0, 1.0, 1.0, 0.0];
        assert_eq!(directional_symmetry(&a, &p, 0.5), 0.5);
    }

    #[test]
    fn scenario_classification_end_to_end() {
        let actual: Vec<f64> = (0..32).map(|i| (i as f64 / 5.0).sin()).collect();
        let predicted: Vec<f64> = actual.iter().map(|v| v + 0.01).collect();
        let s = ScenarioClassification::evaluate(&actual, &predicted);
        assert!(s.q1_asymmetry < 10.0);
        assert!(s.q2_asymmetry < 10.0);
        assert!(s.q3_asymmetry < 10.0);
    }

    #[test]
    fn mse_percent_scale() {
        let a = [0.3, 0.3];
        let p = [0.4, 0.2];
        assert!((mse_percent(&a, &p) - 1.0).abs() < 1e-12);
        assert_eq!(mse_percent(&a, &a), 0.0);
    }

    #[test]
    fn exceedance_counts() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exceedance_fraction(&t, 2.5), 0.5);
        assert_eq!(exceedance_fraction(&t, 0.0), 1.0);
        assert_eq!(exceedance_fraction(&[], 1.0), 0.0);
    }
}
