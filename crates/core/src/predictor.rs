//! The hybrid neuro-wavelet predictive model (paper §2.3 / Figure 6).

use crate::dataset::TraceSet;
use crate::recovery::{CoeffRecovery, DegradationReport, RecoveryPolicy, RecoveryRung};
use dynawave_neural::{LinearModel, ModelError, Normalizer, RbfNetwork, RbfNetworkData, RbfParams};
use dynawave_numeric::Matrix;
use dynawave_sampling::DesignPoint;
use dynawave_wavelet::{select, wavedec, waverec, Decomposition, Wavelet};

/// How the set of predicted wavelet coefficients is chosen (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoefficientSelection {
    /// Keep the `k` coefficients with the largest mean magnitude across
    /// the training set (the paper's choice — "it always outperforms the
    /// order-based scheme").
    #[default]
    Magnitude,
    /// Keep the first `k` coefficients in coarse-to-fine order.
    Order,
}

/// Which regression model predicts each wavelet coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// RBF network with regression-tree center selection (the paper's
    /// model).
    #[default]
    TreeRbf,
    /// RBF network with deterministically scattered centers (ablation).
    RandomRbf,
    /// Ridge-regularized linear regression (ablation baseline).
    Linear,
}

/// Hyper-parameters of [`WaveletNeuralPredictor::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorParams {
    /// Mother wavelet for decomposition/reconstruction.
    pub wavelet: Wavelet,
    /// Number of wavelet coefficients to predict (the paper settles on
    /// 16 of 128 as the accuracy/complexity sweet spot, Figure 9).
    pub coefficients: usize,
    /// Selection scheme for the predicted coefficients.
    pub selection: CoefficientSelection,
    /// Per-coefficient regression model.
    pub model: ModelKind,
    /// RBF network hyper-parameters (ignored for [`ModelKind::Linear`]).
    pub rbf: RbfParams,
    /// Unit count for [`ModelKind::RandomRbf`].
    pub random_centers: usize,
}

impl Default for PredictorParams {
    fn default() -> Self {
        PredictorParams {
            wavelet: Wavelet::Haar,
            coefficients: 16,
            selection: CoefficientSelection::Magnitude,
            model: ModelKind::TreeRbf,
            rbf: RbfParams::default(),
            random_centers: 24,
        }
    }
}

/// One trained per-coefficient regressor.
#[derive(Debug, Clone)]
enum CoeffModel {
    Rbf(RbfNetwork),
    Linear(LinearModel),
    /// Training-set-mean constant: the last rung of the recovery ladder.
    Constant(f64),
}

impl CoeffModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            CoeffModel::Rbf(m) => m.predict(x),
            CoeffModel::Linear(m) => m.predict(x),
            CoeffModel::Constant(v) => *v,
        }
    }

    /// `true` when every fitted parameter is finite (a non-finite model
    /// predicts NaN everywhere and must be escalated, not kept).
    fn parameters_are_finite(&self) -> bool {
        match self {
            CoeffModel::Rbf(m) => m.parameters_are_finite(),
            CoeffModel::Linear(m) => m.parameters_are_finite(),
            CoeffModel::Constant(v) => v.is_finite(),
        }
    }
}

/// The paper's hybrid scheme: wavelet decomposition, one neural network
/// per retained coefficient, inverse transform for forecasting (Figure 6).
///
/// Train with [`WaveletNeuralPredictor::train`] on a [`TraceSet`] gathered
/// from simulations, then [`WaveletNeuralPredictor::predict`] workload
/// dynamics at unsimulated design points.
#[derive(Debug, Clone)]
pub struct WaveletNeuralPredictor {
    wavelet: Wavelet,
    trace_len: usize,
    indices: Vec<usize>,
    models: Vec<CoeffModel>,
    params: PredictorParams,
}

impl WaveletNeuralPredictor {
    /// Trains the predictor on `train`.
    ///
    /// Every training trace is decomposed; the coefficient subset is
    /// selected per `params.selection`; one regressor per coefficient maps
    /// the design vector to the coefficient value.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the training set is empty, traces have
    /// inconsistent or non-power-of-two lengths, or a regressor fails to
    /// fit. Training fails fast on the first fit failure; use
    /// [`WaveletNeuralPredictor::train_resilient`] for the recovery-ladder
    /// variant that degrades instead of aborting.
    pub fn train(train: &TraceSet, params: &PredictorParams) -> Result<Self, ModelError> {
        let (model, _) = Self::train_resilient(train, params, &RecoveryPolicy::strict())?;
        Ok(model)
    }

    /// Trains like [`WaveletNeuralPredictor::train`], but per-coefficient
    /// fit failures descend a recovery ladder instead of aborting: the
    /// configured model is retried with escalating ridge regularization,
    /// then replaced by a ridge-linear fallback, then by the training-set
    /// mean of the coefficient (see [`RecoveryPolicy`]). The returned
    /// [`DegradationReport`] records which rung every coefficient landed
    /// on. Fits that return non-finite parameters are treated as failures
    /// and escalated.
    ///
    /// With the default policy the per-coefficient stage is infallible:
    /// the mean rung always succeeds on a finite training set.
    ///
    /// # Errors
    ///
    /// Structural problems (empty set, ragged or non-power-of-two traces)
    /// are never recoverable and still error. Fit failures error only when
    /// `policy` forbids the remaining rungs (for example
    /// [`RecoveryPolicy::strict`]).
    pub fn train_resilient(
        train: &TraceSet,
        params: &PredictorParams,
        policy: &RecoveryPolicy,
    ) -> Result<(Self, DegradationReport), ModelError> {
        let _span = dynawave_obs::span("predictor.train");
        let (trace_len, dims) = match (train.traces.first(), train.points.first()) {
            (Some(trace), Some(point)) => (trace.len(), point.values().len()),
            _ => return Err(ModelError::EmptyTrainingSet),
        };
        if train.points.len() != train.traces.len() {
            return Err(ModelError::SampleCountMismatch {
                features: train.points.len(),
                targets: train.traces.len(),
            });
        }
        // Decompose every training trace.
        let mut coeff_rows = Vec::with_capacity(train.len());
        for trace in &train.traces {
            if trace.len() != trace_len {
                return Err(ModelError::DimensionMismatch {
                    expected: trace_len,
                    got: trace.len(),
                });
            }
            let dec = wavedec(trace, params.wavelet).map_err(|_| ModelError::EmptyTrainingSet)?;
            coeff_rows.push(dec.into_coeffs());
        }
        // Coefficient selection on the training set.
        let k = params.coefficients.min(trace_len);
        let indices = match params.selection {
            CoefficientSelection::Magnitude => {
                let mut mean_mag = vec![0.0f64; trace_len];
                for row in &coeff_rows {
                    for (m, &c) in mean_mag.iter_mut().zip(row) {
                        *m += c.abs();
                    }
                }
                select::top_k_by_magnitude(&mean_mag, k)
            }
            CoefficientSelection::Order => select::first_k(trace_len, k),
        };
        // Design matrix shared by all per-coefficient regressors.
        let mut xdata = Vec::with_capacity(train.len() * dims);
        for p in &train.points {
            xdata.extend_from_slice(p.values());
        }
        let x = Matrix::from_vec(train.len(), dims, xdata)?;
        // One regressor per selected coefficient; training is independent
        // per coefficient, which is what keeps each sub-network simple —
        // and what lets one coefficient degrade without touching the rest.
        let mut models = Vec::with_capacity(indices.len());
        let mut records = Vec::with_capacity(indices.len());
        for (rank, &idx) in indices.iter().enumerate() {
            let y: Vec<f64> = coeff_rows.iter().map(|row| row[idx]).collect();
            let (model, record) = fit_coefficient(&x, &y, rank, idx, params, policy)?;
            models.push(model);
            records.push(record);
        }
        if dynawave_obs::is_enabled() {
            // Fraction of training-set coefficient energy the selected
            // subset carries (the paper's accuracy/complexity dial).
            let total: f64 = coeff_rows
                .iter()
                .flat_map(|row| row.iter())
                .map(|c| c * c)
                .sum();
            let kept: f64 = coeff_rows
                .iter()
                .flat_map(|row| indices.iter().map(|&i| row[i]))
                .map(|c| c * c)
                .sum();
            if total > 0.0 {
                dynawave_obs::gauge_set("wavelet.coeff_energy_retained", kept / total);
            }
            for r in &records {
                let name = format!("neural.fit_attempts.{}", r.rung.name());
                dynawave_obs::counter_add(&name, u64::from(r.attempts));
            }
        }
        Ok((
            WaveletNeuralPredictor {
                wavelet: params.wavelet,
                trace_len,
                indices,
                models,
                params: params.clone(),
            },
            DegradationReport::from_records(records),
        ))
    }

    /// Forecasts the workload-dynamics trace at a design point.
    ///
    /// Unselected coefficients are approximated with zero, exactly as in
    /// the paper's reconstruction step.
    ///
    /// # Panics
    ///
    /// Panics if the point's dimensionality differs from training.
    pub fn predict(&self, point: &DesignPoint) -> Vec<f64> {
        let _span = dynawave_obs::span("predictor.predict");
        let mut coeffs = vec![0.0; self.trace_len];
        for (&idx, model) in self.indices.iter().zip(&self.models) {
            let v = model.predict(point.values());
            // Sanitize at the crate boundary: a non-finite coefficient
            // (e.g. from a degraded or faulted sub-model) would poison the
            // whole reconstruction; approximate it with zero like an
            // unselected coefficient instead.
            coeffs[idx] = if v.is_finite() { v } else { 0.0 };
        }
        let dec = Decomposition::from_coeffs(coeffs, self.wavelet);
        // The coefficient count matches `trace_len` by construction, so
        // reconstruction cannot fail; degrade to the zero trace rather
        // than aborting a campaign if that invariant is ever broken.
        waverec(&dec).unwrap_or_else(|_| vec![0.0; self.trace_len])
    }

    /// Indices of the predicted coefficients, most significant first.
    pub fn coefficient_indices(&self) -> &[usize] {
        &self.indices
    }

    /// The per-coefficient RBF networks (empty for linear models), most
    /// significant coefficient first. Used for the Figure 11 star plots.
    pub fn networks(&self) -> Vec<&RbfNetwork> {
        self.models
            .iter()
            .filter_map(|m| match m {
                CoeffModel::Rbf(n) => Some(n),
                CoeffModel::Linear(_) | CoeffModel::Constant(_) => None,
            })
            .collect()
    }

    /// The training hyper-parameters.
    pub fn params(&self) -> &PredictorParams {
        &self.params
    }

    /// The trace length (number of samples) the model forecasts.
    pub fn trace_len(&self) -> usize {
        self.trace_len
    }

    /// Snapshots the trained predictor into a [`PortableModel`] for
    /// persistence (see [`crate::persist`]). Regression-tree
    /// introspection (the Figure 11 star plots) is not preserved.
    pub fn to_portable(&self) -> PortableModel {
        PortableModel {
            wavelet: self.wavelet,
            trace_len: self.trace_len,
            indices: self.indices.clone(),
            models: self
                .models
                .iter()
                .map(|m| match m {
                    CoeffModel::Rbf(net) => PortableCoeffModel::Rbf(net.to_data()),
                    CoeffModel::Linear(lin) => PortableCoeffModel::Linear {
                        mins: lin.normalizer().mins().to_vec(),
                        spans: lin.normalizer().spans().to_vec(),
                        weights: lin.weights().to_vec(),
                        bias: lin.bias(),
                    },
                    CoeffModel::Constant(v) => PortableCoeffModel::Constant(*v),
                })
                .collect(),
        }
    }

    /// Rebuilds a predictor from a snapshot.
    ///
    /// # Errors
    ///
    /// [`ModelError::DimensionMismatch`] if the snapshot is internally
    /// inconsistent (index/model count mismatch, out-of-range indices or
    /// malformed sub-models).
    pub fn from_portable(portable: PortableModel) -> Result<Self, ModelError> {
        if portable.indices.len() != portable.models.len() {
            return Err(ModelError::DimensionMismatch {
                expected: portable.indices.len(),
                got: portable.models.len(),
            });
        }
        if portable.trace_len < 2 || !portable.trace_len.is_power_of_two() {
            return Err(ModelError::DimensionMismatch {
                expected: portable.trace_len.next_power_of_two().max(2),
                got: portable.trace_len,
            });
        }
        if let Some(&bad) = portable.indices.iter().find(|&&i| i >= portable.trace_len) {
            return Err(ModelError::DimensionMismatch {
                expected: portable.trace_len,
                got: bad,
            });
        }
        let models = portable
            .models
            .into_iter()
            .map(|m| match m {
                PortableCoeffModel::Rbf(data) => RbfNetwork::from_data(data).map(CoeffModel::Rbf),
                PortableCoeffModel::Linear {
                    mins,
                    spans,
                    weights,
                    bias,
                } => LinearModel::from_parts(Normalizer::from_parts(mins, spans), weights, bias)
                    .map(CoeffModel::Linear),
                PortableCoeffModel::Constant(v) => {
                    if v.is_finite() {
                        Ok(CoeffModel::Constant(v))
                    } else {
                        Err(ModelError::NonFinite {
                            context: "portable constant sub-model",
                        })
                    }
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WaveletNeuralPredictor {
            wavelet: portable.wavelet,
            trace_len: portable.trace_len,
            indices: portable.indices,
            models,
            params: PredictorParams {
                wavelet: portable.wavelet,
                ..PredictorParams::default()
            },
        })
    }
}

/// Fits one coefficient's regressor with the configured model kind and an
/// explicit ridge strength (the knob the recovery ladder escalates).
fn fit_primary(
    x: &Matrix,
    y: &[f64],
    rank: usize,
    params: &PredictorParams,
    lambda: f64,
) -> Result<CoeffModel, ModelError> {
    match params.model {
        ModelKind::TreeRbf => {
            let rbf = RbfParams {
                ridge_lambda: lambda,
                ..params.rbf.clone()
            };
            RbfNetwork::fit(x, y, &rbf).map(CoeffModel::Rbf)
        }
        ModelKind::RandomRbf => {
            let rbf = RbfParams {
                ridge_lambda: lambda,
                ..params.rbf.clone()
            };
            RbfNetwork::fit_with_random_centers(x, y, params.random_centers, &rbf, rank as u64)
                .map(CoeffModel::Rbf)
        }
        ModelKind::Linear => LinearModel::fit(x, y, lambda).map(CoeffModel::Linear),
    }
}

/// Walks one coefficient down the recovery ladder until a rung produces a
/// finite model or `policy` forbids descending further.
fn fit_coefficient(
    x: &Matrix,
    y: &[f64],
    rank: usize,
    coefficient: usize,
    params: &PredictorParams,
    policy: &RecoveryPolicy,
) -> Result<(CoeffModel, CoeffRecovery), ModelError> {
    let mut attempts = 0u32;
    let mut last_err = ModelError::Internal("recovery ladder made no fit attempt");
    // Rungs 1–2: the configured model, ridge penalty growing per retry.
    for escalation in 0..=policy.ridge_escalations {
        attempts += 1;
        let lambda = params.rbf.ridge_lambda * policy.ridge_growth.powi(escalation as i32);
        match fit_primary(x, y, rank, params, lambda) {
            Ok(model) if model.parameters_are_finite() => {
                let rung = if escalation == 0 {
                    RecoveryRung::Primary
                } else {
                    RecoveryRung::EscalatedRidge { escalation }
                };
                return Ok((
                    model,
                    CoeffRecovery {
                        coefficient,
                        rung,
                        attempts,
                    },
                ));
            }
            Ok(_) => {
                last_err = ModelError::NonFinite {
                    context: "coefficient regressor",
                };
            }
            Err(e) => last_err = e,
        }
    }
    // Rung 3: ridge-linear fallback, defined for any non-degenerate design.
    if policy.allow_linear {
        attempts += 1;
        match LinearModel::fit(x, y, params.rbf.ridge_lambda.max(1e-6)) {
            Ok(m) if m.parameters_are_finite() => {
                return Ok((
                    CoeffModel::Linear(m),
                    CoeffRecovery {
                        coefficient,
                        rung: RecoveryRung::LinearFallback,
                        attempts,
                    },
                ));
            }
            Ok(_) => {
                last_err = ModelError::NonFinite {
                    context: "linear fallback",
                };
            }
            Err(e) => last_err = e,
        }
    }
    // Rung 4: the training-set mean. Infallible: a non-finite mean (which
    // would require non-finite training targets) degrades to zero.
    if policy.allow_mean {
        attempts += 1;
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        return Ok((
            CoeffModel::Constant(if mean.is_finite() { mean } else { 0.0 }),
            CoeffRecovery {
                coefficient,
                rung: RecoveryRung::MeanFallback,
                attempts,
            },
        ));
    }
    Err(last_err)
}

/// Portable snapshot of a trained [`WaveletNeuralPredictor`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortableModel {
    /// Mother wavelet used for reconstruction.
    pub wavelet: Wavelet,
    /// Forecast trace length.
    pub trace_len: usize,
    /// Predicted coefficient indices, most significant first.
    pub indices: Vec<usize>,
    /// Per-coefficient sub-models, parallel to `indices`.
    pub models: Vec<PortableCoeffModel>,
}

/// Snapshot of one per-coefficient regressor.
#[derive(Debug, Clone, PartialEq)]
pub enum PortableCoeffModel {
    /// A Gaussian RBF network.
    Rbf(RbfNetworkData),
    /// A ridge-linear model.
    Linear {
        /// Normalizer minima.
        mins: Vec<f64>,
        /// Normalizer spans.
        spans: Vec<f64>,
        /// Normalized-space weights.
        weights: Vec<f64>,
        /// Intercept.
        bias: f64,
    },
    /// A constant (training-set-mean) fallback model.
    Constant(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Metric;
    use dynawave_workloads::Benchmark;

    /// Builds a synthetic trace set from an analytic response surface so
    /// tests do not need the simulator.
    fn synthetic_set(n: usize, samples: usize) -> TraceSet {
        let mut points = Vec::new();
        let mut traces = Vec::new();
        for i in 0..n {
            let a = (i % 5) as f64;
            let b = ((i / 5) % 5) as f64;
            let point = DesignPoint::new(vec![a, b]);
            // Dynamics: mean level set by a, oscillation amplitude by b.
            let trace: Vec<f64> = (0..samples)
                .map(|s| {
                    let t = s as f64 / samples as f64;
                    1.0 + 0.5 * a + 0.3 * b * (std::f64::consts::TAU * 3.0 * t).sin()
                })
                .collect();
            points.push(point);
            traces.push(trace);
        }
        TraceSet {
            benchmark: Benchmark::Gcc,
            metric: Metric::Cpi,
            points,
            traces,
        }
    }

    #[test]
    fn learns_synthetic_dynamics() {
        let set = synthetic_set(25, 64);
        let model = WaveletNeuralPredictor::train(&set, &PredictorParams::default()).unwrap();
        // Predict at a training-adjacent point and compare to the truth.
        let probe = DesignPoint::new(vec![2.0, 3.0]);
        let pred = model.predict(&probe);
        let truth: Vec<f64> = (0..64)
            .map(|s| {
                let t = s as f64 / 64.0;
                1.0 + 0.5 * 2.0 + 0.3 * 3.0 * (std::f64::consts::TAU * 3.0 * t).sin()
            })
            .collect();
        let nmse = dynawave_numeric::stats::nmse_percent(&truth, &pred);
        assert!(nmse < 8.0, "NMSE {nmse}%");
    }

    #[test]
    fn magnitude_selection_picks_energetic_coefficients() {
        let set = synthetic_set(25, 64);
        let model = WaveletNeuralPredictor::train(&set, &PredictorParams::default()).unwrap();
        // The approximation coefficient (index 0) dominates these traces.
        assert_eq!(model.coefficient_indices()[0], 0);
        assert_eq!(model.coefficient_indices().len(), 16);
        assert_eq!(model.trace_len(), 64);
    }

    #[test]
    fn order_selection_takes_prefix() {
        let set = synthetic_set(10, 32);
        let params = PredictorParams {
            selection: CoefficientSelection::Order,
            coefficients: 4,
            ..PredictorParams::default()
        };
        let model = WaveletNeuralPredictor::train(&set, &params).unwrap();
        assert_eq!(model.coefficient_indices(), &[0, 1, 2, 3]);
    }

    #[test]
    fn linear_kind_trains_without_networks() {
        let set = synthetic_set(10, 32);
        let params = PredictorParams {
            model: ModelKind::Linear,
            ..PredictorParams::default()
        };
        let model = WaveletNeuralPredictor::train(&set, &params).unwrap();
        assert!(model.networks().is_empty());
        assert_eq!(model.predict(&DesignPoint::new(vec![1.0, 1.0])).len(), 32);
    }

    #[test]
    fn random_rbf_kind_trains() {
        let set = synthetic_set(12, 32);
        let params = PredictorParams {
            model: ModelKind::RandomRbf,
            random_centers: 8,
            ..PredictorParams::default()
        };
        let model = WaveletNeuralPredictor::train(&set, &params).unwrap();
        assert_eq!(model.networks().len(), 16);
    }

    #[test]
    fn more_coefficients_reduce_training_error() {
        let set = synthetic_set(25, 64);
        let err = |k: usize| {
            let params = PredictorParams {
                coefficients: k,
                ..PredictorParams::default()
            };
            let model = WaveletNeuralPredictor::train(&set, &params).unwrap();
            let mut total = 0.0;
            for (p, t) in set.points.iter().zip(&set.traces) {
                total += dynawave_numeric::stats::nmse_percent(t, &model.predict(p));
            }
            total / set.len() as f64
        };
        assert!(err(16) <= err(2) + 1e-9);
    }

    #[test]
    fn portable_roundtrip_predicts_identically() {
        let set = synthetic_set(20, 32);
        let model = WaveletNeuralPredictor::train(&set, &PredictorParams::default()).unwrap();
        let rebuilt = WaveletNeuralPredictor::from_portable(model.to_portable()).unwrap();
        let probe = DesignPoint::new(vec![2.0, 2.0]);
        assert_eq!(model.predict(&probe), rebuilt.predict(&probe));
        assert_eq!(model.coefficient_indices(), rebuilt.coefficient_indices());
    }

    #[test]
    fn portable_rejects_inconsistencies() {
        let set = synthetic_set(20, 32);
        let model = WaveletNeuralPredictor::train(&set, &PredictorParams::default()).unwrap();
        let mut p = model.to_portable();
        p.indices.pop();
        assert!(WaveletNeuralPredictor::from_portable(p).is_err());
        let mut p = model.to_portable();
        p.trace_len = 33;
        assert!(WaveletNeuralPredictor::from_portable(p).is_err());
        let mut p = model.to_portable();
        p.indices[0] = 999;
        assert!(WaveletNeuralPredictor::from_portable(p).is_err());
    }

    #[test]
    fn empty_training_set_errors() {
        let set = TraceSet {
            benchmark: Benchmark::Gcc,
            metric: Metric::Cpi,
            points: vec![],
            traces: vec![],
        };
        assert!(matches!(
            WaveletNeuralPredictor::train(&set, &PredictorParams::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn inconsistent_trace_lengths_error() {
        let mut set = synthetic_set(4, 32);
        set.traces[2] = vec![0.0; 16];
        assert!(WaveletNeuralPredictor::train(&set, &PredictorParams::default()).is_err());
    }

    #[test]
    fn resilient_training_is_pristine_on_clean_data() {
        let set = synthetic_set(12, 32);
        let (model, report) = WaveletNeuralPredictor::train_resilient(
            &set,
            &PredictorParams::default(),
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(report.is_pristine());
        assert_eq!(
            report.coefficient_count(),
            model.coefficient_indices().len()
        );
        // The report accounts for exactly the selected coefficients.
        let recorded: Vec<usize> = report.records().iter().map(|r| r.coefficient).collect();
        assert_eq!(recorded, model.coefficient_indices());
    }

    #[test]
    fn chaos_rbf_faults_degrade_to_linear_fallback() {
        use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
        let set = synthetic_set(12, 32);
        let plan = FaultPlan::new(0xC0FFEE)
            .rate(1.0)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[FaultKind::Singular]);
        let (out, _report) = fault::with_plan(plan, || {
            WaveletNeuralPredictor::train_resilient(
                &set,
                &PredictorParams::default(),
                &RecoveryPolicy::default(),
            )
        });
        let (model, degradation) = out.unwrap();
        // Every RBF fit fails, so every coefficient lands on the linear rung.
        assert_eq!(degradation.rung_counts(), [0, 0, 16, 0]);
        assert_eq!(degradation.degraded_count(), 16);
        assert!(model.networks().is_empty());
        let pred = model.predict(&DesignPoint::new(vec![2.0, 2.0]));
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn chaos_non_finite_fits_are_escalated_not_kept() {
        use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
        let set = synthetic_set(12, 32);
        let plan = FaultPlan::new(7)
            .rate(1.0)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[FaultKind::NonFinite]);
        let (out, _report) = fault::with_plan(plan, || {
            WaveletNeuralPredictor::train_resilient(
                &set,
                &PredictorParams::default(),
                &RecoveryPolicy::default(),
            )
        });
        let (model, degradation) = out.unwrap();
        // NaN weights must never survive as a "successful" fit.
        assert_eq!(degradation.degraded_count(), 16);
        let pred = model.predict(&DesignPoint::new(vec![1.0, 3.0]));
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn chaos_mean_fallback_when_linear_also_fails() {
        use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
        let set = synthetic_set(12, 32);
        let plan = FaultPlan::new(11)
            .rate(1.0)
            .targeting(&[FaultSite::RbfWeightFit, FaultSite::RidgeSolve])
            .kinds(&[FaultKind::Singular]);
        let (out, _report) = fault::with_plan(plan, || {
            WaveletNeuralPredictor::train_resilient(
                &set,
                &PredictorParams::default(),
                &RecoveryPolicy::default(),
            )
        });
        let (model, degradation) = out.unwrap();
        assert_eq!(degradation.rung_counts(), [0, 0, 0, 16]);
        // All-constant model still reconstructs a finite trace, and its
        // portable snapshot round-trips bit-identically.
        let probe = DesignPoint::new(vec![2.0, 1.0]);
        let pred = model.predict(&probe);
        assert!(pred.iter().all(|v| v.is_finite()));
        let rebuilt = WaveletNeuralPredictor::from_portable(model.to_portable()).unwrap();
        assert_eq!(pred, rebuilt.predict(&probe));
    }

    #[test]
    fn chaos_strict_policy_still_fails_fast() {
        use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
        let set = synthetic_set(12, 32);
        let plan = FaultPlan::new(3)
            .rate(1.0)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[FaultKind::Singular]);
        let (out, _report) = fault::with_plan(plan, || {
            WaveletNeuralPredictor::train(&set, &PredictorParams::default())
        });
        assert!(out.is_err());
    }

    #[test]
    fn portable_rejects_non_finite_constant() {
        let set = synthetic_set(12, 32);
        let model = WaveletNeuralPredictor::train(&set, &PredictorParams::default()).unwrap();
        let mut p = model.to_portable();
        p.models[0] = PortableCoeffModel::Constant(f64::NAN);
        assert!(matches!(
            WaveletNeuralPredictor::from_portable(p),
            Err(ModelError::NonFinite { .. })
        ));
    }
}
