//! End-to-end experiment drivers used by the `dynawave-bench` harness.
//!
//! One [`ExperimentConfig`] describes the paper's methodology (§3): an
//! LHS-sampled training set over the Table 2 train levels, an independent
//! random test set over the test levels, traces of `samples` points, and
//! the predictor hyper-parameters. [`evaluate_benchmark`] runs the full
//! train/predict/score loop for one `(benchmark, metric)` pair.
//!
//! The scale knobs honour environment variables so that the bench harness
//! can run anywhere from a smoke test to the paper's full 200/50 scale:
//! `DYNAWAVE_TRAIN`, `DYNAWAVE_TEST`, `DYNAWAVE_SAMPLES`,
//! `DYNAWAVE_INTERVAL`, `DYNAWAVE_SEED`.

use crate::accuracy::ScenarioClassification;
use crate::dataset::{collect_traces, Metric, TraceSet};
use crate::predictor::{PredictorParams, WaveletNeuralPredictor};
use crate::recovery::{DegradationReport, RecoveryPolicy};
use dynawave_neural::ModelError;
use dynawave_numeric::stats::nmse_percent;
use dynawave_sampling::{lhs, random, DesignSpace, Split};
use dynawave_sim::SimOptions;
use dynawave_workloads::Benchmark;
use std::error::Error;
use std::fmt;

/// Scale and hyper-parameters of one accuracy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Training design points (paper: 200, LHS over train levels).
    pub train_points: usize,
    /// Test design points (paper: 50, random over test levels).
    pub test_points: usize,
    /// Samples per dynamics trace (paper: 128; must be a power of two).
    pub samples: usize,
    /// Instructions per sample interval.
    pub interval_instructions: u64,
    /// Master seed (workload input, LHS, test sampling).
    pub seed: u64,
    /// Predictor hyper-parameters.
    pub predictor: PredictorParams,
    /// Use the 10-parameter space that includes the DVM flag (§5).
    pub with_dvm_parameter: bool,
    /// How training recovers from per-coefficient fit failures (the full
    /// ladder by default; see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            train_points: 200,
            test_points: 50,
            samples: 128,
            interval_instructions: 2048,
            seed: 0xD15EA5E,
            predictor: PredictorParams::default(),
            with_dvm_parameter: false,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// A `DYNAWAVE_*` environment variable was set but unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvConfigError {
    /// The offending variable.
    pub name: &'static str,
    /// Its value as found in the environment.
    pub value: String,
    /// What the variable must parse as.
    pub expected: &'static str,
}

impl fmt::Display for EnvConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "environment variable {} is set to {:?}, which is not {}; \
             unset it or supply a valid value",
            self.name, self.value, self.expected
        )
    }
}

impl Error for EnvConfigError {}

impl ExperimentConfig {
    /// Builds a configuration from `DYNAWAVE_*` environment variables,
    /// falling back to the paper-scale defaults for unset variables.
    ///
    /// # Errors
    ///
    /// [`EnvConfigError`] naming the variable, its value and the expected
    /// type if a variable is **set but unparseable**. A typo like
    /// `DYNAWAVE_TRAIN=2OO` must abort the campaign loudly, not silently
    /// run at paper scale.
    pub fn from_env() -> Result<Self, EnvConfigError> {
        fn env<T: std::str::FromStr>(
            name: &'static str,
            expected: &'static str,
            default: T,
        ) -> Result<T, EnvConfigError> {
            // dynalint:allow(D004) -- from_env() is the documented, explicit config entry point
            match std::env::var(name) {
                Ok(value) => value.parse().map_err(|_| EnvConfigError {
                    name,
                    value,
                    expected,
                }),
                Err(_) => Ok(default),
            }
        }
        let d = ExperimentConfig::default();
        Ok(ExperimentConfig {
            train_points: env("DYNAWAVE_TRAIN", "a point count", d.train_points)?,
            test_points: env("DYNAWAVE_TEST", "a point count", d.test_points)?,
            samples: env("DYNAWAVE_SAMPLES", "a power-of-two sample count", d.samples)?,
            interval_instructions: env(
                "DYNAWAVE_INTERVAL",
                "an instruction count",
                d.interval_instructions,
            )?,
            seed: env("DYNAWAVE_SEED", "a 64-bit seed", d.seed)?,
            ..d
        })
    }

    /// The design space this experiment explores.
    pub fn space(&self) -> DesignSpace {
        if self.with_dvm_parameter {
            DesignSpace::micro2007_with_dvm()
        } else {
            DesignSpace::micro2007()
        }
    }

    /// Simulator options corresponding to this configuration.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            samples: self.samples,
            interval_instructions: self.interval_instructions,
            seed: self.seed,
        }
    }

    /// The LHS training design (deterministic in `seed`).
    pub fn train_design(&self) -> Vec<dynawave_sampling::DesignPoint> {
        lhs::sample(&self.space(), self.train_points, self.seed)
    }

    /// The independent random test design (deterministic in `seed`).
    pub fn test_design(&self) -> Vec<dynawave_sampling::DesignPoint> {
        random::sample(
            &self.space(),
            self.test_points,
            Split::Test,
            self.seed ^ 0x7E57,
        )
    }
}

/// Everything [`evaluate_benchmark`] learns about one
/// `(benchmark, metric)` pair.
#[derive(Debug, Clone)]
pub struct BenchmarkEvaluation {
    /// The benchmark evaluated.
    pub benchmark: Benchmark,
    /// The metric evaluated.
    pub metric: Metric,
    /// The trained predictor.
    pub model: WaveletNeuralPredictor,
    /// Simulated (ground-truth) test traces.
    pub test: TraceSet,
    /// Predicted traces, parallel to `test.traces`.
    pub predictions: Vec<Vec<f64>>,
    /// Normalized MSE (%) per test point — the Figure 8 boxplot data.
    pub nmse_per_test: Vec<f64>,
    /// Threshold-classification quality per test point (Figure 13 data).
    pub scenarios: Vec<ScenarioClassification>,
    /// Which recovery rung each coefficient's model landed on. Pristine
    /// (all-primary) unless training degraded under its
    /// [`RecoveryPolicy`].
    pub degradation: DegradationReport,
}

impl BenchmarkEvaluation {
    /// Median NMSE (%) across the test set.
    pub fn median_nmse(&self) -> f64 {
        dynawave_numeric::stats::median(&self.nmse_per_test).unwrap_or(0.0)
    }

    /// Mean NMSE (%) across the test set.
    pub fn mean_nmse(&self) -> f64 {
        dynawave_numeric::stats::mean(&self.nmse_per_test)
    }

    /// Mean directional asymmetry (%) at the three thresholds.
    pub fn mean_asymmetry(&self) -> [f64; 3] {
        let n = self.scenarios.len().max(1) as f64;
        let mut acc = [0.0; 3];
        for s in &self.scenarios {
            acc[0] += s.q1_asymmetry;
            acc[1] += s.q2_asymmetry;
            acc[2] += s.q3_asymmetry;
        }
        [acc[0] / n, acc[1] / n, acc[2] / n]
    }
}

/// Runs the full §3 methodology for one `(benchmark, metric)` pair:
/// simulate training design → train → simulate test design → predict →
/// score. Training honours `cfg.recovery`, so with the default policy a
/// per-coefficient fit failure degrades the affected coefficient (recorded
/// in [`BenchmarkEvaluation::degradation`]) instead of aborting the run.
///
/// # Errors
///
/// Propagates model-fitting failures that the recovery policy could not
/// absorb (always possible under [`RecoveryPolicy::strict`], never under
/// the default policy).
pub fn evaluate_benchmark(
    benchmark: Benchmark,
    metric: Metric,
    cfg: &ExperimentConfig,
) -> Result<BenchmarkEvaluation, ModelError> {
    let _span = dynawave_obs::span("experiment.evaluate");
    let opts = cfg.sim_options();
    let train = collect_traces(benchmark, &cfg.train_design(), metric, &opts);
    let (model, degradation) =
        WaveletNeuralPredictor::train_resilient(&train, &cfg.predictor, &cfg.recovery)?;
    let test = collect_traces(benchmark, &cfg.test_design(), metric, &opts);
    let mut eval = score_model(benchmark, metric, model, test);
    eval.degradation = degradation;
    if dynawave_obs::is_enabled() {
        // NMSE distribution across test points, in percent.
        const BOUNDS: [f64; 5] = [1.0, 2.0, 5.0, 10.0, 25.0];
        for &nmse in &eval.nmse_per_test {
            dynawave_obs::histogram_observe("experiment.nmse_percent", &BOUNDS, nmse);
        }
    }
    Ok(eval)
}

/// Scores an already-trained model against a test [`TraceSet`]. Split out
/// of [`evaluate_benchmark`] so sweeps can reuse simulated traces.
///
/// The returned evaluation carries a pristine [`DegradationReport`]
/// (callers that trained resiliently overwrite it with the real one).
pub fn score_model(
    benchmark: Benchmark,
    metric: Metric,
    model: WaveletNeuralPredictor,
    test: TraceSet,
) -> BenchmarkEvaluation {
    let predictions: Vec<Vec<f64>> = test.points.iter().map(|p| model.predict(p)).collect();
    let nmse_per_test: Vec<f64> = test
        .traces
        .iter()
        .zip(&predictions)
        .map(|(a, p)| nmse_percent(a, p))
        .collect();
    let scenarios: Vec<ScenarioClassification> = test
        .traces
        .iter()
        .zip(&predictions)
        .map(|(a, p)| ScenarioClassification::evaluate(a, p))
        .collect();
    let degradation = DegradationReport::healthy(model.coefficient_indices());
    BenchmarkEvaluation {
        benchmark,
        metric,
        model,
        test,
        predictions,
        nmse_per_test,
        scenarios,
        degradation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end experiment: small but real.
    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            train_points: 30,
            test_points: 8,
            samples: 32,
            interval_instructions: 600,
            seed: 11,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn end_to_end_cpi_prediction_beats_naive_baseline() {
        let cfg = tiny_config();
        let eval = evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg).unwrap();
        assert_eq!(eval.nmse_per_test.len(), 8);
        // The model must do far better than predicting zero everywhere
        // (NMSE 100%).
        let median = eval.median_nmse();
        assert!(median < 50.0, "median NMSE {median}%");
        assert!(median >= 0.0);
    }

    #[test]
    fn designs_are_deterministic() {
        let cfg = tiny_config();
        assert_eq!(cfg.train_design(), cfg.train_design());
        assert_eq!(cfg.test_design(), cfg.test_design());
        assert_eq!(cfg.train_design().len(), 30);
        assert_eq!(cfg.test_design().len(), 8);
    }

    #[test]
    fn dvm_space_has_ten_dims() {
        let cfg = ExperimentConfig {
            with_dvm_parameter: true,
            ..tiny_config()
        };
        assert_eq!(cfg.space().dims(), 10);
        assert_eq!(cfg.train_design()[0].values().len(), 10);
    }

    #[test]
    fn chaos_evaluate_benchmark_survives_injected_fit_faults() {
        use dynawave_numeric::fault::{self, FaultKind, FaultPlan, FaultSite};
        let cfg = tiny_config();
        let plan = FaultPlan::new(0xFA11)
            .rate(0.5)
            .targeting(&[FaultSite::RbfWeightFit])
            .kinds(&[FaultKind::Singular, FaultKind::NonFinite]);
        let (out, fault_report) = fault::with_plan(plan, || {
            evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg)
        });
        let eval = out.unwrap();
        assert!(fault_report.fired > 0, "the plan must actually inject");
        // Every coefficient is accounted for in the degradation report...
        assert_eq!(
            eval.degradation.coefficient_count(),
            eval.model.coefficient_indices().len()
        );
        assert_eq!(
            eval.degradation.rung_counts().iter().sum::<usize>(),
            eval.degradation.coefficient_count()
        );
        // ...a meaningful share (>=10%) of fits were forced to degrade...
        let n = eval.degradation.coefficient_count();
        assert!(
            eval.degradation.degraded_count() * 10 >= n,
            "expected >=10% degraded, got {}",
            eval.degradation
        );
        // ...and the campaign still produced finite predictions & scores.
        assert!(eval.predictions.iter().flatten().all(|v| v.is_finite()));
        assert!(eval.nmse_per_test.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn from_env_parses_validates_and_defaults() {
        // All from_env cases share one test: the environment is
        // process-global and the test harness runs tests in parallel.
        let vars = [
            "DYNAWAVE_TRAIN",
            "DYNAWAVE_TEST",
            "DYNAWAVE_SAMPLES",
            "DYNAWAVE_INTERVAL",
            "DYNAWAVE_SEED",
        ];
        for v in vars {
            std::env::remove_var(v);
        }
        // Unset everywhere: the paper-scale defaults.
        assert_eq!(
            ExperimentConfig::from_env().unwrap(),
            ExperimentConfig::default()
        );
        // Set and valid: honoured.
        std::env::set_var("DYNAWAVE_TRAIN", "33");
        std::env::set_var("DYNAWAVE_SEED", "42");
        let cfg = ExperimentConfig::from_env().unwrap();
        assert_eq!(cfg.train_points, 33);
        assert_eq!(cfg.seed, 42);
        // Set but unparseable: a descriptive error, not a silent default.
        std::env::set_var("DYNAWAVE_TRAIN", "2OO");
        let err = ExperimentConfig::from_env().unwrap_err();
        assert_eq!(err.name, "DYNAWAVE_TRAIN");
        assert_eq!(err.value, "2OO");
        let msg = err.to_string();
        assert!(msg.contains("DYNAWAVE_TRAIN"), "{msg}");
        assert!(msg.contains("2OO"), "{msg}");
        for v in vars {
            std::env::remove_var(v);
        }
    }

    #[test]
    fn mean_asymmetry_shape() {
        let cfg = tiny_config();
        let eval = evaluate_benchmark(Benchmark::Eon, Metric::Cpi, &cfg).unwrap();
        let asym = eval.mean_asymmetry();
        for a in asym {
            assert!((0.0..=100.0).contains(&a), "{asym:?}");
        }
    }
}
