//! Fault-tolerant DSE campaigns: checkpoint/resume over simulation units.
//!
//! A paper-scale accuracy campaign simulates hundreds of design points per
//! `(benchmark, metric)` pair before a single model is trained. On shared
//! clusters those jobs get preempted, killed by OOM sweeps, or rebooted —
//! and restarting a multi-hour campaign from scratch is the difference
//! between "ran the full Table 2 sweep" and "gave up".
//!
//! This module decomposes an [`ExperimentConfig`] campaign into
//! [`WorkUnit`]s — one simulated trace per `(benchmark, metric, role,
//! design-point)` — and journals every completed unit to an append-only,
//! human-inspectable text file. A killed campaign resumes by replaying the
//! journal: completed units are never re-simulated, a partially written
//! trailing line (the kill signature) is dropped, and the final report is
//! **byte-identical** to an uninterrupted run because traces round-trip
//! through the journal with Rust's shortest-exact float formatting.
//!
//! The journal is guarded by a fingerprint of the campaign spec, so a
//! journal written under one configuration can never silently poison a
//! resumed run under another.
//!
//! # Parallel execution
//!
//! Work units are independent by construction, so campaigns shard across
//! worker threads ([`run_journaled_parallel`]; `std::thread` only — the
//! workspace is hermetic). Unit `i` always belongs to shard `i % N`, each
//! worker appends to its own `<journal>.shard<k>` sidecar in the same
//! fingerprinted format, and completed traces merge back into canonical
//! unit order — so the final report and the final journal are
//! **byte-identical for any thread count**, including under kill-and-resume
//! and fault injection (all fault-injection sites live in training, which
//! stays sequential on the caller's thread). Sidecars record their shard
//! count; resuming under a different `N` is refused with
//! [`CampaignError::ShardMismatch`] instead of silently merging. See
//! DESIGN.md §10 for the full determinism argument, and
//! [`ShardedCampaign`] for the storage-agnostic core the stress harness
//! drives.
//!
//! # Examples
//!
//! ```no_run
//! use dynawave_core::campaign::{run_journaled, CampaignSpec};
//! use dynawave_core::experiment::ExperimentConfig;
//! use dynawave_core::{report, Metric};
//! use dynawave_workloads::Benchmark;
//!
//! let spec = CampaignSpec::single(Benchmark::Gcc, Metric::Cpi, ExperimentConfig::default());
//! // Re-running after a kill resumes from the journal instead of
//! // re-simulating completed units.
//! let evals = run_journaled(&spec, std::path::Path::new("gcc_cpi.journal"))?;
//! let doc = report::full_report("gcc / cpi campaign", &evals);
//! # Ok::<(), dynawave_core::campaign::CampaignError>(())
//! ```

use crate::dataset::{trace_for, Metric, TraceSet};
use crate::experiment::{score_model, BenchmarkEvaluation, EnvConfigError, ExperimentConfig};
use crate::predictor::WaveletNeuralPredictor;
use dynawave_neural::ModelError;
use dynawave_sampling::DesignPoint;
use dynawave_workloads::Benchmark;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Format tag on the first line of every campaign journal.
const MAGIC: &str = dynawave_obs::schema::CAMPAIGN_JOURNAL;

/// Whether a design point belongs to the training or the test design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitRole {
    /// Point from the LHS training design.
    Train,
    /// Point from the independent random test design.
    Test,
}

impl UnitRole {
    /// Stable lowercase name used in journal lines.
    pub fn name(self) -> &'static str {
        match self {
            UnitRole::Train => "train",
            UnitRole::Test => "test",
        }
    }

    /// Inverse of [`UnitRole::name`].
    pub fn parse(name: &str) -> Option<UnitRole> {
        match name {
            "train" => Some(UnitRole::Train),
            "test" => Some(UnitRole::Test),
            _ => None,
        }
    }
}

/// The atomic unit of campaign progress: one simulated dynamics trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Benchmark to simulate.
    pub benchmark: Benchmark,
    /// Metric to extract from the run.
    pub metric: Metric,
    /// Which design the point belongs to.
    pub role: UnitRole,
    /// Index of the point within its design.
    pub point_index: usize,
}

impl WorkUnit {
    /// The unit's stable journal key, e.g. `gcc cpi train 17`.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} {}",
            self.benchmark.name(),
            self.metric.name(),
            self.role.name(),
            self.point_index
        )
    }
}

/// What a campaign runs: which `(benchmark, metric)` pairs, at what scale.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Benchmarks to evaluate, in order.
    pub benchmarks: Vec<Benchmark>,
    /// Metrics to evaluate per benchmark, in order.
    pub metrics: Vec<Metric>,
    /// Scale, seeds and predictor hyper-parameters.
    pub config: ExperimentConfig,
}

impl CampaignSpec {
    /// A one-pair campaign.
    pub fn single(benchmark: Benchmark, metric: Metric, config: ExperimentConfig) -> Self {
        CampaignSpec {
            benchmarks: vec![benchmark],
            metrics: vec![metric],
            config,
        }
    }

    /// A deterministic fingerprint of every spec field. Journals record it
    /// so a resume under a different configuration is rejected instead of
    /// silently mixing incompatible traces.
    pub fn fingerprint(&self) -> u64 {
        let names: Vec<&str> = self.benchmarks.iter().map(|b| b.name()).collect();
        let metrics: Vec<&str> = self.metrics.iter().map(|m| m.name()).collect();
        fnv1a64(&format!("{names:?}|{metrics:?}|{:?}", self.config))
    }

    /// Total number of work units in this campaign.
    pub fn unit_count(&self) -> usize {
        self.benchmarks.len()
            * self.metrics.len()
            * (self.config.train_points + self.config.test_points)
    }
}

/// 64-bit FNV-1a over a canonical spec description. Not cryptographic —
/// it guards against configuration mix-ups, not adversaries. Shared with
/// the serve module, whose response journal uses the same guard.
pub(crate) fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised while journaling or resuming a campaign.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The journal does not start with the expected magic line.
    BadMagic,
    /// A structural journal line was missing or malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
    /// The journal was written under a different campaign spec.
    SpecMismatch {
        /// Fingerprint of the spec being resumed.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// A journaled trace value was NaN or infinite.
    NonFinite {
        /// 1-based line number.
        line: usize,
    },
    /// A unit line names a benchmark/metric/point outside this campaign.
    UnknownUnit {
        /// 1-based line number.
        line: usize,
    },
    /// A journaled trace has the wrong number of samples.
    BadTraceLength {
        /// 1-based line number.
        line: usize,
        /// Samples the spec requires.
        expected: usize,
        /// Samples found on the line.
        got: usize,
    },
    /// The campaign still has pending units.
    Incomplete {
        /// Units not yet simulated.
        remaining: usize,
    },
    /// Shard journals on disk were written by a run with a different
    /// worker count. Merging them silently would orphan units assigned to
    /// shards that no longer exist, so the resume is refused.
    ShardMismatch {
        /// Shard count of the resuming run.
        expected: usize,
        /// Shard count recorded in the sidecar journal.
        found: usize,
    },
    /// A worker thread died (panicked) mid-campaign.
    Worker {
        /// Which shard's worker failed.
        shard: usize,
        /// The panic payload, best-effort stringified.
        message: String,
    },
    /// Model training failed (possible only under a restrictive
    /// [`crate::RecoveryPolicy`]).
    Model(ModelError),
    /// A journal file operation failed.
    Io(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::BadMagic => write!(f, "not a dynawave campaign journal"),
            CampaignError::Malformed { line, expected } => {
                write!(f, "malformed journal at line {line}: expected {expected}")
            }
            CampaignError::SpecMismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign: \
                 spec fingerprint {expected:016x}, journal has {found:016x}"
            ),
            CampaignError::NonFinite { line } => {
                write!(f, "non-finite trace value in journal at line {line}")
            }
            CampaignError::UnknownUnit { line } => {
                write!(f, "journal line {line} names a unit outside this campaign")
            }
            CampaignError::BadTraceLength {
                line,
                expected,
                got,
            } => write!(
                f,
                "journal line {line}: trace has {got} samples, spec requires {expected}"
            ),
            CampaignError::Incomplete { remaining } => {
                write!(f, "campaign has {remaining} pending units")
            }
            CampaignError::ShardMismatch { expected, found } => write!(
                f,
                "shard journals were written by a {found}-worker run but this run \
                 uses {expected} worker(s); rerun with DYNAWAVE_THREADS={found} or \
                 remove the .shard* sidecar files"
            ),
            CampaignError::Worker { shard, message } => {
                write!(f, "campaign worker for shard {shard} failed: {message}")
            }
            CampaignError::Model(e) => write!(f, "model training failed: {e}"),
            CampaignError::Io(msg) => write!(f, "journal I/O failed: {msg}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CampaignError {
    fn from(e: ModelError) -> Self {
        CampaignError::Model(e)
    }
}

/// Executes a campaign one [`WorkUnit`] at a time, tracking completion so
/// an interrupted campaign resumes exactly where it stopped.
///
/// The runner itself is storage-agnostic: [`CampaignRunner::run_next`]
/// hands back the journal line for each completed unit and
/// [`CampaignRunner::resume`] rebuilds state from journal text. The
/// file-backed driver is [`run_journaled`].
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    spec: CampaignSpec,
    units: Vec<WorkUnit>,
    /// Journal key → index into `units` (BTreeMap keeps iteration and
    /// therefore behavior deterministic; workspace rule D004 bans
    /// HashMap in library code).
    index: BTreeMap<String, usize>,
    /// Completed unit index → simulated trace.
    completed: BTreeMap<usize, Vec<f64>>,
    train_design: Vec<DesignPoint>,
    test_design: Vec<DesignPoint>,
    /// Index of the next pending unit (units complete in order on a
    /// single runner; resume may leave arbitrary holes, which
    /// `next_pending` skips over).
    cursor: usize,
}

impl CampaignRunner {
    /// Starts a fresh campaign with every unit pending.
    pub fn new(spec: CampaignSpec) -> Self {
        let mut units = Vec::with_capacity(spec.unit_count());
        for &benchmark in &spec.benchmarks {
            for &metric in &spec.metrics {
                for (role, count) in [
                    (UnitRole::Train, spec.config.train_points),
                    (UnitRole::Test, spec.config.test_points),
                ] {
                    for point_index in 0..count {
                        units.push(WorkUnit {
                            benchmark,
                            metric,
                            role,
                            point_index,
                        });
                    }
                }
            }
        }
        let index = units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.key(), i))
            .collect();
        let train_design = spec.config.train_design();
        let test_design = spec.config.test_design();
        CampaignRunner {
            spec,
            units,
            index,
            completed: BTreeMap::new(),
            train_design,
            test_design,
            cursor: 0,
        }
    }

    /// Rebuilds a runner from journal text written by a previous
    /// (possibly killed) run.
    ///
    /// A trailing line without a terminating newline is treated as the
    /// partial write of a killed process and dropped; every
    /// newline-terminated line must parse cleanly.
    ///
    /// # Errors
    ///
    /// [`CampaignError::BadMagic`] / [`CampaignError::Malformed`] for a
    /// broken header, [`CampaignError::SpecMismatch`] if the journal was
    /// written under a different spec, and per-line errors for corrupt
    /// unit records (non-finite values, wrong trace length, unknown
    /// units).
    pub fn resume(spec: CampaignSpec, journal: &str) -> Result<Self, CampaignError> {
        let mut runner = CampaignRunner::new(spec);
        let mut lines = complete_lines(journal).lines().enumerate();
        runner.check_header(&mut lines)?;
        for (i, l) in lines {
            runner.ingest_unit_line(i + 1, l)?;
        }
        if dynawave_obs::is_enabled() && !runner.completed.is_empty() {
            dynawave_obs::marker_with_detail(
                "campaign.resumed_from",
                &format!("{} completed unit(s)", runner.completed.len()),
            );
            dynawave_obs::counter_add("campaign.units_resumed", runner.completed.len() as u64);
        }
        Ok(runner)
    }

    /// Validates the two-line journal header (magic + fingerprint) off the
    /// front of `lines`, leaving the iterator at the first body line.
    fn check_header<'a>(
        &self,
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
    ) -> Result<(), CampaignError> {
        let (_, magic) = lines.next().ok_or(CampaignError::Malformed {
            line: 1,
            expected: "magic header",
        })?;
        if magic != MAGIC {
            return Err(CampaignError::BadMagic);
        }
        let (_, fp_line) = lines.next().ok_or(CampaignError::Malformed {
            line: 2,
            expected: "fingerprint <hex>",
        })?;
        let found = fp_line
            .strip_prefix("fingerprint ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or(CampaignError::Malformed {
                line: 2,
                expected: "fingerprint <hex>",
            })?;
        let expected = self.spec.fingerprint();
        if found != expected {
            return Err(CampaignError::SpecMismatch { expected, found });
        }
        Ok(())
    }

    /// Parses one `unit ...` journal body line (1-based `line` for error
    /// reporting) and records its trace as completed.
    fn ingest_unit_line(&mut self, line: usize, l: &str) -> Result<(), CampaignError> {
        if l.trim().is_empty() {
            return Ok(());
        }
        let mut parts = l.split_whitespace();
        if parts.next() != Some("unit") {
            return Err(CampaignError::Malformed {
                line,
                expected: "unit <benchmark> <metric> <train|test> <index> <samples...>",
            });
        }
        let (bench, metric, role, idx) = match (
            parts.next().and_then(Benchmark::from_name),
            parts.next().and_then(Metric::parse),
            parts.next().and_then(UnitRole::parse),
            parts.next().and_then(|v| v.parse::<usize>().ok()),
        ) {
            (Some(b), Some(m), Some(r), Some(i)) => (b, m, r, i),
            _ => return Err(CampaignError::UnknownUnit { line }),
        };
        let key = WorkUnit {
            benchmark: bench,
            metric,
            role,
            point_index: idx,
        }
        .key();
        let unit_index = *self
            .index
            .get(&key)
            .ok_or(CampaignError::UnknownUnit { line })?;
        let mut trace = Vec::with_capacity(self.spec.config.samples);
        for p in parts {
            let v: f64 = p.parse().map_err(|_| CampaignError::Malformed {
                line,
                expected: "floating-point trace sample",
            })?;
            if !v.is_finite() {
                return Err(CampaignError::NonFinite { line });
            }
            trace.push(v);
        }
        if trace.len() != self.spec.config.samples {
            return Err(CampaignError::BadTraceLength {
                line,
                expected: self.spec.config.samples,
                got: trace.len(),
            });
        }
        self.completed.insert(unit_index, trace);
        Ok(())
    }

    /// The campaign spec this runner executes.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// All work units, in execution order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of completed units.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Number of still-pending units.
    pub fn remaining(&self) -> usize {
        self.units.len() - self.completed.len()
    }

    /// `true` when every unit has a trace.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.units.len()
    }

    fn next_pending(&self) -> Option<usize> {
        (self.cursor..self.units.len()).find(|i| !self.completed.contains_key(i))
    }

    fn design_point(&self, unit: &WorkUnit) -> &DesignPoint {
        match unit.role {
            UnitRole::Train => &self.train_design[unit.point_index],
            UnitRole::Test => &self.test_design[unit.point_index],
        }
    }

    /// Simulates the next pending unit and records its trace. Returns the
    /// unit and its newline-terminated journal line, or `None` when the
    /// campaign is complete. Append the line to durable storage *before*
    /// acting on the result to keep the journal ahead of the computation.
    pub fn run_next(&mut self) -> Option<(WorkUnit, String)> {
        let i = self.next_pending()?;
        self.cursor = i;
        self.run_unit(i)
    }

    /// Simulates the unit at `index` if it is still pending, recording its
    /// trace. Returns the unit and its newline-terminated journal line, or
    /// `None` when `index` is out of range or already completed. This is
    /// the random-access sibling of [`CampaignRunner::run_next`] that
    /// sharded executors drive.
    pub fn run_unit(&mut self, index: usize) -> Option<(WorkUnit, String)> {
        if index >= self.units.len() || self.completed.contains_key(&index) {
            return None;
        }
        let unit = self.units[index];
        let trace = trace_for(
            unit.benchmark,
            self.design_point(&unit),
            unit.metric,
            &self.spec.config.sim_options(),
        );
        let line = journal_line(&unit, &trace);
        self.completed.insert(index, trace);
        observe_unit_done(&unit);
        Some((unit, line))
    }

    /// The full journal text for the current state: header plus one line
    /// per completed unit, in execution order. Writing this to disk
    /// produces a journal that [`CampaignRunner::resume`] accepts and
    /// that is free of any partial tail.
    pub fn journal(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("fingerprint {:016x}\n", self.spec.fingerprint()));
        for (&i, trace) in &self.completed {
            out.push_str(&journal_line(&self.units[i], trace));
        }
        out
    }

    /// Trains, predicts and scores every `(benchmark, metric)` pair from
    /// the completed traces, using the spec's recovery policy (see
    /// [`ExperimentConfig::recovery`]).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Incomplete`] while units are pending;
    /// [`CampaignError::Model`] if training fails outright (possible only
    /// under a restrictive recovery policy).
    pub fn finish(&self) -> Result<Vec<BenchmarkEvaluation>, CampaignError> {
        let _span = dynawave_obs::span("campaign.finish");
        if !self.is_complete() {
            return Err(CampaignError::Incomplete {
                remaining: self.remaining(),
            });
        }
        let cfg = &self.spec.config;
        let mut evals = Vec::new();
        for &benchmark in &self.spec.benchmarks {
            for &metric in &self.spec.metrics {
                let gather = |role: UnitRole| -> Vec<Vec<f64>> {
                    self.units
                        .iter()
                        .enumerate()
                        .filter(|(_, u)| {
                            u.benchmark == benchmark && u.metric == metric && u.role == role
                        })
                        .filter_map(|(i, _)| self.completed.get(&i).cloned())
                        .collect()
                };
                let train = TraceSet {
                    benchmark,
                    metric,
                    points: self.train_design.clone(),
                    traces: gather(UnitRole::Train),
                };
                let (model, degradation) = match WaveletNeuralPredictor::train_resilient(
                    &train,
                    &cfg.predictor,
                    &cfg.recovery,
                ) {
                    Ok(trained) => trained,
                    Err(e) => {
                        dynawave_obs::counter_add("campaign.units_failed", 1);
                        return Err(e.into());
                    }
                };
                let test = TraceSet {
                    benchmark,
                    metric,
                    points: self.test_design.clone(),
                    traces: gather(UnitRole::Test),
                };
                let mut eval = score_model(benchmark, metric, model, test);
                eval.degradation = degradation;
                evals.push(eval);
            }
        }
        Ok(evals)
    }
}

/// A campaign partitioned into shards: unit `i` belongs to shard
/// `i % shards`, always — the assignment depends only on the spec, never
/// on thread scheduling, which is the first half of the determinism
/// argument (DESIGN.md §10). The second half is the merge:
/// completed traces land in the runner's `BTreeMap` keyed by canonical
/// unit index, so [`ShardedCampaign::merged_journal`] and
/// [`ShardedCampaign::finish`] are byte-identical for any shard count.
///
/// Like [`CampaignRunner`] this is storage-agnostic — [`ShardedCampaign::step`]
/// advances one shard by one unit and hands back the journal line, and
/// [`ShardedCampaign::ingest_shard_journal`] rebuilds progress from
/// sidecar text — which is what lets the `dynawave-testkit` stress
/// harness drive it through arbitrary interleavings and mid-run kills
/// in-memory. The file-backed threaded driver is
/// [`run_journaled_parallel`].
#[derive(Debug, Clone)]
pub struct ShardedCampaign {
    runner: CampaignRunner,
    shards: usize,
    /// Unit indices owned by each shard, in canonical order.
    queues: Vec<Vec<usize>>,
}

impl ShardedCampaign {
    /// Partitions a fresh campaign into `shards` shards (clamped to at
    /// least one).
    pub fn new(spec: CampaignSpec, shards: usize) -> Self {
        ShardedCampaign::from_runner(CampaignRunner::new(spec), shards)
    }

    /// Partitions an existing (possibly partially complete) runner.
    pub fn from_runner(runner: CampaignRunner, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut queues = vec![Vec::new(); shards];
        for i in 0..runner.units.len() {
            queues[i % shards].push(i);
        }
        ShardedCampaign {
            runner,
            shards,
            queues,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The underlying runner.
    pub fn runner(&self) -> &CampaignRunner {
        &self.runner
    }

    /// Unwraps the underlying runner.
    pub fn into_runner(self) -> CampaignRunner {
        self.runner
    }

    /// Number of completed units across all shards.
    pub fn completed_count(&self) -> usize {
        self.runner.completed_count()
    }

    /// `true` when every unit in every shard has a trace.
    pub fn is_complete(&self) -> bool {
        self.runner.is_complete()
    }

    /// Pending unit indices owned by `shard`, in canonical order.
    pub fn pending_for_shard(&self, shard: usize) -> Vec<usize> {
        self.queues
            .get(shard)
            .map(|q| {
                q.iter()
                    .copied()
                    .filter(|i| !self.runner.completed.contains_key(i))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Runs `shard`'s next pending unit. Returns the unit and its journal
    /// line (append it to the shard's sidecar before acting on the
    /// result), or `None` when the shard index is out of range or the
    /// shard has no pending work.
    pub fn step(&mut self, shard: usize) -> Option<(WorkUnit, String)> {
        let next = self
            .queues
            .get(shard)?
            .iter()
            .copied()
            .find(|i| !self.runner.completed.contains_key(i))?;
        self.runner.run_unit(next)
    }

    /// The full sidecar journal text for one shard: the canonical header,
    /// a `shard <k> of <n>` declaration line, then one line per completed
    /// unit owned by the shard, in canonical order.
    pub fn shard_journal(&self, shard: usize) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "fingerprint {:016x}\n",
            self.runner.spec.fingerprint()
        ));
        out.push_str(&format!("shard {shard} of {}\n", self.shards));
        if let Some(queue) = self.queues.get(shard) {
            for i in queue {
                if let Some(trace) = self.runner.completed.get(i) {
                    out.push_str(&journal_line(&self.runner.units[*i], trace));
                }
            }
        }
        out
    }

    /// Replays one shard's sidecar journal into this campaign, returning
    /// `(declared shard, units ingested)`. Tolerates a torn final line
    /// (the kill signature), like [`CampaignRunner::resume`].
    ///
    /// # Errors
    ///
    /// Header errors as in [`CampaignRunner::resume`], plus
    /// [`CampaignError::ShardMismatch`] when the sidecar declares a
    /// different shard count than this campaign uses, and
    /// [`CampaignError::Malformed`] when the declared shard index is out
    /// of range for the declared count.
    pub fn ingest_shard_journal(&mut self, text: &str) -> Result<(usize, usize), CampaignError> {
        let mut lines = complete_lines(text).lines().enumerate();
        self.runner.check_header(&mut lines)?;
        let declared = lines.next().and_then(|(_, l)| parse_shard_line(l)).ok_or(
            CampaignError::Malformed {
                line: 3,
                expected: "shard <k> of <n>",
            },
        )?;
        let (shard, of) = declared;
        if of != self.shards {
            return Err(CampaignError::ShardMismatch {
                expected: self.shards,
                found: of,
            });
        }
        if shard >= of {
            return Err(CampaignError::Malformed {
                line: 3,
                expected: "shard <k> of <n> with k < n",
            });
        }
        let before = self.runner.completed.len();
        for (i, l) in lines {
            self.runner.ingest_unit_line(i + 1, l)?;
        }
        Ok((shard, self.runner.completed.len() - before))
    }

    /// The canonical merged journal for the current state — identical to
    /// what a sequential [`CampaignRunner::journal`] produces from the
    /// same completed set, whatever order the shards ran in.
    pub fn merged_journal(&self) -> String {
        self.runner.journal()
    }

    /// Trains and scores the completed campaign; see
    /// [`CampaignRunner::finish`]. Training runs on the calling thread —
    /// sequentially — which is what keeps fault-injection schedules (all
    /// sites are solver-side) independent of the shard count.
    pub fn finish(&self) -> Result<Vec<BenchmarkEvaluation>, CampaignError> {
        self.runner.finish()
    }
}

/// `shard <k> of <n>` → `(k, n)`.
fn parse_shard_line(l: &str) -> Option<(usize, usize)> {
    let mut parts = l.split_whitespace();
    if parts.next() != Some("shard") {
        return None;
    }
    let shard = parts.next()?.parse().ok()?;
    if parts.next() != Some("of") {
        return None;
    }
    let of = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((shard, of))
}

/// Only newline-terminated lines of a journal are trustworthy: a kill
/// mid-write leaves a partial final line, which must be ignored.
pub(crate) fn complete_lines(journal: &str) -> &str {
    match journal.rfind('\n') {
        Some(last) => journal.get(..=last).unwrap_or_default(),
        None => "",
    }
}

/// Bucket bounds for the `campaign.unit_latency` histogram: per-unit
/// tick deltas between heartbeats. On the deterministic tick clock a
/// unit costs single-digit ticks today; the doubling tail leaves room
/// for more heavily instrumented stages without re-bucketing committed
/// streams (histogram merges require identical bounds).
const UNIT_LATENCY_BOUNDS: [f64; 6] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Per-unit completion heartbeat: a killed campaign's stream shows
/// exactly how far it got, and the unit key in the marker detail is what
/// the parallel merge sorts worker segments by. The tick delta since the
/// previous heartbeat lands in the `campaign.unit_latency` histogram, so
/// `obs_report` gets a latency distribution without re-deriving it from
/// raw spans. Deltas count recorder activity per unit, which is
/// identical for every worker split of the same unit set — histograms
/// with matching bounds sum across workers at merge time.
fn observe_unit_done(unit: &WorkUnit) {
    if dynawave_obs::is_enabled() {
        dynawave_obs::marker_latency(
            "campaign.heartbeat",
            &unit.key(),
            "campaign.unit_latency",
            &UNIT_LATENCY_BOUNDS,
        );
        dynawave_obs::counter_add("campaign.units_done", 1);
    }
}

/// Worker count for parallel campaigns: `DYNAWAVE_THREADS` when set, the
/// machine's available parallelism otherwise. Deliberately *not* part of
/// [`ExperimentConfig`] — the journal fingerprint covers the config, and
/// the whole point of the deterministic merge is that the same journal
/// serves any thread count.
///
/// # Errors
///
/// [`EnvConfigError`] when `DYNAWAVE_THREADS` is set but is not a
/// positive integer.
pub fn threads_from_env() -> Result<usize, EnvConfigError> {
    // dynalint:allow(D004) -- documented, explicit config entry point (mirrors ExperimentConfig::from_env)
    match std::env::var("DYNAWAVE_THREADS") {
        Ok(value) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(EnvConfigError {
                name: "DYNAWAVE_THREADS",
                value,
                expected: "a positive worker count",
            }),
        },
        // dynalint:allow(D004) -- capacity probe at the documented entry point; affects wall-clock only, never report bytes
        Err(_) => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
    }
}

/// Formats one completed unit as its journal line (newline-terminated).
/// Floats use Rust's shortest round-trip representation, which is what
/// makes a resumed campaign bit-identical to an uninterrupted one.
fn journal_line(unit: &WorkUnit, trace: &[f64]) -> String {
    let mut line = String::from("unit ");
    line.push_str(&unit.key());
    for v in trace {
        line.push(' ');
        line.push_str(&format!("{v}"));
    }
    line.push('\n');
    line
}

fn io_err(e: std::io::Error) -> CampaignError {
    CampaignError::Io(e.to_string())
}

/// Opens (or creates) the journal at `path` and runs at most `max_units`
/// pending units, appending each completed unit's line before moving on.
/// Returns the total number of completed units afterwards.
///
/// On resume the journal is first rewritten from the parsed state, which
/// drops the partial tail a kill may have left behind.
///
/// # Errors
///
/// Journal parse errors from [`CampaignRunner::resume`] and I/O failures
/// as [`CampaignError::Io`].
pub fn advance_journaled(
    spec: &CampaignSpec,
    path: &Path,
    max_units: usize,
) -> Result<usize, CampaignError> {
    let mut runner = load_runner(spec, path)?;
    let mut appended = String::new();
    for _ in 0..max_units {
        match runner.run_next() {
            Some((_, line)) => appended.push_str(&line),
            None => break,
        }
    }
    append(path, &appended)?;
    Ok(runner.completed_count())
}

/// Runs a campaign to completion against the journal at `path` — creating
/// it, resuming it, or simply finishing from it — and returns the scored
/// evaluations. Killed runs resume by calling this again with the same
/// spec and path; the final report is byte-identical either way.
///
/// # Errors
///
/// Journal parse errors, I/O failures, and model-training failures under
/// restrictive recovery policies.
pub fn run_journaled(
    spec: &CampaignSpec,
    path: &Path,
) -> Result<Vec<BenchmarkEvaluation>, CampaignError> {
    let _span = dynawave_obs::span("campaign.run");
    let mut runner = load_runner(spec, path)?;
    let mut pending_lines = String::new();
    while let Some((_, line)) = runner.run_next() {
        pending_lines.push_str(&line);
        // Flush in small batches so a kill loses little work; one unit per
        // write keeps the journal strictly ahead of anything expensive.
        append(path, &pending_lines)?;
        pending_lines.clear();
    }
    runner.finish()
}

/// Runs a campaign to completion across `threads` worker threads, each
/// journaling to its own `<path>.shard<k>` sidecar, then merges into the
/// canonical journal at `path` and deletes the sidecars. The returned
/// evaluations, the final report, and the final journal bytes are
/// identical to [`run_journaled`]'s for every thread count; with tracing
/// enabled, each worker records to its own recorder and the streams merge
/// deterministically in canonical unit order (see
/// [`dynawave_obs::absorb_workers`]).
///
/// A killed parallel run resumes by calling this again with the same
/// spec, path, and thread count; surviving sidecars (torn tails included)
/// are replayed before new work starts. Resuming under a *different*
/// thread count is refused with [`CampaignError::ShardMismatch`] — a
/// completed canonical journal, however, has no sidecars and serves any
/// thread count.
///
/// # Errors
///
/// Everything [`run_journaled`] can raise, plus
/// [`CampaignError::ShardMismatch`] for foreign sidecars and
/// [`CampaignError::Worker`] when a worker thread panics.
pub fn run_journaled_parallel(
    spec: &CampaignSpec,
    path: &Path,
    threads: usize,
) -> Result<Vec<BenchmarkEvaluation>, CampaignError> {
    let _span = dynawave_obs::span("campaign.run");
    let threads = threads.max(1);
    let mut sharded = load_sharded(spec, path, threads)?;
    let traced = dynawave_obs::is_enabled();
    let opts = sharded.runner.spec.config.sim_options();
    // Snapshot each shard's pending work as (canonical index, unit,
    // design point) so workers never touch shared state.
    let work: Vec<Vec<(usize, WorkUnit, DesignPoint)>> = (0..threads)
        .map(|shard| {
            sharded
                .pending_for_shard(shard)
                .into_iter()
                .map(|i| {
                    let unit = sharded.runner.units[i];
                    (i, unit, sharded.runner.design_point(&unit).clone())
                })
                .collect()
        })
        .collect();
    let outcomes: Vec<Result<ShardOutcome, CampaignError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .iter()
            .enumerate()
            .map(|(shard, units)| {
                let opts = &opts;
                let sidecar = shard_path(path, shard);
                scope.spawn(move || run_shard(units, opts, &sidecar, traced))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard, handle)| {
                handle.join().unwrap_or_else(|payload| {
                    Err(CampaignError::Worker {
                        shard,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    });
    let mut recorders = Vec::new();
    for outcome in outcomes {
        let ShardOutcome {
            completed,
            recorder,
        } = outcome?;
        for (i, trace) in completed {
            sharded.runner.completed.insert(i, trace);
        }
        recorders.extend(recorder);
    }
    if traced {
        // Sort worker event segments into canonical unit order so the
        // merged stream is byte-identical for any thread count.
        let order: BTreeMap<String, usize> = sharded.runner.index.clone();
        dynawave_obs::absorb_workers(recorders, "campaign.heartbeat", move |detail| {
            order.get(detail).map(|i| *i as u64).unwrap_or(u64::MAX)
        });
    }
    std::fs::write(path, sharded.runner.journal()).map_err(io_err)?;
    for shard in 0..threads {
        let _ = std::fs::remove_file(shard_path(path, shard));
    }
    sharded.runner.finish()
}

/// What one worker thread hands back to the merge.
struct ShardOutcome {
    /// `(canonical unit index, trace)` for every unit the worker ran.
    completed: Vec<(usize, Vec<f64>)>,
    /// The worker's thread-local recorder, when tracing was on.
    recorder: Option<dynawave_obs::Recorder>,
}

/// Worker body: simulate each assigned unit, appending its journal line
/// to the shard's sidecar *before* moving on so the journal stays ahead
/// of the computation.
fn run_shard(
    units: &[(usize, WorkUnit, DesignPoint)],
    opts: &dynawave_sim::SimOptions,
    sidecar: &Path,
    traced: bool,
) -> Result<ShardOutcome, CampaignError> {
    if traced {
        dynawave_obs::install(dynawave_obs::Recorder::with_tick_clock());
    }
    let mut completed = Vec::with_capacity(units.len());
    for (i, unit, point) in units {
        let trace = trace_for(unit.benchmark, point, unit.metric, opts);
        append(sidecar, &journal_line(unit, &trace))?;
        observe_unit_done(unit);
        completed.push((*i, trace));
    }
    Ok(ShardOutcome {
        completed,
        recorder: dynawave_obs::take(),
    })
}

/// Best-effort stringification of a worker panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("worker panicked")
    }
}

/// The sidecar journal path for one shard: `<path>.shard<k>`.
pub fn shard_path(path: &Path, shard: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".shard{shard}"));
    PathBuf::from(name)
}

/// Finds `<path>.shard<k>` sidecars next to the canonical journal,
/// returning `(k, text)` pairs sorted by `k`.
fn discover_sidecars(path: &Path) -> Result<Vec<(usize, String)>, CampaignError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = match path.file_name().and_then(|n| n.to_str()) {
        Some(stem) => format!("{stem}.shard"),
        None => return Ok(Vec::new()),
    };
    let entries = match std::fs::read_dir(&parent) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(e)),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let shard = match name.to_str().and_then(|n| n.strip_prefix(&prefix)) {
            Some(suffix) => match suffix.parse::<usize>() {
                Ok(shard) => shard,
                Err(_) => continue,
            },
            None => continue,
        };
        let text = std::fs::read_to_string(entry.path()).map_err(io_err)?;
        found.push((shard, text));
    }
    found.sort_by_key(|(shard, _)| *shard);
    Ok(found)
}

/// Loads or initializes the sharded campaign from the canonical journal
/// plus any shard sidecars, then rewrites all of them partial-tail-free
/// before new work starts. Sidecars declaring a different shard count are
/// refused ([`CampaignError::ShardMismatch`]); sidecars whose declared
/// index differs from their filename are corrupt
/// ([`CampaignError::Malformed`]).
fn load_sharded(
    spec: &CampaignSpec,
    path: &Path,
    threads: usize,
) -> Result<ShardedCampaign, CampaignError> {
    let runner = match std::fs::read_to_string(path) {
        Ok(text) => CampaignRunner::resume(spec.clone(), &text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => CampaignRunner::new(spec.clone()),
        Err(e) => return Err(io_err(e)),
    };
    let mut sharded = ShardedCampaign::from_runner(runner, threads);
    let mut sidecar_units = 0;
    for (file_shard, text) in discover_sidecars(path)? {
        let (declared, ingested) = sharded.ingest_shard_journal(&text)?;
        if declared != file_shard {
            return Err(CampaignError::Malformed {
                line: 3,
                expected: "shard index matching the sidecar filename",
            });
        }
        sidecar_units += ingested;
    }
    if dynawave_obs::is_enabled() && sidecar_units > 0 {
        dynawave_obs::marker_with_detail(
            "campaign.resumed_from",
            &format!("{sidecar_units} sharded unit(s)"),
        );
        dynawave_obs::counter_add("campaign.units_resumed", sidecar_units as u64);
    }
    std::fs::write(path, sharded.runner.journal()).map_err(io_err)?;
    for shard in 0..threads {
        std::fs::write(shard_path(path, shard), sharded.shard_journal(shard)).map_err(io_err)?;
    }
    Ok(sharded)
}

/// Loads or initializes the journal-backed runner and rewrites the file
/// so it is partial-tail-free before any new work starts.
///
/// Sequential execution is the one-shard case: a sidecar left by a killed
/// single-thread parallel run folds back into the canonical journal, but
/// sidecars from a multi-thread run are refused
/// ([`CampaignError::ShardMismatch`]) instead of silently merged.
fn load_runner(spec: &CampaignSpec, path: &Path) -> Result<CampaignRunner, CampaignError> {
    let sharded = load_sharded(spec, path, 1)?;
    // The canonical rewrite above already folded shard 0 in; a sequential
    // run appends to the canonical journal only, so drop the sidecar.
    let _ = std::fs::remove_file(shard_path(path, 0));
    Ok(sharded.into_runner())
}

fn append(path: &Path, text: &str) -> Result<(), CampaignError> {
    if text.is_empty() {
        return Ok(());
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(io_err)?;
    f.write_all(text.as_bytes()).map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::single(
            Benchmark::Eon,
            Metric::Cpi,
            ExperimentConfig {
                train_points: 12,
                test_points: 4,
                samples: 16,
                interval_instructions: 400,
                seed: 21,
                ..ExperimentConfig::default()
            },
        )
    }

    #[test]
    fn fresh_campaign_enumerates_units_in_order() {
        let spec = tiny_spec();
        let runner = CampaignRunner::new(spec.clone());
        assert_eq!(runner.units().len(), 16);
        assert_eq!(runner.units().len(), spec.unit_count());
        assert_eq!(runner.units()[0].role, UnitRole::Train);
        assert_eq!(runner.units()[12].role, UnitRole::Test);
        assert_eq!(runner.units()[3].key(), "eon cpi train 3");
        assert_eq!(runner.remaining(), 16);
        assert!(!runner.is_complete());
    }

    #[test]
    fn run_to_completion_and_finish() {
        let mut runner = CampaignRunner::new(tiny_spec());
        let mut executed = 0;
        while runner.run_next().is_some() {
            executed += 1;
        }
        assert_eq!(executed, 16);
        assert!(runner.is_complete());
        let evals = runner.finish().unwrap();
        assert_eq!(evals.len(), 1);
        assert_eq!(evals[0].nmse_per_test.len(), 4);
        assert!(evals[0].degradation.is_pristine());
    }

    #[test]
    fn finish_before_completion_is_rejected() {
        let mut runner = CampaignRunner::new(tiny_spec());
        runner.run_next();
        assert!(matches!(
            runner.finish(),
            Err(CampaignError::Incomplete { remaining: 15 })
        ));
    }

    #[test]
    fn journal_roundtrip_restores_progress() {
        let spec = tiny_spec();
        let mut runner = CampaignRunner::new(spec.clone());
        for _ in 0..5 {
            runner.run_next();
        }
        let restored = CampaignRunner::resume(spec, &runner.journal()).unwrap();
        assert_eq!(restored.completed_count(), 5);
        assert_eq!(restored.remaining(), 11);
    }

    #[test]
    fn resume_drops_partial_tail_but_rejects_corrupt_complete_lines() {
        let spec = tiny_spec();
        let mut runner = CampaignRunner::new(spec.clone());
        for _ in 0..3 {
            runner.run_next();
        }
        let journal = runner.journal();
        // A kill mid-write: the last line loses its tail (and newline).
        let cut = journal.len() - 10;
        let killed = &journal[..cut];
        let restored = CampaignRunner::resume(spec.clone(), killed).unwrap();
        assert_eq!(restored.completed_count(), 2);
        // But a *complete* line with garbage is corruption, not a kill.
        let corrupt = journal.replacen("unit eon", "unit zzz", 1);
        assert!(matches!(
            CampaignRunner::resume(spec, &corrupt),
            Err(CampaignError::UnknownUnit { .. })
        ));
    }

    #[test]
    fn resume_rejects_non_finite_and_short_traces() {
        let spec = tiny_spec();
        let mut runner = CampaignRunner::new(spec.clone());
        runner.run_next();
        let journal = runner.journal();
        let header_len = journal.find("unit").unwrap();
        let (header, unit_line) = journal.split_at(header_len);
        // Replace the first sample with NaN.
        let mut parts: Vec<&str> = unit_line.trim_end().split(' ').collect();
        parts[6] = "NaN";
        let poisoned = format!("{header}{}\n", parts.join(" "));
        assert!(matches!(
            CampaignRunner::resume(spec.clone(), &poisoned),
            Err(CampaignError::NonFinite { .. })
        ));
        // Drop one sample: complete line, wrong length.
        parts.remove(6);
        let short = format!("{header}{}\n", parts.join(" "));
        assert!(matches!(
            CampaignRunner::resume(spec, &short),
            Err(CampaignError::BadTraceLength {
                expected: 16,
                got: 15,
                ..
            })
        ));
    }

    #[test]
    fn resume_rejects_other_specs_and_garbage() {
        let spec = tiny_spec();
        let runner = CampaignRunner::new(spec.clone());
        let other = CampaignSpec::single(
            Benchmark::Mcf,
            Metric::Power,
            ExperimentConfig {
                seed: 999,
                ..spec.config.clone()
            },
        );
        assert!(matches!(
            CampaignRunner::resume(other, &runner.journal()),
            Err(CampaignError::SpecMismatch { .. })
        ));
        assert!(matches!(
            CampaignRunner::resume(spec.clone(), "hello\nworld\n"),
            Err(CampaignError::BadMagic)
        ));
        assert!(CampaignRunner::resume(spec, "").is_err());
    }

    #[test]
    fn killed_and_resumed_campaign_report_is_byte_identical() {
        let spec = tiny_spec();
        // Uninterrupted reference run.
        let mut reference = CampaignRunner::new(spec.clone());
        while reference.run_next().is_some() {}
        let ref_report = report::full_report("campaign", &reference.finish().unwrap());
        // Killed after 7 units, mid-line, then resumed from the journal.
        let mut first = CampaignRunner::new(spec.clone());
        for _ in 0..7 {
            first.run_next();
        }
        let journal = first.journal();
        let killed = &journal[..journal.len() - 3];
        let mut resumed = CampaignRunner::resume(spec, killed).unwrap();
        assert_eq!(resumed.completed_count(), 6);
        while resumed.run_next().is_some() {}
        let resumed_report = report::full_report("campaign", &resumed.finish().unwrap());
        assert_eq!(ref_report, resumed_report);
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_sequential_for_any_shard_count() {
        let spec = tiny_spec();
        let mut sequential = CampaignRunner::new(spec.clone());
        while sequential.run_next().is_some() {}
        let want = sequential.journal();
        for shards in [1, 2, 3, 5, 16, 17] {
            let mut sharded = ShardedCampaign::new(spec.clone(), shards);
            // Drain shards round-robin — any schedule reaches the same
            // merged bytes.
            loop {
                let mut progressed = false;
                for shard in 0..sharded.shards() {
                    progressed |= sharded.step(shard).is_some();
                }
                if !progressed {
                    break;
                }
            }
            assert!(sharded.is_complete());
            assert_eq!(sharded.merged_journal(), want, "{shards} shards diverged");
        }
    }

    #[test]
    fn shard_journals_roundtrip_with_torn_tails() {
        let spec = tiny_spec();
        let mut sharded = ShardedCampaign::new(spec.clone(), 3);
        for _ in 0..2 {
            for shard in 0..3 {
                sharded.step(shard);
            }
        }
        let mut rebuilt = ShardedCampaign::new(spec, 3);
        for shard in 0..3 {
            let text = sharded.shard_journal(shard);
            // Tear the tail of one sidecar, as a kill mid-write would.
            let text = if shard == 1 {
                &text[..text.len() - 9]
            } else {
                &text
            };
            let (declared, _) = rebuilt.ingest_shard_journal(text).unwrap();
            assert_eq!(declared, shard);
        }
        // Shard 1 lost its torn final unit; everything else survived.
        assert_eq!(rebuilt.completed_count(), 5);
    }

    #[test]
    fn ingest_refuses_foreign_shard_counts_and_bad_indices() {
        let spec = tiny_spec();
        let four = ShardedCampaign::new(spec.clone(), 4);
        let mut two = ShardedCampaign::new(spec.clone(), 2);
        assert!(matches!(
            two.ingest_shard_journal(&four.shard_journal(0)),
            Err(CampaignError::ShardMismatch {
                expected: 2,
                found: 4,
            })
        ));
        let mut corrupt = ShardedCampaign::new(spec, 2);
        let text = two.shard_journal(0).replace("shard 0 of 2", "shard 7 of 2");
        assert!(matches!(
            corrupt.ingest_shard_journal(&text),
            Err(CampaignError::Malformed { line: 3, .. })
        ));
    }

    #[test]
    fn sequential_loader_rejects_sidecars_from_a_multi_thread_run() {
        // The satellite fix: load_runner must refuse a shard-count
        // mismatch instead of silently merging sidecar journals.
        let spec = tiny_spec();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "dynawave-unit-shardrefusal-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut sharded = ShardedCampaign::new(spec.clone(), 4);
        sharded.step(2);
        std::fs::write(shard_path(&path, 2), sharded.shard_journal(2)).unwrap();
        let got = load_runner(&spec, &path);
        assert!(
            matches!(
                got,
                Err(CampaignError::ShardMismatch {
                    expected: 1,
                    found: 4,
                })
            ),
            "{got:?}"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(shard_path(&path, 2));
        let _ = std::fs::remove_file(shard_path(&path, 0));
    }

    #[test]
    fn shard_line_parses_strictly() {
        assert_eq!(parse_shard_line("shard 3 of 8"), Some((3, 8)));
        assert_eq!(parse_shard_line("shard 3 of"), None);
        assert_eq!(parse_shard_line("shard x of 8"), None);
        assert_eq!(parse_shard_line("shard 3 of 8 extra"), None);
        assert_eq!(parse_shard_line("unit eon cpi train 0"), None);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_knob() {
        let spec = tiny_spec();
        let base = spec.fingerprint();
        assert_eq!(base, tiny_spec().fingerprint());
        let mut other = spec.clone();
        other.config.seed ^= 1;
        assert_ne!(base, other.fingerprint());
        let mut other = spec.clone();
        other.benchmarks.push(Benchmark::Gcc);
        assert_ne!(base, other.fingerprint());
        let mut other = spec;
        other.config.recovery.ridge_escalations += 1;
        assert_ne!(base, other.fingerprint());
    }
}
