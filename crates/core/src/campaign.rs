//! Fault-tolerant DSE campaigns: checkpoint/resume over simulation units.
//!
//! A paper-scale accuracy campaign simulates hundreds of design points per
//! `(benchmark, metric)` pair before a single model is trained. On shared
//! clusters those jobs get preempted, killed by OOM sweeps, or rebooted —
//! and restarting a multi-hour campaign from scratch is the difference
//! between "ran the full Table 2 sweep" and "gave up".
//!
//! This module decomposes an [`ExperimentConfig`] campaign into
//! [`WorkUnit`]s — one simulated trace per `(benchmark, metric, role,
//! design-point)` — and journals every completed unit to an append-only,
//! human-inspectable text file. A killed campaign resumes by replaying the
//! journal: completed units are never re-simulated, a partially written
//! trailing line (the kill signature) is dropped, and the final report is
//! **byte-identical** to an uninterrupted run because traces round-trip
//! through the journal with Rust's shortest-exact float formatting.
//!
//! The journal is guarded by a fingerprint of the campaign spec, so a
//! journal written under one configuration can never silently poison a
//! resumed run under another.
//!
//! # Examples
//!
//! ```no_run
//! use dynawave_core::campaign::{run_journaled, CampaignSpec};
//! use dynawave_core::experiment::ExperimentConfig;
//! use dynawave_core::{report, Metric};
//! use dynawave_workloads::Benchmark;
//!
//! let spec = CampaignSpec::single(Benchmark::Gcc, Metric::Cpi, ExperimentConfig::default());
//! // Re-running after a kill resumes from the journal instead of
//! // re-simulating completed units.
//! let evals = run_journaled(&spec, std::path::Path::new("gcc_cpi.journal"))?;
//! let doc = report::full_report("gcc / cpi campaign", &evals);
//! # Ok::<(), dynawave_core::campaign::CampaignError>(())
//! ```

use crate::dataset::{trace_for, Metric, TraceSet};
use crate::experiment::{score_model, BenchmarkEvaluation, ExperimentConfig};
use crate::predictor::WaveletNeuralPredictor;
use dynawave_neural::ModelError;
use dynawave_sampling::DesignPoint;
use dynawave_workloads::Benchmark;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Format tag on the first line of every campaign journal.
const MAGIC: &str = "dynawave-campaign v1";

/// Whether a design point belongs to the training or the test design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitRole {
    /// Point from the LHS training design.
    Train,
    /// Point from the independent random test design.
    Test,
}

impl UnitRole {
    /// Stable lowercase name used in journal lines.
    pub fn name(self) -> &'static str {
        match self {
            UnitRole::Train => "train",
            UnitRole::Test => "test",
        }
    }

    /// Inverse of [`UnitRole::name`].
    pub fn parse(name: &str) -> Option<UnitRole> {
        match name {
            "train" => Some(UnitRole::Train),
            "test" => Some(UnitRole::Test),
            _ => None,
        }
    }
}

/// The atomic unit of campaign progress: one simulated dynamics trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Benchmark to simulate.
    pub benchmark: Benchmark,
    /// Metric to extract from the run.
    pub metric: Metric,
    /// Which design the point belongs to.
    pub role: UnitRole,
    /// Index of the point within its design.
    pub point_index: usize,
}

impl WorkUnit {
    /// The unit's stable journal key, e.g. `gcc cpi train 17`.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} {}",
            self.benchmark.name(),
            self.metric.name(),
            self.role.name(),
            self.point_index
        )
    }
}

/// What a campaign runs: which `(benchmark, metric)` pairs, at what scale.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Benchmarks to evaluate, in order.
    pub benchmarks: Vec<Benchmark>,
    /// Metrics to evaluate per benchmark, in order.
    pub metrics: Vec<Metric>,
    /// Scale, seeds and predictor hyper-parameters.
    pub config: ExperimentConfig,
}

impl CampaignSpec {
    /// A one-pair campaign.
    pub fn single(benchmark: Benchmark, metric: Metric, config: ExperimentConfig) -> Self {
        CampaignSpec {
            benchmarks: vec![benchmark],
            metrics: vec![metric],
            config,
        }
    }

    /// A deterministic fingerprint of every spec field. Journals record it
    /// so a resume under a different configuration is rejected instead of
    /// silently mixing incompatible traces.
    pub fn fingerprint(&self) -> u64 {
        let names: Vec<&str> = self.benchmarks.iter().map(|b| b.name()).collect();
        let metrics: Vec<&str> = self.metrics.iter().map(|m| m.name()).collect();
        fnv1a64(&format!("{names:?}|{metrics:?}|{:?}", self.config))
    }

    /// Total number of work units in this campaign.
    pub fn unit_count(&self) -> usize {
        self.benchmarks.len()
            * self.metrics.len()
            * (self.config.train_points + self.config.test_points)
    }
}

/// 64-bit FNV-1a over a canonical spec description. Not cryptographic —
/// it guards against configuration mix-ups, not adversaries.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised while journaling or resuming a campaign.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The journal does not start with the expected magic line.
    BadMagic,
    /// A structural journal line was missing or malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was expected there.
        expected: &'static str,
    },
    /// The journal was written under a different campaign spec.
    SpecMismatch {
        /// Fingerprint of the spec being resumed.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// A journaled trace value was NaN or infinite.
    NonFinite {
        /// 1-based line number.
        line: usize,
    },
    /// A unit line names a benchmark/metric/point outside this campaign.
    UnknownUnit {
        /// 1-based line number.
        line: usize,
    },
    /// A journaled trace has the wrong number of samples.
    BadTraceLength {
        /// 1-based line number.
        line: usize,
        /// Samples the spec requires.
        expected: usize,
        /// Samples found on the line.
        got: usize,
    },
    /// The campaign still has pending units.
    Incomplete {
        /// Units not yet simulated.
        remaining: usize,
    },
    /// Model training failed (possible only under a restrictive
    /// [`crate::RecoveryPolicy`]).
    Model(ModelError),
    /// A journal file operation failed.
    Io(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::BadMagic => write!(f, "not a dynawave campaign journal"),
            CampaignError::Malformed { line, expected } => {
                write!(f, "malformed journal at line {line}: expected {expected}")
            }
            CampaignError::SpecMismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign: \
                 spec fingerprint {expected:016x}, journal has {found:016x}"
            ),
            CampaignError::NonFinite { line } => {
                write!(f, "non-finite trace value in journal at line {line}")
            }
            CampaignError::UnknownUnit { line } => {
                write!(f, "journal line {line} names a unit outside this campaign")
            }
            CampaignError::BadTraceLength {
                line,
                expected,
                got,
            } => write!(
                f,
                "journal line {line}: trace has {got} samples, spec requires {expected}"
            ),
            CampaignError::Incomplete { remaining } => {
                write!(f, "campaign has {remaining} pending units")
            }
            CampaignError::Model(e) => write!(f, "model training failed: {e}"),
            CampaignError::Io(msg) => write!(f, "journal I/O failed: {msg}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CampaignError {
    fn from(e: ModelError) -> Self {
        CampaignError::Model(e)
    }
}

/// Executes a campaign one [`WorkUnit`] at a time, tracking completion so
/// an interrupted campaign resumes exactly where it stopped.
///
/// The runner itself is storage-agnostic: [`CampaignRunner::run_next`]
/// hands back the journal line for each completed unit and
/// [`CampaignRunner::resume`] rebuilds state from journal text. The
/// file-backed driver is [`run_journaled`].
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    spec: CampaignSpec,
    units: Vec<WorkUnit>,
    /// Journal key → index into `units` (BTreeMap keeps iteration and
    /// therefore behavior deterministic; workspace rule D004 bans
    /// HashMap in library code).
    index: BTreeMap<String, usize>,
    /// Completed unit index → simulated trace.
    completed: BTreeMap<usize, Vec<f64>>,
    train_design: Vec<DesignPoint>,
    test_design: Vec<DesignPoint>,
    /// Index of the next pending unit (units complete in order on a
    /// single runner; resume may leave arbitrary holes, which
    /// `next_pending` skips over).
    cursor: usize,
}

impl CampaignRunner {
    /// Starts a fresh campaign with every unit pending.
    pub fn new(spec: CampaignSpec) -> Self {
        let mut units = Vec::with_capacity(spec.unit_count());
        for &benchmark in &spec.benchmarks {
            for &metric in &spec.metrics {
                for (role, count) in [
                    (UnitRole::Train, spec.config.train_points),
                    (UnitRole::Test, spec.config.test_points),
                ] {
                    for point_index in 0..count {
                        units.push(WorkUnit {
                            benchmark,
                            metric,
                            role,
                            point_index,
                        });
                    }
                }
            }
        }
        let index = units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.key(), i))
            .collect();
        let train_design = spec.config.train_design();
        let test_design = spec.config.test_design();
        CampaignRunner {
            spec,
            units,
            index,
            completed: BTreeMap::new(),
            train_design,
            test_design,
            cursor: 0,
        }
    }

    /// Rebuilds a runner from journal text written by a previous
    /// (possibly killed) run.
    ///
    /// A trailing line without a terminating newline is treated as the
    /// partial write of a killed process and dropped; every
    /// newline-terminated line must parse cleanly.
    ///
    /// # Errors
    ///
    /// [`CampaignError::BadMagic`] / [`CampaignError::Malformed`] for a
    /// broken header, [`CampaignError::SpecMismatch`] if the journal was
    /// written under a different spec, and per-line errors for corrupt
    /// unit records (non-finite values, wrong trace length, unknown
    /// units).
    pub fn resume(spec: CampaignSpec, journal: &str) -> Result<Self, CampaignError> {
        let mut runner = CampaignRunner::new(spec);
        // Only newline-terminated lines are trustworthy: a kill mid-write
        // leaves a partial final line, which resume must ignore.
        let complete = match journal.rfind('\n') {
            Some(last) => &journal[..=last],
            None => "",
        };
        let mut lines = complete.lines().enumerate();
        let (_, magic) = lines.next().ok_or(CampaignError::Malformed {
            line: 1,
            expected: "magic header",
        })?;
        if magic != MAGIC {
            return Err(CampaignError::BadMagic);
        }
        let (_, fp_line) = lines.next().ok_or(CampaignError::Malformed {
            line: 2,
            expected: "fingerprint <hex>",
        })?;
        let found = fp_line
            .strip_prefix("fingerprint ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or(CampaignError::Malformed {
                line: 2,
                expected: "fingerprint <hex>",
            })?;
        let expected = runner.spec.fingerprint();
        if found != expected {
            return Err(CampaignError::SpecMismatch { expected, found });
        }
        for (i, l) in lines {
            let line = i + 1;
            if l.trim().is_empty() {
                continue;
            }
            let mut parts = l.split_whitespace();
            if parts.next() != Some("unit") {
                return Err(CampaignError::Malformed {
                    line,
                    expected: "unit <benchmark> <metric> <train|test> <index> <samples...>",
                });
            }
            let (bench, metric, role, idx) = match (
                parts.next().and_then(Benchmark::from_name),
                parts.next().and_then(Metric::parse),
                parts.next().and_then(UnitRole::parse),
                parts.next().and_then(|v| v.parse::<usize>().ok()),
            ) {
                (Some(b), Some(m), Some(r), Some(i)) => (b, m, r, i),
                _ => return Err(CampaignError::UnknownUnit { line }),
            };
            let key = WorkUnit {
                benchmark: bench,
                metric,
                role,
                point_index: idx,
            }
            .key();
            let unit_index = *runner
                .index
                .get(&key)
                .ok_or(CampaignError::UnknownUnit { line })?;
            let mut trace = Vec::with_capacity(runner.spec.config.samples);
            for p in parts {
                let v: f64 = p.parse().map_err(|_| CampaignError::Malformed {
                    line,
                    expected: "floating-point trace sample",
                })?;
                if !v.is_finite() {
                    return Err(CampaignError::NonFinite { line });
                }
                trace.push(v);
            }
            if trace.len() != runner.spec.config.samples {
                return Err(CampaignError::BadTraceLength {
                    line,
                    expected: runner.spec.config.samples,
                    got: trace.len(),
                });
            }
            runner.completed.insert(unit_index, trace);
        }
        if dynawave_obs::is_enabled() && !runner.completed.is_empty() {
            dynawave_obs::marker_with_detail(
                "campaign.resumed_from",
                &format!("{} completed unit(s)", runner.completed.len()),
            );
            dynawave_obs::counter_add("campaign.units_resumed", runner.completed.len() as u64);
        }
        Ok(runner)
    }

    /// The campaign spec this runner executes.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// All work units, in execution order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of completed units.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Number of still-pending units.
    pub fn remaining(&self) -> usize {
        self.units.len() - self.completed.len()
    }

    /// `true` when every unit has a trace.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.units.len()
    }

    fn next_pending(&self) -> Option<usize> {
        (self.cursor..self.units.len()).find(|i| !self.completed.contains_key(i))
    }

    fn design_point(&self, unit: &WorkUnit) -> &DesignPoint {
        match unit.role {
            UnitRole::Train => &self.train_design[unit.point_index],
            UnitRole::Test => &self.test_design[unit.point_index],
        }
    }

    /// Simulates the next pending unit and records its trace. Returns the
    /// unit and its newline-terminated journal line, or `None` when the
    /// campaign is complete. Append the line to durable storage *before*
    /// acting on the result to keep the journal ahead of the computation.
    pub fn run_next(&mut self) -> Option<(WorkUnit, String)> {
        let i = self.next_pending()?;
        self.cursor = i;
        let unit = self.units[i];
        let trace = trace_for(
            unit.benchmark,
            self.design_point(&unit),
            unit.metric,
            &self.spec.config.sim_options(),
        );
        let line = journal_line(&unit, &trace);
        self.completed.insert(i, trace);
        if dynawave_obs::is_enabled() {
            // Heartbeat per completed unit: a killed campaign's stream
            // shows exactly how far it got.
            dynawave_obs::marker_with_detail("campaign.heartbeat", &unit.key());
            dynawave_obs::counter_add("campaign.units_done", 1);
        }
        Some((unit, line))
    }

    /// The full journal text for the current state: header plus one line
    /// per completed unit, in execution order. Writing this to disk
    /// produces a journal that [`CampaignRunner::resume`] accepts and
    /// that is free of any partial tail.
    pub fn journal(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("fingerprint {:016x}\n", self.spec.fingerprint()));
        for (&i, trace) in &self.completed {
            out.push_str(&journal_line(&self.units[i], trace));
        }
        out
    }

    /// Trains, predicts and scores every `(benchmark, metric)` pair from
    /// the completed traces, using the spec's recovery policy (see
    /// [`ExperimentConfig::recovery`]).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Incomplete`] while units are pending;
    /// [`CampaignError::Model`] if training fails outright (possible only
    /// under a restrictive recovery policy).
    pub fn finish(&self) -> Result<Vec<BenchmarkEvaluation>, CampaignError> {
        let _span = dynawave_obs::span("campaign.finish");
        if !self.is_complete() {
            return Err(CampaignError::Incomplete {
                remaining: self.remaining(),
            });
        }
        let cfg = &self.spec.config;
        let mut evals = Vec::new();
        for &benchmark in &self.spec.benchmarks {
            for &metric in &self.spec.metrics {
                let gather = |role: UnitRole| -> Vec<Vec<f64>> {
                    self.units
                        .iter()
                        .enumerate()
                        .filter(|(_, u)| {
                            u.benchmark == benchmark && u.metric == metric && u.role == role
                        })
                        .filter_map(|(i, _)| self.completed.get(&i).cloned())
                        .collect()
                };
                let train = TraceSet {
                    benchmark,
                    metric,
                    points: self.train_design.clone(),
                    traces: gather(UnitRole::Train),
                };
                let (model, degradation) = match WaveletNeuralPredictor::train_resilient(
                    &train,
                    &cfg.predictor,
                    &cfg.recovery,
                ) {
                    Ok(trained) => trained,
                    Err(e) => {
                        dynawave_obs::counter_add("campaign.units_failed", 1);
                        return Err(e.into());
                    }
                };
                let test = TraceSet {
                    benchmark,
                    metric,
                    points: self.test_design.clone(),
                    traces: gather(UnitRole::Test),
                };
                let mut eval = score_model(benchmark, metric, model, test);
                eval.degradation = degradation;
                evals.push(eval);
            }
        }
        Ok(evals)
    }
}

/// Formats one completed unit as its journal line (newline-terminated).
/// Floats use Rust's shortest round-trip representation, which is what
/// makes a resumed campaign bit-identical to an uninterrupted one.
fn journal_line(unit: &WorkUnit, trace: &[f64]) -> String {
    let mut line = String::from("unit ");
    line.push_str(&unit.key());
    for v in trace {
        line.push(' ');
        line.push_str(&format!("{v}"));
    }
    line.push('\n');
    line
}

fn io_err(e: std::io::Error) -> CampaignError {
    CampaignError::Io(e.to_string())
}

/// Opens (or creates) the journal at `path` and runs at most `max_units`
/// pending units, appending each completed unit's line before moving on.
/// Returns the total number of completed units afterwards.
///
/// On resume the journal is first rewritten from the parsed state, which
/// drops the partial tail a kill may have left behind.
///
/// # Errors
///
/// Journal parse errors from [`CampaignRunner::resume`] and I/O failures
/// as [`CampaignError::Io`].
pub fn advance_journaled(
    spec: &CampaignSpec,
    path: &Path,
    max_units: usize,
) -> Result<usize, CampaignError> {
    let mut runner = load_runner(spec, path)?;
    let mut appended = String::new();
    for _ in 0..max_units {
        match runner.run_next() {
            Some((_, line)) => appended.push_str(&line),
            None => break,
        }
    }
    append(path, &appended)?;
    Ok(runner.completed_count())
}

/// Runs a campaign to completion against the journal at `path` — creating
/// it, resuming it, or simply finishing from it — and returns the scored
/// evaluations. Killed runs resume by calling this again with the same
/// spec and path; the final report is byte-identical either way.
///
/// # Errors
///
/// Journal parse errors, I/O failures, and model-training failures under
/// restrictive recovery policies.
pub fn run_journaled(
    spec: &CampaignSpec,
    path: &Path,
) -> Result<Vec<BenchmarkEvaluation>, CampaignError> {
    let _span = dynawave_obs::span("campaign.run");
    let mut runner = load_runner(spec, path)?;
    let mut pending_lines = String::new();
    while let Some((_, line)) = runner.run_next() {
        pending_lines.push_str(&line);
        // Flush in small batches so a kill loses little work; one unit per
        // write keeps the journal strictly ahead of anything expensive.
        append(path, &pending_lines)?;
        pending_lines.clear();
    }
    runner.finish()
}

/// Loads or initializes the journal-backed runner and rewrites the file
/// so it is partial-tail-free before any new work starts.
fn load_runner(spec: &CampaignSpec, path: &Path) -> Result<CampaignRunner, CampaignError> {
    let runner = match std::fs::read_to_string(path) {
        Ok(text) => CampaignRunner::resume(spec.clone(), &text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => CampaignRunner::new(spec.clone()),
        Err(e) => return Err(io_err(e)),
    };
    std::fs::write(path, runner.journal()).map_err(io_err)?;
    Ok(runner)
}

fn append(path: &Path, text: &str) -> Result<(), CampaignError> {
    if text.is_empty() {
        return Ok(());
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(io_err)?;
    f.write_all(text.as_bytes()).map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::single(
            Benchmark::Eon,
            Metric::Cpi,
            ExperimentConfig {
                train_points: 12,
                test_points: 4,
                samples: 16,
                interval_instructions: 400,
                seed: 21,
                ..ExperimentConfig::default()
            },
        )
    }

    #[test]
    fn fresh_campaign_enumerates_units_in_order() {
        let spec = tiny_spec();
        let runner = CampaignRunner::new(spec.clone());
        assert_eq!(runner.units().len(), 16);
        assert_eq!(runner.units().len(), spec.unit_count());
        assert_eq!(runner.units()[0].role, UnitRole::Train);
        assert_eq!(runner.units()[12].role, UnitRole::Test);
        assert_eq!(runner.units()[3].key(), "eon cpi train 3");
        assert_eq!(runner.remaining(), 16);
        assert!(!runner.is_complete());
    }

    #[test]
    fn run_to_completion_and_finish() {
        let mut runner = CampaignRunner::new(tiny_spec());
        let mut executed = 0;
        while runner.run_next().is_some() {
            executed += 1;
        }
        assert_eq!(executed, 16);
        assert!(runner.is_complete());
        let evals = runner.finish().unwrap();
        assert_eq!(evals.len(), 1);
        assert_eq!(evals[0].nmse_per_test.len(), 4);
        assert!(evals[0].degradation.is_pristine());
    }

    #[test]
    fn finish_before_completion_is_rejected() {
        let mut runner = CampaignRunner::new(tiny_spec());
        runner.run_next();
        assert!(matches!(
            runner.finish(),
            Err(CampaignError::Incomplete { remaining: 15 })
        ));
    }

    #[test]
    fn journal_roundtrip_restores_progress() {
        let spec = tiny_spec();
        let mut runner = CampaignRunner::new(spec.clone());
        for _ in 0..5 {
            runner.run_next();
        }
        let restored = CampaignRunner::resume(spec, &runner.journal()).unwrap();
        assert_eq!(restored.completed_count(), 5);
        assert_eq!(restored.remaining(), 11);
    }

    #[test]
    fn resume_drops_partial_tail_but_rejects_corrupt_complete_lines() {
        let spec = tiny_spec();
        let mut runner = CampaignRunner::new(spec.clone());
        for _ in 0..3 {
            runner.run_next();
        }
        let journal = runner.journal();
        // A kill mid-write: the last line loses its tail (and newline).
        let cut = journal.len() - 10;
        let killed = &journal[..cut];
        let restored = CampaignRunner::resume(spec.clone(), killed).unwrap();
        assert_eq!(restored.completed_count(), 2);
        // But a *complete* line with garbage is corruption, not a kill.
        let corrupt = journal.replacen("unit eon", "unit zzz", 1);
        assert!(matches!(
            CampaignRunner::resume(spec, &corrupt),
            Err(CampaignError::UnknownUnit { .. })
        ));
    }

    #[test]
    fn resume_rejects_non_finite_and_short_traces() {
        let spec = tiny_spec();
        let mut runner = CampaignRunner::new(spec.clone());
        runner.run_next();
        let journal = runner.journal();
        let header_len = journal.find("unit").unwrap();
        let (header, unit_line) = journal.split_at(header_len);
        // Replace the first sample with NaN.
        let mut parts: Vec<&str> = unit_line.trim_end().split(' ').collect();
        parts[6] = "NaN";
        let poisoned = format!("{header}{}\n", parts.join(" "));
        assert!(matches!(
            CampaignRunner::resume(spec.clone(), &poisoned),
            Err(CampaignError::NonFinite { .. })
        ));
        // Drop one sample: complete line, wrong length.
        parts.remove(6);
        let short = format!("{header}{}\n", parts.join(" "));
        assert!(matches!(
            CampaignRunner::resume(spec, &short),
            Err(CampaignError::BadTraceLength {
                expected: 16,
                got: 15,
                ..
            })
        ));
    }

    #[test]
    fn resume_rejects_other_specs_and_garbage() {
        let spec = tiny_spec();
        let runner = CampaignRunner::new(spec.clone());
        let other = CampaignSpec::single(
            Benchmark::Mcf,
            Metric::Power,
            ExperimentConfig {
                seed: 999,
                ..spec.config.clone()
            },
        );
        assert!(matches!(
            CampaignRunner::resume(other, &runner.journal()),
            Err(CampaignError::SpecMismatch { .. })
        ));
        assert!(matches!(
            CampaignRunner::resume(spec.clone(), "hello\nworld\n"),
            Err(CampaignError::BadMagic)
        ));
        assert!(CampaignRunner::resume(spec, "").is_err());
    }

    #[test]
    fn killed_and_resumed_campaign_report_is_byte_identical() {
        let spec = tiny_spec();
        // Uninterrupted reference run.
        let mut reference = CampaignRunner::new(spec.clone());
        while reference.run_next().is_some() {}
        let ref_report = report::full_report("campaign", &reference.finish().unwrap());
        // Killed after 7 units, mid-line, then resumed from the journal.
        let mut first = CampaignRunner::new(spec.clone());
        for _ in 0..7 {
            first.run_next();
        }
        let journal = first.journal();
        let killed = &journal[..journal.len() - 3];
        let mut resumed = CampaignRunner::resume(spec, killed).unwrap();
        assert_eq!(resumed.completed_count(), 6);
        while resumed.run_next().is_some() {}
        let resumed_report = report::full_report("campaign", &resumed.finish().unwrap());
        assert_eq!(ref_report, resumed_report);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_knob() {
        let spec = tiny_spec();
        let base = spec.fingerprint();
        assert_eq!(base, tiny_spec().fingerprint());
        let mut other = spec.clone();
        other.config.seed ^= 1;
        assert_ne!(base, other.fingerprint());
        let mut other = spec.clone();
        other.benchmarks.push(Benchmark::Gcc);
        assert_ne!(base, other.fingerprint());
        let mut other = spec;
        other.config.recovery.ridge_escalations += 1;
        assert_ne!(base, other.fingerprint());
    }
}
