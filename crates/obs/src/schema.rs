//! Canonical schema vocabulary for every dynawave byte stream.
//!
//! The workspace speaks three kinds of line-oriented text: the obs event
//! stream (`{"schema":"dynawave-obs",...}`), bench JSON lines (same
//! schema, `kind:"bench"`, versioned units) and the campaign journal
//! (`dynawave-campaign v1` magic). Emitters and parsers used to repeat
//! these strings as scattered literals — a typo in one producer silently
//! diverged the fleet. This module is the single source of truth;
//! dynalint rule D013 cross-checks every string literal in the workspace
//! against it, so drift is a lint failure, not a runtime mystery.

pub use crate::event::{BENCH_SCHEMA_VERSION, BENCH_UNIT_NS, SCHEMA_NAME, SCHEMA_VERSION};

/// Magic tag on the first line of every campaign journal (main journal
/// and per-shard sidecars alike). The version suffix is part of the
/// fingerprint: bumping it invalidates resume against old journals.
pub const CAMPAIGN_JOURNAL: &str = "dynawave-campaign v1";

/// Magic tag on the first line of every persisted predictor model.
pub const MODEL_MAGIC: &str = "dynawave-model v1";

/// Schema tag carried by every request and response line of the DSE
/// prediction daemon (`dynawave-core`'s `serve` module).
pub const SERVE_SCHEMA: &str = "dynawave-serve";

/// Current version of the serve request/response line schema (the `v`
/// field next to [`SERVE_SCHEMA`]).
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// Magic tag on the first line of every serve response journal. Like the
/// campaign journal, the version suffix is part of the crash-safety
/// contract: bumping it invalidates replay against old journals.
pub const SERVE_JOURNAL: &str = "dynawave-serve v1";

/// Every canonical `dynawave-*` schema tag. A string literal that looks
/// like a schema tag (`dynawave-<word>`, optionally ` v<digits>`) but is
/// not in this list is a D013 finding.
pub const SCHEMA_TAGS: [&str; 5] = [
    SCHEMA_NAME,
    CAMPAIGN_JOURNAL,
    MODEL_MAGIC,
    SERVE_SCHEMA,
    SERVE_JOURNAL,
];

/// Every request `kind` the serve protocol accepts. `stats` is the
/// side-effect-free introspection kind: it consumes no work ticks and
/// answers with a versioned counter/histogram snapshot.
pub const SERVE_REQUEST_KINDS: [&str; 5] = ["predict", "pareto", "topk", "sweep", "stats"];

/// Every response `kind` the serve protocol emits. D013 checks `"kind"`
/// values embedded in `dynawave-serve` JSON templates against the union
/// of this list and [`SERVE_REQUEST_KINDS`]. A `stats` request is
/// answered with a `stats` response (it cannot be `partial`).
pub const SERVE_RESPONSE_KINDS: [&str; 5] = ["ok", "partial", "error", "overloaded", "stats"];

/// True when `kind` is a canonical serve request or response kind.
pub fn is_serve_kind(kind: &str) -> bool {
    SERVE_REQUEST_KINDS.contains(&kind) || SERVE_RESPONSE_KINDS.contains(&kind)
}

/// Version of the `stats` snapshot object embedded in a `stats`
/// response (its `stats_v` field). Bump when snapshot fields change.
pub const SERVE_STATS_VERSION: u64 = 1;

/// Every obs instrument name (span, counter, gauge, histogram or marker)
/// the serve layer may emit. D013 checks any `serve.`-prefixed literal
/// passed to an obs emitter against this list, so an instrument rename
/// that skips this vocabulary is a lint failure.
pub const SERVE_METRICS: [&str; 31] = [
    // Request-scoped spans, in pipeline order.
    "serve.request",
    "serve.parse",
    "serve.admission",
    "serve.model_resolve",
    "serve.model_acquire",
    "serve.solve",
    "serve.journal_append",
    "serve.replay",
    // Outcome counters.
    "serve.responses.ok",
    "serve.responses.partial",
    "serve.responses.error",
    "serve.responses.overloaded",
    "serve.responses.stats",
    "serve.responses.deadline_exceeded",
    "serve.responses.degraded",
    "serve.models.loaded",
    "serve.models.trained",
    "serve.models.failed",
    "serve.journal.broken",
    "serve.replay.responses",
    // Gauges.
    "serve.load",
    // Markers.
    "serve.request_id",
    "serve.model_load_failed",
    "serve.journal_disabled",
    "serve.degraded",
    "serve.overloaded",
    "serve.flight_recorder",
    // Per-kind tick-latency histograms (see [`serve_latency_histogram`]).
    "serve.latency.predict",
    "serve.latency.pareto",
    "serve.latency.topk",
    "serve.latency.sweep",
];

/// True when `name` is a canonical serve instrument name.
pub fn is_serve_metric(name: &str) -> bool {
    SERVE_METRICS.contains(&name)
}

/// Obs histogram name for the tick latency of a serve request `kind`,
/// or `None` for kinds without a latency histogram (`stats` is
/// side-effect free and always zero-tick, so it has none). Returning
/// `'static` literals keeps every emitted name inside [`SERVE_METRICS`]
/// and therefore D013-checkable.
pub fn serve_latency_histogram(kind: &str) -> Option<&'static str> {
    match kind {
        "predict" => Some("serve.latency.predict"),
        "pareto" => Some("serve.latency.pareto"),
        "topk" => Some("serve.latency.topk"),
        "sweep" => Some("serve.latency.sweep"),
        _ => None,
    }
}

/// Bucket upper bounds (in ticks) for serve latency histograms — both
/// the obs-side [`serve_latency_histogram`] instruments and the
/// engine-internal histograms snapshotted by the `stats` kind use the
/// same bounds, so the two views are directly comparable. Powers of four
/// from 1 tick to 64Ki ticks; anything above lands in the implicit
/// overflow bucket.
pub const SERVE_LATENCY_BOUNDS: [u64; 9] = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536];

/// Unit for derived dimensionless ratios, scaled by 1000 to stay
/// integral-friendly (bench schema v2).
pub const BENCH_UNIT_RATIO_X1000: &str = "ratio_x1000";

/// Unit for plain counts (bench schema v2).
pub const BENCH_UNIT_COUNT: &str = "count";

/// Every canonical bench `unit` value. v1 lines carry no unit and are
/// implicitly [`BENCH_UNIT_NS`].
pub const BENCH_UNITS: [&str; 3] = [BENCH_UNIT_NS, BENCH_UNIT_RATIO_X1000, BENCH_UNIT_COUNT];

/// Canonical pipeline stages: the segment before the first `.` in every
/// instrument name (`sim.run_trace`, `campaign.heartbeat`, ...). The obs
/// analyzer groups by these; `obs_validate --require-stages` and D013
/// both key off the same list.
pub const STAGES: [&str; 9] = [
    "sim",
    "wavelet",
    "neural",
    "predictor",
    "experiment",
    "campaign",
    "bench",
    "lint",
    "serve",
];

/// True when `name` starts with a canonical stage prefix followed by a
/// `.` separator (instrument names are always `stage.rest`).
pub fn has_canonical_stage(name: &str) -> bool {
    match name.split_once('.') {
        Some((stage, rest)) => !rest.is_empty() && STAGES.contains(&stage),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_include_event_schema() {
        assert!(SCHEMA_TAGS.contains(&SCHEMA_NAME));
        assert!(SCHEMA_TAGS.contains(&CAMPAIGN_JOURNAL));
        assert!(SCHEMA_TAGS.contains(&SERVE_SCHEMA));
        assert!(SCHEMA_TAGS.contains(&SERVE_JOURNAL));
    }

    #[test]
    fn serve_kinds_are_canonical() {
        for k in SERVE_REQUEST_KINDS.iter().chain(&SERVE_RESPONSE_KINDS) {
            assert!(is_serve_kind(k), "{k}");
        }
        assert!(!is_serve_kind("okk"));
        assert!(STAGES.contains(&"serve"));
        assert!(has_canonical_stage("serve.request"));
    }

    #[test]
    fn serve_metrics_are_stage_prefixed_and_sorted_sections() {
        for name in SERVE_METRICS {
            assert!(has_canonical_stage(name), "{name}");
            assert!(is_serve_metric(name), "{name}");
        }
        assert!(!is_serve_metric("serve.latency.stats"));
        for kind in ["predict", "pareto", "topk", "sweep"] {
            let hist = serve_latency_histogram(kind).unwrap();
            assert!(is_serve_metric(hist), "{hist}");
        }
        assert!(serve_latency_histogram("stats").is_none());
        assert!(serve_latency_histogram("ok").is_none());
        assert!(SERVE_LATENCY_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn units_include_ns() {
        assert!(BENCH_UNITS.contains(&BENCH_UNIT_NS));
    }

    #[test]
    fn stage_prefix_check() {
        assert!(has_canonical_stage("sim.run_trace"));
        assert!(has_canonical_stage("campaign.heartbeat"));
        assert!(!has_canonical_stage("simulator.run"));
        assert!(!has_canonical_stage("sim."));
        assert!(!has_canonical_stage("nodot"));
    }
}
