//! Canonical schema vocabulary for every dynawave byte stream.
//!
//! The workspace speaks three kinds of line-oriented text: the obs event
//! stream (`{"schema":"dynawave-obs",...}`), bench JSON lines (same
//! schema, `kind:"bench"`, versioned units) and the campaign journal
//! (`dynawave-campaign v1` magic). Emitters and parsers used to repeat
//! these strings as scattered literals — a typo in one producer silently
//! diverged the fleet. This module is the single source of truth;
//! dynalint rule D013 cross-checks every string literal in the workspace
//! against it, so drift is a lint failure, not a runtime mystery.

pub use crate::event::{BENCH_SCHEMA_VERSION, BENCH_UNIT_NS, SCHEMA_NAME, SCHEMA_VERSION};

/// Magic tag on the first line of every campaign journal (main journal
/// and per-shard sidecars alike). The version suffix is part of the
/// fingerprint: bumping it invalidates resume against old journals.
pub const CAMPAIGN_JOURNAL: &str = "dynawave-campaign v1";

/// Magic tag on the first line of every persisted predictor model.
pub const MODEL_MAGIC: &str = "dynawave-model v1";

/// Schema tag carried by every request and response line of the DSE
/// prediction daemon (`dynawave-core`'s `serve` module).
pub const SERVE_SCHEMA: &str = "dynawave-serve";

/// Current version of the serve request/response line schema (the `v`
/// field next to [`SERVE_SCHEMA`]).
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// Magic tag on the first line of every serve response journal. Like the
/// campaign journal, the version suffix is part of the crash-safety
/// contract: bumping it invalidates replay against old journals.
pub const SERVE_JOURNAL: &str = "dynawave-serve v1";

/// Every canonical `dynawave-*` schema tag. A string literal that looks
/// like a schema tag (`dynawave-<word>`, optionally ` v<digits>`) but is
/// not in this list is a D013 finding.
pub const SCHEMA_TAGS: [&str; 5] = [
    SCHEMA_NAME,
    CAMPAIGN_JOURNAL,
    MODEL_MAGIC,
    SERVE_SCHEMA,
    SERVE_JOURNAL,
];

/// Every request `kind` the serve protocol accepts.
pub const SERVE_REQUEST_KINDS: [&str; 4] = ["predict", "pareto", "topk", "sweep"];

/// Every response `kind` the serve protocol emits. D013 checks `"kind"`
/// values embedded in `dynawave-serve` JSON templates against the union
/// of this list and [`SERVE_REQUEST_KINDS`].
pub const SERVE_RESPONSE_KINDS: [&str; 4] = ["ok", "partial", "error", "overloaded"];

/// True when `kind` is a canonical serve request or response kind.
pub fn is_serve_kind(kind: &str) -> bool {
    SERVE_REQUEST_KINDS.contains(&kind) || SERVE_RESPONSE_KINDS.contains(&kind)
}

/// Unit for derived dimensionless ratios, scaled by 1000 to stay
/// integral-friendly (bench schema v2).
pub const BENCH_UNIT_RATIO_X1000: &str = "ratio_x1000";

/// Unit for plain counts (bench schema v2).
pub const BENCH_UNIT_COUNT: &str = "count";

/// Every canonical bench `unit` value. v1 lines carry no unit and are
/// implicitly [`BENCH_UNIT_NS`].
pub const BENCH_UNITS: [&str; 3] = [BENCH_UNIT_NS, BENCH_UNIT_RATIO_X1000, BENCH_UNIT_COUNT];

/// Canonical pipeline stages: the segment before the first `.` in every
/// instrument name (`sim.run_trace`, `campaign.heartbeat`, ...). The obs
/// analyzer groups by these; `obs_validate --require-stages` and D013
/// both key off the same list.
pub const STAGES: [&str; 9] = [
    "sim",
    "wavelet",
    "neural",
    "predictor",
    "experiment",
    "campaign",
    "bench",
    "lint",
    "serve",
];

/// True when `name` starts with a canonical stage prefix followed by a
/// `.` separator (instrument names are always `stage.rest`).
pub fn has_canonical_stage(name: &str) -> bool {
    match name.split_once('.') {
        Some((stage, rest)) => !rest.is_empty() && STAGES.contains(&stage),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_include_event_schema() {
        assert!(SCHEMA_TAGS.contains(&SCHEMA_NAME));
        assert!(SCHEMA_TAGS.contains(&CAMPAIGN_JOURNAL));
        assert!(SCHEMA_TAGS.contains(&SERVE_SCHEMA));
        assert!(SCHEMA_TAGS.contains(&SERVE_JOURNAL));
    }

    #[test]
    fn serve_kinds_are_canonical() {
        for k in SERVE_REQUEST_KINDS.iter().chain(&SERVE_RESPONSE_KINDS) {
            assert!(is_serve_kind(k), "{k}");
        }
        assert!(!is_serve_kind("okk"));
        assert!(STAGES.contains(&"serve"));
        assert!(has_canonical_stage("serve.request"));
    }

    #[test]
    fn units_include_ns() {
        assert!(BENCH_UNITS.contains(&BENCH_UNIT_NS));
    }

    #[test]
    fn stage_prefix_check() {
        assert!(has_canonical_stage("sim.run_trace"));
        assert!(has_canonical_stage("campaign.heartbeat"));
        assert!(!has_canonical_stage("simulator.run"));
        assert!(!has_canonical_stage("sim."));
        assert!(!has_canonical_stage("nodot"));
    }
}
