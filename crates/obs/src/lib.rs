//! Deterministic tracing, metrics, and profiling for the dynawave pipeline.
//!
//! The pipeline (trace generation → interval simulation → DWT →
//! per-coefficient RBF training → reconstruction → campaign aggregation)
//! is instrumented with spans, counters, gauges, and histograms. All of
//! it flows through a thread-local [`Recorder`] that is *off by default*:
//! when no recorder is installed, every instrumentation call is a cheap
//! early-return, so library behaviour and report bytes are unchanged.
//!
//! Determinism is the design center. The default time source is
//! [`TickClock`] — a monotonic counter, not wall time — so two identical
//! seeded runs emit byte-identical event streams (see
//! `tests/determinism.rs` at the workspace root). Wall-clock timing lives
//! on the other side of the harness boundary, in `dynawave-bench`.
//!
//! ```
//! use dynawave_obs as obs;
//!
//! obs::install(obs::Recorder::with_tick_clock());
//! {
//!     let _span = obs::span("sim.run_trace");
//!     obs::counter_add("sim.intervals_retired", 128);
//! }
//! let events = obs::drain().unwrap();
//! let text = obs::encode_lines(&events);
//! assert!(obs::validate_stream(&text).is_clean());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod clock;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod schema;
pub mod validate;

pub use analyze::{
    parse_events, BenchComparison, BenchDelta, BenchRecord, BenchSnapshot, CompareOptions,
    DeltaFlag, SloOutcome, SloSpec, SpanStats, StreamAnalysis, UnitLatency, HEARTBEAT_MARKER,
    SERVE_DEGRADED_MARKER, SERVE_OVERLOADED_MARKER,
};
pub use clock::{Clock, TickClock};
pub use event::{
    encode_lines, Event, EventKind, BENCH_SCHEMA_VERSION, BENCH_UNIT_NS, SCHEMA_NAME,
    SCHEMA_VERSION,
};
pub use metrics::{Histogram, MetricSet};
pub use profile::{PipelineProfile, StageProfile};
pub use validate::{validate_stream, SchemaValidator, ValidationSummary};

use std::cell::RefCell;
use std::collections::BTreeMap;

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Collects events and metrics for one traced run.
///
/// A recorder does nothing until [`install`]ed into the thread-local
/// slot; instrumented code then feeds it through the free functions
/// ([`span`], [`counter_add`], ...). [`drain`] (or [`take`] +
/// [`Recorder::finish`]) returns the ordered event stream, with final
/// metric snapshots appended in sorted name order.
pub struct Recorder {
    clock: Box<dyn Clock>,
    events: Vec<Event>,
    metrics: MetricSet,
    seq: u64,
    depth: u64,
    /// Last emission tick per marker name, for [`Recorder::marker_latency`]
    /// deltas. Deliberately *not* carried through [`Recorder::absorb_workers`]:
    /// latencies are a per-worker-stream notion.
    marker_ticks: BTreeMap<String, u64>,
    /// Flight-recorder capacity: when set, only the last `n` events are
    /// retained (oldest overwritten in place). Metrics still accumulate
    /// normally — their memory is bounded by instrument-name count, not
    /// event count.
    ring: Option<usize>,
    /// Index of the chronologically oldest event while the ring is full.
    ring_start: usize,
    /// Events overwritten by ring wrap-around since installation.
    dropped: u64,
}

impl Recorder {
    /// A recorder on the deterministic [`TickClock`] — the right choice
    /// everywhere except wall-time benchmarking.
    pub fn with_tick_clock() -> Self {
        Recorder::with_clock(Box::new(TickClock::new()))
    }

    /// A recorder on a caller-supplied clock (e.g. the bench harness's
    /// wall clock).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Recorder {
            clock,
            events: Vec::new(),
            metrics: MetricSet::new(),
            seq: 0,
            depth: 0,
            marker_ticks: BTreeMap::new(),
            ring: None,
            ring_start: 0,
            dropped: 0,
        }
    }

    /// A flight recorder: a tick-clock recorder that retains only the
    /// last `capacity` events, overwriting the oldest in place. Dumping
    /// it ([`Recorder::finish`] / [`drain`]) yields the surviving window
    /// in chronological order with its *original* `seq`/`tick` numbers —
    /// still a valid obs stream (`seq` strictly increasing, `tick`
    /// non-decreasing), just one that starts mid-flight. Metric
    /// snapshots are appended as usual and are never evicted.
    pub fn flight_recorder(capacity: usize) -> Self {
        let mut rec = Recorder::with_tick_clock();
        rec.ring = Some(capacity.max(1));
        rec
    }

    /// Events lost to ring wrap-around so far (always 0 outside
    /// flight-recorder mode).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Restores chronological event order after ring wrap-around and
    /// leaves ring mode, so subsequent pushes (metric snapshots, a final
    /// dump marker) append normally.
    fn unwrap_ring(&mut self) {
        if self.ring.take().is_some() {
            self.events.rotate_left(self.ring_start);
            self.ring_start = 0;
        }
    }

    /// Emits a marker with `detail` and records the tick delta since the
    /// previous marker of the same `name` (or since tick 0 for the first)
    /// into the fixed-bound histogram `hist`.
    ///
    /// This is how campaign executors publish per-unit latency: the delta
    /// between consecutive heartbeats counts the recorder activity one
    /// work unit generated, which on the deterministic [`TickClock`] is
    /// identical for every worker split of the same unit set.
    pub fn marker_latency(&mut self, name: &str, detail: &str, hist: &str, bounds: &[f64]) {
        let e = self.push(EventKind::Marker, name);
        e.detail = Some(detail.to_string());
        let tick = e.tick;
        let last = self
            .marker_ticks
            .insert(name.to_string(), tick)
            .unwrap_or(0);
        self.metrics
            .histogram_observe(hist, bounds, tick.saturating_sub(last) as f64);
    }

    fn push(&mut self, kind: EventKind, name: &str) -> &mut Event {
        let tick = self.clock.now();
        let seq = self.seq;
        self.seq += 1;
        let event = Event::new(seq, tick, kind, name);
        match self.ring {
            Some(capacity) if self.events.len() >= capacity => {
                // Ring full: overwrite the oldest slot in place.
                let idx = self.ring_start;
                self.ring_start = (self.ring_start + 1) % capacity;
                self.dropped += 1;
                self.events[idx] = event;
                &mut self.events[idx]
            }
            _ => {
                self.events.push(event);
                // Just pushed, so the vector is non-empty.
                let idx = self.events.len() - 1;
                &mut self.events[idx]
            }
        }
    }

    fn span_enter(&mut self, name: &str) -> (u64, u64) {
        let depth = self.depth;
        self.depth += 1;
        let e = self.push(EventKind::SpanEnter, name);
        e.depth = Some(depth);
        (depth, e.tick)
    }

    fn span_exit(&mut self, name: &str, depth: u64, enter_tick: u64) {
        self.depth = self.depth.saturating_sub(1);
        let e = self.push(EventKind::SpanExit, name);
        e.depth = Some(depth);
        let exit_tick = e.tick;
        e.ticks = Some(exit_tick.saturating_sub(enter_tick));
    }

    /// Number of events recorded so far (metric snapshots not included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.metrics.is_empty()
    }

    /// Merges worker recorders into this one, deterministically.
    ///
    /// Parallel executors give every worker thread its own recorder; this
    /// is the merge sink. Each worker's event stream is split into
    /// *segments*: runs of events ending at a `boundary` marker (one per
    /// completed work unit, the marker's `detail` naming the unit). All
    /// segments are then stably sorted by `(order(detail), worker index)`
    /// and appended here with fresh `seq`/`tick` numbering, so the merged
    /// stream is byte-identical for any worker count as long as the
    /// segment set is — the canonical unit order, not the racy thread
    /// schedule, decides placement. Events after a worker's last boundary
    /// marker (an aborted unit's partial span, say) sort after every
    /// complete segment, in worker order.
    ///
    /// Renumbering keeps the schema validator green: `seq` stays strictly
    /// increasing and `tick` non-decreasing (each appended event takes the
    /// next tick from this recorder's clock). Span enter/exit pairs must
    /// not cross a boundary marker, otherwise their `ticks` deltas are
    /// recomputed from the merged clock. Worker metrics fold in through
    /// [`MetricSet::merge`] — counters sum, histograms with identical
    /// bounds sum, gauges take the value from the highest-ordered segment
    /// owner's set (sets merge in worker order).
    pub fn absorb_workers<F>(&mut self, workers: Vec<Recorder>, boundary: &str, order: F)
    where
        F: Fn(&str) -> u64,
    {
        let mut segments: Vec<(u64, usize, Vec<Event>)> = Vec::new();
        for (worker, recorder) in workers.into_iter().enumerate() {
            let Recorder {
                events, metrics, ..
            } = recorder;
            self.metrics.merge(&metrics);
            let mut current: Vec<Event> = Vec::new();
            for event in events {
                let boundary_key = if event.kind == EventKind::Marker && event.name == boundary {
                    event.detail.as_deref().map(&order)
                } else {
                    None
                };
                current.push(event);
                if let Some(key) = boundary_key {
                    segments.push((key, worker, std::mem::take(&mut current)));
                }
            }
            if !current.is_empty() {
                segments.push((u64::MAX, worker, current));
            }
        }
        segments.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        for (_, _, segment) in segments {
            let mut enter_ticks: Vec<u64> = Vec::new();
            for mut event in segment {
                event.seq = self.seq;
                self.seq += 1;
                event.tick = self.clock.now();
                match event.kind {
                    EventKind::SpanEnter => enter_ticks.push(event.tick),
                    EventKind::SpanExit => {
                        // Recompute the delta on the merged clock so exit
                        // ticks stay consistent with their (renumbered)
                        // enters. Unmatched exits keep the worker's delta.
                        if let Some(enter) = enter_ticks.pop() {
                            event.ticks = Some(event.tick.saturating_sub(enter));
                        }
                    }
                    _ => {}
                }
                self.events.push(event);
            }
        }
    }

    /// Consumes the recorder, appending one snapshot event per metric
    /// (counters, then gauges, then histograms, each in sorted name
    /// order) and returning the full ordered stream.
    pub fn finish(mut self) -> Vec<Event> {
        self.unwrap_ring();
        let metrics = std::mem::take(&mut self.metrics);
        for (name, count) in metrics.counters() {
            let name = name.to_string();
            let e = self.push(EventKind::Counter, &name);
            e.count = Some(count);
        }
        for (name, value) in metrics.gauges() {
            let name = name.to_string();
            let e = self.push(EventKind::Gauge, &name);
            e.value = Some(value);
        }
        for (name, hist) in metrics.histograms() {
            let name = name.to_string();
            let bounds = hist.bounds().to_vec();
            let counts = hist.counts().to_vec();
            let e = self.push(EventKind::Histogram, &name);
            e.bounds = Some(bounds);
            e.counts = Some(counts);
        }
        self.events
    }
}

/// Installs `recorder` as the thread's active recorder, returning the
/// previous one (if any) so callers can restore it.
pub fn install(recorder: Recorder) -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().replace(recorder))
}

/// Removes and returns the thread's active recorder without flushing
/// metric snapshots. Most callers want [`drain`] instead.
pub fn take() -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().take())
}

/// Removes the active recorder and returns its finished event stream
/// (metric snapshots appended). `None` when no recorder was installed.
pub fn drain() -> Option<Vec<Event>> {
    take().map(Recorder::finish)
}

/// True when a recorder is installed on this thread.
pub fn is_enabled() -> bool {
    RECORDER.with(|slot| slot.borrow().is_some())
}

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    RECORDER.with(|slot| {
        // borrow_mut cannot re-enter: instrumentation helpers never call
        // user code while holding the borrow.
        if let Some(rec) = slot.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// An RAII span: records a `span_enter` on creation and the matching
/// `span_exit` (with tick delta) when dropped. A no-op when tracing is
/// disabled.
#[must_use = "a span guard records its exit when dropped"]
pub struct SpanGuard {
    name: &'static str,
    state: Option<(u64, u64)>,
}

impl SpanGuard {
    fn disabled() -> Self {
        SpanGuard {
            name: "",
            state: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((depth, enter_tick)) = self.state.take() {
            with_recorder(|rec| rec.span_exit(self.name, depth, enter_tick));
        }
    }
}

/// Opens a span named `name` (dotted `stage.detail` form). Hold the
/// returned guard for the duration of the work.
pub fn span(name: &'static str) -> SpanGuard {
    let mut guard = SpanGuard::disabled();
    with_recorder(|rec| {
        guard.name = name;
        guard.state = Some(rec.span_enter(name));
    });
    guard
}

/// Adds `delta` to the named counter.
pub fn counter_add(name: &str, delta: u64) {
    with_recorder(|rec| rec.metrics.counter_add(name, delta));
}

/// Sets the named gauge (non-finite values are dropped).
pub fn gauge_set(name: &str, value: f64) {
    with_recorder(|rec| rec.metrics.gauge_set(name, value));
}

/// Records `value` into the named fixed-bound histogram.
pub fn histogram_observe(name: &str, bounds: &[f64], value: f64) {
    with_recorder(|rec| rec.metrics.histogram_observe(name, bounds, value));
}

/// Emits a point event.
pub fn marker(name: &str) {
    with_recorder(|rec| {
        rec.push(EventKind::Marker, name);
    });
}

/// Emits a point event with free-form detail text.
pub fn marker_with_detail(name: &str, detail: &str) {
    with_recorder(|rec| {
        let e = rec.push(EventKind::Marker, name);
        e.detail = Some(detail.to_string());
    });
}

/// Emits a marker with detail and records the tick delta since the
/// previous same-named marker into the `hist` histogram. See
/// [`Recorder::marker_latency`].
pub fn marker_latency(name: &str, detail: &str, hist: &str, bounds: &[f64]) {
    with_recorder(|rec| rec.marker_latency(name, detail, hist, bounds));
}

/// Merges worker recorders into this thread's active recorder via
/// [`Recorder::absorb_workers`]. A no-op (the workers are dropped) when no
/// recorder is installed — matching every other free function here.
pub fn absorb_workers<F>(workers: Vec<Recorder>, boundary: &str, order: F)
where
    F: Fn(&str) -> u64,
{
    with_recorder(|rec| rec.absorb_workers(workers, boundary, order));
}

/// Opens a span scoped to the rest of the enclosing block:
/// `span!("sim.run_trace");` is shorthand for binding [`span`]'s guard
/// to a local.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _dynawave_obs_span_guard = $crate::span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the thread-local recorder slot.
    /// `cargo test` may run them on the same thread pool, so each test
    /// must leave the slot empty.
    fn with_clean_slot(f: impl FnOnce()) {
        let prior = take();
        f();
        let _ = take();
        if let Some(prior) = prior {
            install(prior);
        }
    }

    #[test]
    fn disabled_instrumentation_is_a_no_op() {
        with_clean_slot(|| {
            assert!(!is_enabled());
            {
                let _g = span("sim.run_trace");
                counter_add("sim.intervals_retired", 1);
                gauge_set("wavelet.energy", 0.5);
                marker("campaign.heartbeat");
            }
            assert!(drain().is_none());
        });
    }

    #[test]
    fn spans_nest_and_measure_tick_deltas() {
        with_clean_slot(|| {
            install(Recorder::with_tick_clock());
            {
                let _outer = span("predictor.train");
                let _inner = span("wavelet.wavedec");
            }
            let events = drain().unwrap();
            assert_eq!(events.len(), 4);
            assert_eq!(events[0].kind, EventKind::SpanEnter);
            assert_eq!(events[0].depth, Some(0));
            assert_eq!(events[1].depth, Some(1));
            // Inner span exits first (reverse drop order).
            assert_eq!(events[2].name, "wavelet.wavedec");
            assert_eq!(events[2].ticks, Some(1));
            assert_eq!(events[3].name, "predictor.train");
            assert_eq!(events[3].ticks, Some(3));
            let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn metrics_flush_as_sorted_snapshots() {
        with_clean_slot(|| {
            install(Recorder::with_tick_clock());
            counter_add("b.two", 2);
            counter_add("a.one", 1);
            gauge_set("g.x", 1.25);
            histogram_observe("h.y", &[10.0], 3.0);
            let events = drain().unwrap();
            let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
            assert_eq!(names, vec!["a.one", "b.two", "g.x", "h.y"]);
            assert_eq!(events[3].counts, Some(vec![1, 0]));
        });
    }

    #[test]
    fn two_identical_runs_encode_identically() {
        with_clean_slot(|| {
            let run = || {
                install(Recorder::with_tick_clock());
                {
                    let _g = span("sim.run_trace");
                    counter_add("sim.intervals_retired", 64);
                    marker_with_detail("campaign.resumed_from", "unit 3");
                }
                encode_lines(&drain().unwrap())
            };
            let a = run();
            let b = run();
            assert_eq!(a, b);
            assert!(validate_stream(&a).is_clean());
        });
    }

    #[test]
    fn span_macro_scopes_to_block_end() {
        with_clean_slot(|| {
            install(Recorder::with_tick_clock());
            {
                span!("neural.rbf_fit");
                marker("neural.mid");
            }
            let events = drain().unwrap();
            assert_eq!(events[0].kind, EventKind::SpanEnter);
            assert_eq!(events[1].name, "neural.mid");
            assert_eq!(events[2].kind, EventKind::SpanExit, "exit after marker");
        });
    }

    #[test]
    fn absorb_workers_orders_segments_canonically_and_renumbers() {
        with_clean_slot(|| {
            // Two workers complete interleaved units; the merge must land
            // them in canonical unit order regardless of which worker ran
            // them, with strictly increasing seq and valid span deltas.
            let make_worker = |units: &[&str]| {
                let mut rec = Recorder::with_tick_clock();
                for unit in units {
                    let tick = rec.clock.now();
                    let seq = rec.seq;
                    rec.seq += 1;
                    rec.events
                        .push(Event::new(seq, tick, EventKind::SpanEnter, "sim.run_trace"));
                    rec.events.last_mut().unwrap().depth = Some(0);
                    let tick = rec.clock.now();
                    let seq = rec.seq;
                    rec.seq += 1;
                    rec.events
                        .push(Event::new(seq, tick, EventKind::SpanExit, "sim.run_trace"));
                    rec.events.last_mut().unwrap().depth = Some(0);
                    rec.events.last_mut().unwrap().ticks = Some(1);
                    let tick = rec.clock.now();
                    let seq = rec.seq;
                    rec.seq += 1;
                    rec.events
                        .push(Event::new(seq, tick, EventKind::Marker, "unit.done"));
                    rec.events.last_mut().unwrap().detail = Some(unit.to_string());
                    rec.metrics.counter_add("units", 1);
                }
                rec
            };
            let worker_a = make_worker(&["1", "3"]);
            let worker_b = make_worker(&["0", "2"]);
            install(Recorder::with_tick_clock());
            marker("before");
            absorb_workers(vec![worker_a, worker_b], "unit.done", |d| {
                d.parse::<u64>().unwrap_or(u64::MAX)
            });
            let events = drain().unwrap();
            let details: Vec<&str> = events
                .iter()
                .filter(|e| e.name == "unit.done")
                .filter_map(|e| e.detail.as_deref())
                .collect();
            assert_eq!(details, vec!["0", "1", "2", "3"]);
            let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
            let stream = encode_lines(&events);
            assert!(validate_stream(&stream).is_clean());
            // Worker counters summed into the main metric snapshot.
            let units = events.iter().find(|e| e.name == "units").unwrap();
            assert_eq!(units.count, Some(4));
        });
    }

    #[test]
    fn absorb_workers_merge_is_identical_for_any_worker_split() {
        with_clean_slot(|| {
            // The same four units split across 1 vs 2 workers must encode
            // to identical bytes after the merge.
            let run_split = |splits: &[&[&str]]| {
                let workers: Vec<Recorder> = splits
                    .iter()
                    .map(|units| {
                        let mut rec = Recorder::with_tick_clock();
                        for unit in *units {
                            let tick = rec.clock.now();
                            let seq = rec.seq;
                            rec.seq += 1;
                            rec.events
                                .push(Event::new(seq, tick, EventKind::Marker, "unit.done"));
                            rec.events.last_mut().unwrap().detail = Some(unit.to_string());
                        }
                        rec
                    })
                    .collect();
                install(Recorder::with_tick_clock());
                absorb_workers(workers, "unit.done", |d| {
                    d.parse::<u64>().unwrap_or(u64::MAX)
                });
                encode_lines(&drain().unwrap())
            };
            let one = run_split(&[&["0", "1", "2", "3"]]);
            let two = run_split(&[&["1", "3"], &["0", "2"]]);
            assert_eq!(one, two);
        });
    }

    #[test]
    fn marker_latency_observes_tick_deltas() {
        with_clean_slot(|| {
            install(Recorder::with_tick_clock());
            let beat = |detail: &str| {
                marker_latency(
                    "campaign.heartbeat",
                    detail,
                    "campaign.unit_latency",
                    &[2.0, 4.0],
                );
            };
            beat("u0"); // tick 1, delta 1 from tick 0
            marker("campaign.other"); // tick 2: unrelated markers don't reset
            beat("u1"); // tick 3, delta 2
            let events = drain().unwrap();
            let markers: Vec<&str> = events
                .iter()
                .filter(|e| e.name == "campaign.heartbeat")
                .filter_map(|e| e.detail.as_deref())
                .collect();
            assert_eq!(markers, vec!["u0", "u1"]);
            let hist = events
                .iter()
                .find(|e| e.name == "campaign.unit_latency")
                .unwrap();
            assert_eq!(hist.bounds, Some(vec![2.0, 4.0]));
            assert_eq!(hist.counts, Some(vec![2, 0, 0]), "deltas 1 and 2");
        });
    }

    #[test]
    fn flight_recorder_keeps_last_n_events_in_order() {
        with_clean_slot(|| {
            install(Recorder::flight_recorder(3));
            for i in 0..7 {
                marker_with_detail("serve.request", &format!("r{i}"));
                counter_add("serve.responses.ok", 1);
            }
            let rec = take().unwrap();
            assert_eq!(rec.dropped(), 4);
            let events = rec.finish();
            // Last 3 markers survive, chronological, original seq/tick,
            // then the (never-evicted) counter snapshot.
            let details: Vec<&str> = events
                .iter()
                .filter(|e| e.kind == EventKind::Marker)
                .filter_map(|e| e.detail.as_deref())
                .collect();
            assert_eq!(details, vec!["r4", "r5", "r6"]);
            assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
            assert!(events.windows(2).all(|w| w[0].tick <= w[1].tick));
            let counter = events.iter().find(|e| e.kind == EventKind::Counter);
            assert_eq!(counter.unwrap().count, Some(7), "metrics never evicted");
            let stream = encode_lines(&events);
            assert!(validate_stream(&stream).is_clean());
        });
    }

    #[test]
    fn flight_recorder_under_capacity_behaves_like_plain_recorder() {
        with_clean_slot(|| {
            install(Recorder::flight_recorder(64));
            {
                let _g = span("serve.request");
                marker("serve.parse");
            }
            let rec = take().unwrap();
            assert_eq!(rec.dropped(), 0);
            let events = rec.finish();
            assert_eq!(events.len(), 3);
            assert_eq!(events[0].seq, 0);
        });
    }

    #[test]
    fn install_returns_previous_recorder() {
        with_clean_slot(|| {
            install(Recorder::with_tick_clock());
            marker("a.one");
            let prev = install(Recorder::with_tick_clock());
            let events = prev.unwrap().finish();
            assert_eq!(events.len(), 1);
            let _ = take();
        });
    }
}
